#!/usr/bin/env bash
# The one gate every change must pass before merging. Mirrors the CI
# workflow (.github/workflows/ci.yml) exactly so a local run is
# authoritative: if this script passes, CI passes.
#
#   fmt      rustfmt, check-only (the tree must already be formatted)
#   clippy   workspace lints, warnings are errors
#   tier-1   release build + the root package's test suite
#   smoke    run_all --quick, the in-process harness end to end, which
#            also exercises the parallel executor and BENCH_harness.json;
#            its report must byte-match tests/golden/run_all_quick.txt
#            (regenerate deliberately with
#            target/release/run_all --quick > tests/golden/run_all_quick.txt)
#   telemetry  the observability export gate: the metric names the
#            registry exports must match tests/golden/metric_names.txt
#            exactly (regenerate deliberately with
#            target/release/validate_telemetry --schema
#            tests/golden/metric_names.txt --write-schema), every metric
#            in the smoke run's BENCH_harness.json must be in that
#            schema, and the smoke run's Chrome trace must be
#            structurally valid and contain a full repair episode
#            (trigger -> T2P -> twin -> commit)
#   fastpath-env  the typed-config gate: the process environment is read
#            exactly once, in crates/sim/src/config.rs; any other direct
#            std::env::var("TMI_FASTPATH") read fails the gate (config
#            flows through FastPath/SimTuning on EngineConfig)
#   bench-smoke  the fast-path wall-clock gate: the machine_throughput
#            criterion benches (compile + a short measured run), then
#            scripts/bench.sh --quick, which byte-diffs run_all --quick
#            fast path vs TMI_FASTPATH=off (the accelerators must be
#            behaviorally invisible), byte-diffs it again across 1/2/4/8
#            host threads (TMI_SIM_THREADS sharding must be invisible)
#            and emits + validates BENCH_perf.json (speedups there are
#            advisory in CI; a malformed report or an equivalence
#            failure is what fails)
#   parallel the epoch-sharded engine gate: run_all --quick at
#            TMI_SIM_THREADS=1 vs TMI_SIM_THREADS=8 must produce
#            byte-identical reports, the harness dumps must agree after
#            masking host-timing fields, and the sim.par.* counters must
#            be present in the metric stream
#   speculation  the speculative-prefetch gate, piggybacking on the
#            parallel stage's fixed-seed artifacts: the quick suite must
#            actually speculate (sim.par.speculated_ops > 0 — a silent
#            classifier regression would otherwise pass every
#            equivalence diff by speculating nothing), organic
#            demotions must be zero (the conflict check is a safety
#            net; any non-forced demotion means the private classifier
#            lied, see DESIGN.md §12), and the sim.par.* counter values
#            must be byte-identical across host thread counts (they are
#            functions of the epoch schedule, not of host parallelism)
#   service  the job-server determinism proof: boot the tmi_serve daemon
#            with the seeded service chaos plan (--service-faults 1,
#            which kills a worker on every second pickup), drive the
#            same job through it three ways — cold compute, cache-served
#            duplicate, and --fresh recompute whose worker is killed and
#            retried — and byte-diff the three result payloads; the
#            server's stats must show the kill, the retry and the cache
#            hit actually happened
#   crash    the crash-recovery proof: crash_matrix boots tmi_serve on a
#            durable data dir, kills it with SIGKILL at 8 seeded points
#            x {none, journal-tear, cache-corrupt} persistence fault
#            plans, restarts it on the same dir, and three-way byte-diffs
#            every reply stream (pre-kill, post-restart, unkilled
#            reference); each cell must also show warm cache hits
#            (service.persist.cache.warm_hits > 0), exactly-once
#            re-execution of journal-replayed jobs, and a graceful
#            SIGTERM drain with exit 0 (see EXPERIMENTS.md "Crash
#            recovery")
#   fuzz     fixed-seed differential fuzz: 64 litmus seeds through the
#            repair path vs the sequential oracle (must be clean), plus
#            16 seeds with --ablate-code-centric (must diverge)
#   faults   fixed-seed fault matrix: 128 litmus seeds under the seeded
#            fault schedule --faults 1; the oracle must stay clean AND
#            every fault point must fire with retry, rollback and
#            efficacy-revert each exercised (the binary exits non-zero
#            on incomplete coverage; see EXPERIMENTS.md "Fault
#            campaigns")
#   transistency  fixed-seed VM-operation litmus campaign: 500 seeds of
#            mprotect / COW-break / T2P / twin-commit / TLB-shootdown
#            programs plus a bounded DPOR-lite enumeration (up to 8
#            VM-op placements per seed) must check clean against the
#            sequential oracle with TMI on, and the --ablate-shootdown
#            sanity run (imprecise TLB shootdowns over 40 seeds) must
#            find divergences with a minimized reproducer, or the
#            campaign has no teeth (see EXPERIMENTS.md "Transistency
#            campaigns")
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt"
cargo fmt --all -- --check

echo "== clippy"
cargo clippy --workspace -- -D warnings

echo "== fastpath-env: TMI_FASTPATH is read in exactly one place"
stray=$(grep -rn --include='*.rs' 'env::var("TMI_FASTPATH")' crates src tests 2>/dev/null \
  | grep -v '^crates/sim/src/config.rs:' || true)
[ -z "$stray" ] || {
  printf '%s\n' "$stray"
  echo "direct TMI_FASTPATH reads outside crates/sim/src/config.rs — use FastPath on EngineConfig"
  exit 1
}

echo "== tier-1 build + test"
cargo build --release --workspace
cargo test -q

echo "== smoke: run_all --quick"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
(cd "$smoke_dir" && "$OLDPWD"/target/release/run_all --quick --trace trace_quick.json > run_all_quick.txt)
test -s "$smoke_dir/BENCH_harness.json"
grep -q '"schema": "tmi-bench-harness/2"' "$smoke_dir/BENCH_harness.json"
diff -u tests/golden/run_all_quick.txt "$smoke_dir/run_all_quick.txt" \
  || { echo "run_all --quick drifted from tests/golden/run_all_quick.txt"; exit 1; }

echo "== telemetry: metric schema + trace gate"
target/release/validate_telemetry \
  --schema tests/golden/metric_names.txt \
  --report "$smoke_dir/BENCH_harness.json" \
  --trace "$smoke_dir/trace_quick.json" --expect-repair-episode

echo "== service: daemon boot + cold/cached/fault-retried byte equality"
target/release/tmi_serve --workers 2 --service-faults 1 \
  --port-file "$smoke_dir/service.port" \
  --chrome-trace "$smoke_dir/service_trace.json" > "$smoke_dir/service.log" &
serve_pid=$!
for _ in $(seq 1 100); do test -s "$smoke_dir/service.port" && break; sleep 0.1; done
test -s "$smoke_dir/service.port" || { echo "tmi_serve did not come up"; exit 1; }
job="run --workload histogramfs --runtime tmi-protect --threads 4 --scale 0.05 --misaligned --tenant ci"
target/release/tmi_client --port-file "$smoke_dir/service.port" $job \
  > "$smoke_dir/service_cold.json" 2> /dev/null
target/release/tmi_client --port-file "$smoke_dir/service.port" $job \
  > "$smoke_dir/service_cached.json" 2> /dev/null
target/release/tmi_client --port-file "$smoke_dir/service.port" $job --fresh \
  > "$smoke_dir/service_fault.json" 2> /dev/null
cmp "$smoke_dir/service_cold.json" "$smoke_dir/service_cached.json" \
  || { echo "cache-served payload differs from cold compute"; exit 1; }
cmp "$smoke_dir/service_cold.json" "$smoke_dir/service_fault.json" \
  || { echo "fault-retried payload differs from cold compute"; exit 1; }
svc_stats=$(target/release/tmi_client --port-file "$smoke_dir/service.port" stats 2> /dev/null)
for want in '"service.worker_kills": 1' '"service.jobs_retried": 1' \
            '"service.cache_hits": 1' '"service.workers_respawned": 1'; do
  printf '%s\n' "$svc_stats" | grep -qF "$want" \
    || { printf '%s\n' "$svc_stats"; echo "service stats missing $want"; exit 1; }
done
target/release/tmi_client --port-file "$smoke_dir/service.port" shutdown 2> /dev/null
wait "$serve_pid"
test -s "$smoke_dir/service_trace.json"
grep -q '"service.job"' "$smoke_dir/service_trace.json" \
  || { echo "service trace has no job spans"; exit 1; }

echo "== bench-smoke: throughput benches + fast-path equivalence"
cargo bench -p tmi-bench --bench machine_throughput
scripts/bench.sh --quick

echo "== parallel: epoch-sharded engine must be byte-invisible"
(cd "$smoke_dir" && TMI_SIM_THREADS=1 "$OLDPWD"/target/release/run_all --quick > par_w1.txt)
mv "$smoke_dir/BENCH_harness.json" "$smoke_dir/par_h1.json"
(cd "$smoke_dir" && TMI_SIM_THREADS=8 "$OLDPWD"/target/release/run_all --quick > par_w8.txt)
mv "$smoke_dir/BENCH_harness.json" "$smoke_dir/par_h8.json"
diff -u "$smoke_dir/par_w1.txt" "$smoke_dir/par_w8.txt" \
  || { echo "8 host threads changed run_all --quick output — sharding must be invisible"; exit 1; }
mask_host_time() {
  sed -E -e 's/"host_seconds": [0-9.eE+-]+/"host_seconds": 0/' \
         -e 's/"wall_seconds": [0-9.eE+-]+/"wall_seconds": 0/' "$1"
}
diff -u <(mask_host_time "$smoke_dir/par_h1.json") <(mask_host_time "$smoke_dir/par_h8.json") \
  || { echo "8 host threads changed BENCH_harness.json beyond host timing"; exit 1; }
for counter in '"sim.par.epochs"' '"sim.par.prefetched_ops"' \
               '"sim.par.barrier_stalls"' '"sim.par.conflicts"' \
               '"sim.par.speculated_ops"' '"sim.par.demotions"'; do
  grep -qF "$counter" "$smoke_dir/par_h8.json" \
    || { echo "BENCH_harness.json lacks $counter"; exit 1; }
done

echo "== speculation: private ops speculate, demotions stay forced-only"
spec_counters() {
  grep -oE '"sim\.par\.[a-z_]+": [0-9]+' "$1"
}
diff -u <(spec_counters "$smoke_dir/par_h1.json") <(spec_counters "$smoke_dir/par_h8.json") \
  || { echo "sim.par.* counters drifted across host thread counts — they must be functions of the epoch schedule only"; exit 1; }
spec_total=$(grep -oE '"sim\.par\.speculated_ops": [0-9]+' "$smoke_dir/par_h8.json" \
  | awk -F': ' '{s += $2} END {print s + 0}')
[ "$spec_total" -gt 0 ] \
  || { echo "sim.par.speculated_ops is zero across the quick suite — the private classifier speculated nothing"; exit 1; }
demo_total=$(grep -oE '"sim\.par\.demotions": [0-9]+' "$smoke_dir/par_h8.json" \
  | awk -F': ' '{s += $2} END {print s + 0}')
[ "$demo_total" -eq 0 ] \
  || { echo "sim.par.demotions = $demo_total without forced demotions — the private classifier admitted a conflicting op"; exit 1; }

echo "== crash: seeded kill -9 matrix + byte-identical recovery"
target/release/crash_matrix --kill-points 8 --data-root "$smoke_dir/crash"

echo "== fuzz: differential consistency oracle"
target/release/fuzz_consistency --seeds 64
target/release/fuzz_consistency --seeds 16 --ablate-code-centric > /dev/null \
  || { echo "ablated fuzz campaign failed to diverge"; exit 1; }

echo "== faults: seeded fault-injection matrix"
fault_out=$(target/release/fuzz_consistency --seeds 128 --faults 1) \
  || { printf '%s\n' "$fault_out"; echo "fault campaign diverged or left coverage incomplete"; exit 1; }
printf '%s\n' "$fault_out" | grep -q 'fault coverage: OK' \
  || { printf '%s\n' "$fault_out"; echo "fault campaign coverage incomplete"; exit 1; }

echo "== transistency: VM operations x consistency"
target/release/fuzz_consistency --transistency --seeds 500 --enumerate 8
ablate_out=$(target/release/fuzz_consistency --transistency --ablate-shootdown --seeds 40) \
  || { printf '%s\n' "$ablate_out"; echo "shootdown-ablated campaign failed to diverge"; exit 1; }
printf '%s\n' "$ablate_out" | grep -q -- '--ablate-shootdown' \
  || { printf '%s\n' "$ablate_out"; echo "ablated campaign report lacks a reproducer line"; exit 1; }

echo "== ok"
