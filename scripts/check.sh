#!/usr/bin/env bash
# The one gate every change must pass before merging. Mirrors the CI
# workflow (.github/workflows/ci.yml) exactly so a local run is
# authoritative: if this script passes, CI passes.
#
#   fmt      rustfmt, check-only (the tree must already be formatted)
#   clippy   workspace lints, warnings are errors
#   tier-1   release build + the root package's test suite
#   smoke    run_all --quick, the in-process harness end to end, which
#            also exercises the parallel executor and BENCH_harness.json
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt"
cargo fmt --all -- --check

echo "== clippy"
cargo clippy --workspace -- -D warnings

echo "== tier-1 build + test"
cargo build --release
cargo test -q

echo "== smoke: run_all --quick"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
(cd "$smoke_dir" && "$OLDPWD"/target/release/run_all --quick > run_all_quick.txt)
test -s "$smoke_dir/BENCH_harness.json"
grep -q '"schema": "tmi-bench-harness/1"' "$smoke_dir/BENCH_harness.json"

echo "== ok"
