#!/usr/bin/env bash
# Wall-clock benchmark + fast-path equivalence gate.
#
#   scripts/bench.sh [--quick]
#
# Three parts:
#
# 1. **Equivalence gate** — `run_all --quick` once on the fast path and
#    once with `TMI_FASTPATH=off` (software TLBs + sharer directory
#    disabled, the reference snoop/page-walk path). The two reports must
#    be byte-identical: the accelerators are not allowed to change any
#    simulated cycle count, HITM count or speedup. The BENCH_harness.json
#    metric dumps are also diffed after dropping the accelerators' own
#    `os.tlb.*` / `machine.dir.*` counters (the only legitimate delta).
#    Both wall times are captured for the report.
#
# 2. **Parallel-scaling gate** — `run_all --quick` at 1, 2, 4 and 8 host
#    threads (`TMI_SIM_THREADS` shards each engine's cores across host
#    workers; `TMI_BENCH_JOBS` sizes the cell executor to match). Every
#    report must be byte-identical to the 1-thread run — the epoch-
#    parallel engine is a wall-clock knob only — and the harness dumps
#    must agree after masking host-timing fields. Wall times per thread
#    count are captured for the report.
#
# 3. **Throughput report** — `bench_perf` times the memory-pipeline hot
#    paths (cache hits, HITM ping-pong, 32-core snoop storm, kernel
#    translation, one end-to-end experiment) fast vs reference and writes
#    BENCH_perf.json, embedding the run_all wall times from part 1 and
#    the parallel-scaling walls from part 2 (`sim/run_all_par{N}` cells).
#    The JSON is then re-validated with `bench_perf --check`.
#
# `--quick` shrinks the bench_perf iteration counts (the run_all gate is
# always --quick). CI runs `scripts/bench.sh --quick` via check.sh's
# bench-smoke stage; speedups in BENCH_perf.json are advisory there —
# only malformed output or an equivalence failure fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
case "${1:-}" in
  --quick) QUICK="--quick" ;;
  "") ;;
  *) echo "usage: scripts/bench.sh [--quick]" >&2; exit 2 ;;
esac

cargo build --release --quiet

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== equivalence: run_all --quick, fast path vs TMI_FASTPATH=off"
# Reference first, fast second: the first invocation pays the cold-start
# costs (page cache, CPU ramp), so this ordering under-reports, never
# inflates, the fast path's advantage.
t0=$(date +%s.%N)
(cd "$workdir" && TMI_FASTPATH=off "$OLDPWD"/target/release/run_all --quick > run_ref.txt)
t1=$(date +%s.%N)
mv "$workdir/BENCH_harness.json" "$workdir/harness_ref.json"
t2=$(date +%s.%N)
(cd "$workdir" && "$OLDPWD"/target/release/run_all --quick > run_fast.txt)
t3=$(date +%s.%N)
mv "$workdir/BENCH_harness.json" "$workdir/harness_fast.json"
ref_secs=$(awk "BEGIN{print $t1 - $t0}")
fast_secs=$(awk "BEGIN{print $t3 - $t2}")

diff -u "$workdir/run_ref.txt" "$workdir/run_fast.txt" \
  || { echo "fast path changed run_all --quick output — accelerators must be invisible"; exit 1; }
# wall_seconds is host time; the accelerator counters are the only
# simulated-state delta the fast path is allowed.
filter() { grep -v -e '"os\.tlb\.' -e '"machine\.dir\.' -e '"wall_seconds"' "$1"; }
filter "$workdir/harness_fast.json" > "$workdir/hf.json"
filter "$workdir/harness_ref.json" > "$workdir/hr.json"
diff -u "$workdir/hr.json" "$workdir/hf.json" \
  || { echo "fast path changed BENCH_harness.json beyond its own counters"; exit 1; }
echo "equivalence OK (fast ${fast_secs}s vs reference ${ref_secs}s)"

echo "== parallel scaling: run_all --quick at 1/2/4/8 host threads"
# Mask host-timing fields only: everything simulated — including the
# sim.par.* epoch counters — must be byte-identical across shard counts.
mask_host_time() {
  sed -E -e 's/"host_seconds": [0-9.eE+-]+/"host_seconds": 0/' \
         -e 's/"wall_seconds": [0-9.eE+-]+/"wall_seconds": 0/' \
         -e 's/"pool_workers": [0-9]+/"pool_workers": 0/' "$1"
}
par_args=()
for n in 1 2 4 8; do
  p0=$(date +%s.%N)
  (cd "$workdir" && TMI_BENCH_JOBS=$n TMI_SIM_THREADS=$n \
    "$OLDPWD"/target/release/run_all --quick > "run_par$n.txt")
  p1=$(date +%s.%N)
  mv "$workdir/BENCH_harness.json" "$workdir/harness_par$n.json"
  wall=$(awk "BEGIN{print $p1 - $p0}")
  diff -u "$workdir/run_par1.txt" "$workdir/run_par$n.txt" \
    || { echo "$n host threads changed run_all --quick output — sharding must be invisible"; exit 1; }
  mask_host_time "$workdir/harness_par$n.json" > "$workdir/hp$n.json"
  diff -u "$workdir/hp1.json" "$workdir/hp$n.json" \
    || { echo "$n host threads changed BENCH_harness.json beyond host timing"; exit 1; }
  grep -q '"sim.par.epochs"' "$workdir/harness_par$n.json" \
    || { echo "BENCH_harness.json at $n host threads lacks sim.par.* counters"; exit 1; }
  par_args+=(--par-wall "$n" "$wall")
  echo "  $n host threads: ${wall}s"
done
echo "parallel scaling OK (byte-identical at 1/2/4/8 host threads)"

echo "== throughput: bench_perf ${QUICK:-(full)}"
target/release/bench_perf $QUICK --out BENCH_perf.json \
  --run-all-wall "$fast_secs" "$ref_secs" "${par_args[@]}"
target/release/bench_perf --check BENCH_perf.json
