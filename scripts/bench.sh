#!/usr/bin/env bash
# Wall-clock benchmark + fast-path equivalence gate.
#
#   scripts/bench.sh [--quick]
#
# Two parts:
#
# 1. **Equivalence gate** — `run_all --quick` once on the fast path and
#    once with `TMI_FASTPATH=off` (software TLBs + sharer directory
#    disabled, the reference snoop/page-walk path). The two reports must
#    be byte-identical: the accelerators are not allowed to change any
#    simulated cycle count, HITM count or speedup. The BENCH_harness.json
#    metric dumps are also diffed after dropping the accelerators' own
#    `os.tlb.*` / `machine.dir.*` counters (the only legitimate delta).
#    Both wall times are captured for the report.
#
# 2. **Throughput report** — `bench_perf` times the memory-pipeline hot
#    paths (cache hits, HITM ping-pong, 32-core snoop storm, kernel
#    translation, one end-to-end experiment) fast vs reference and writes
#    BENCH_perf.json, embedding the run_all wall times from part 1. The
#    JSON is then re-validated with `bench_perf --check`.
#
# `--quick` shrinks the bench_perf iteration counts (the run_all gate is
# always --quick). CI runs `scripts/bench.sh --quick` via check.sh's
# bench-smoke stage; speedups in BENCH_perf.json are advisory there —
# only malformed output or an equivalence failure fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=""
case "${1:-}" in
  --quick) QUICK="--quick" ;;
  "") ;;
  *) echo "usage: scripts/bench.sh [--quick]" >&2; exit 2 ;;
esac

cargo build --release --quiet

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== equivalence: run_all --quick, fast path vs TMI_FASTPATH=off"
# Reference first, fast second: the first invocation pays the cold-start
# costs (page cache, CPU ramp), so this ordering under-reports, never
# inflates, the fast path's advantage.
t0=$(date +%s.%N)
(cd "$workdir" && TMI_FASTPATH=off "$OLDPWD"/target/release/run_all --quick > run_ref.txt)
t1=$(date +%s.%N)
mv "$workdir/BENCH_harness.json" "$workdir/harness_ref.json"
t2=$(date +%s.%N)
(cd "$workdir" && "$OLDPWD"/target/release/run_all --quick > run_fast.txt)
t3=$(date +%s.%N)
mv "$workdir/BENCH_harness.json" "$workdir/harness_fast.json"
ref_secs=$(awk "BEGIN{print $t1 - $t0}")
fast_secs=$(awk "BEGIN{print $t3 - $t2}")

diff -u "$workdir/run_ref.txt" "$workdir/run_fast.txt" \
  || { echo "fast path changed run_all --quick output — accelerators must be invisible"; exit 1; }
# wall_seconds is host time; the accelerator counters are the only
# simulated-state delta the fast path is allowed.
filter() { grep -v -e '"os\.tlb\.' -e '"machine\.dir\.' -e '"wall_seconds"' "$1"; }
filter "$workdir/harness_fast.json" > "$workdir/hf.json"
filter "$workdir/harness_ref.json" > "$workdir/hr.json"
diff -u "$workdir/hr.json" "$workdir/hf.json" \
  || { echo "fast path changed BENCH_harness.json beyond its own counters"; exit 1; }
echo "equivalence OK (fast ${fast_secs}s vs reference ${ref_secs}s)"

echo "== throughput: bench_perf ${QUICK:-(full)}"
target/release/bench_perf $QUICK --out BENCH_perf.json --run-all-wall "$fast_secs" "$ref_secs"
target/release/bench_perf --check BENCH_perf.json
