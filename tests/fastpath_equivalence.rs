//! The fast-path equivalence gate: the software TLBs, the sharer/owner
//! directory and the flat tag arrays are pure accelerators, so a run with
//! them enabled must be *byte-identical* to the reference path on every
//! observable — halt reason, simulated cycles (total and per thread),
//! dynamic op count, the executed schedule with all load observations,
//! and the full metrics snapshot — differing only in the accelerator's
//! own `os.tlb.*` / `machine.dir.*` counters.

use tmi_repro::oracle::{run_seed_raw, run_transistency_seed_raw, RawRun};
use tmi_repro::program::Op;
use tmi_repro::telemetry::MetricValue;

/// The metrics a fast-path run is allowed to differ on: the accelerator
/// counters themselves (zero on the reference path by construction).
fn behavioral_metrics(r: &RawRun) -> Vec<(String, MetricValue)> {
    r.metrics
        .iter()
        .filter(|(n, _)| !n.starts_with("os.tlb.") && !n.starts_with("machine.dir."))
        .map(|(n, v)| (n.to_string(), v))
        .collect()
}

/// 64 fuzz seeds through the full repaired stack, reference vs fast path:
/// everything observable must agree, and in aggregate the accelerators
/// must actually have engaged (otherwise the gate proves nothing).
#[test]
fn fastpath_is_behaviorally_invisible_over_64_seeds() {
    let mut tlb_hits = 0u64;
    let mut dir_probes = 0u64;
    for seed in 0..64u64 {
        let fast = run_seed_raw(seed, true);
        let refr = run_seed_raw(seed, false);
        assert_eq!(fast.halt, refr.halt, "seed {seed}: halt diverged");
        assert_eq!(fast.cycles, refr.cycles, "seed {seed}: cycles diverged");
        assert_eq!(
            fast.thread_cycles, refr.thread_cycles,
            "seed {seed}: per-thread clocks diverged"
        );
        assert_eq!(fast.ops, refr.ops, "seed {seed}: op counts diverged");
        assert_eq!(
            fast.trace, refr.trace,
            "seed {seed}: schedule or observed values diverged"
        );
        assert_eq!(
            fast.metrics.u64("machine.hitm_events"),
            refr.metrics.u64("machine.hitm_events"),
            "seed {seed}: HITM counts diverged"
        );
        assert_eq!(
            behavioral_metrics(&fast),
            behavioral_metrics(&refr),
            "seed {seed}: behavioral metrics diverged"
        );
        // The reference path must not engage the accelerators at all.
        assert_eq!(refr.metrics.u64("os.tlb.hits"), 0, "seed {seed}");
        assert_eq!(refr.metrics.u64("os.tlb.misses"), 0, "seed {seed}");
        assert_eq!(refr.metrics.u64("machine.dir.probes"), 0, "seed {seed}");
        tlb_hits += fast.metrics.u64("os.tlb.hits");
        dir_probes += fast.metrics.u64("machine.dir.probes");
    }
    assert!(
        tlb_hits > 0,
        "the fast path never hit the TLB across 64 seeds — gate is vacuous"
    );
    assert!(
        dir_probes > 0,
        "the fast path never probed the directory across 64 seeds — gate is vacuous"
    );
}

/// The same gate over a fixed block of *transistency* seeds: VM-op
/// litmus programs whose `mprotect` / COW-break / T2P / twin-commit /
/// shootdown outcome codes land in the trace value slots. The codes are
/// required to be fast-path invariant (they depend on PTE and governor
/// state, never on TLB or directory contents), so the full trace —
/// including every VM-op outcome — must be byte-identical across paths.
#[test]
fn fastpath_is_invisible_to_transistency_programs() {
    let mut vm_steps = 0u64;
    for seed in 0..24u64 {
        let fast = run_transistency_seed_raw(seed, true);
        let refr = run_transistency_seed_raw(seed, false);
        assert_eq!(fast.halt, refr.halt, "vm seed {seed}: halt diverged");
        assert_eq!(fast.cycles, refr.cycles, "vm seed {seed}: cycles diverged");
        assert_eq!(
            fast.thread_cycles, refr.thread_cycles,
            "vm seed {seed}: per-thread clocks diverged"
        );
        assert_eq!(fast.ops, refr.ops, "vm seed {seed}: op counts diverged");
        assert_eq!(
            fast.trace, refr.trace,
            "vm seed {seed}: schedule, observed values or VM-op outcome \
             codes diverged"
        );
        assert_eq!(
            behavioral_metrics(&fast),
            behavioral_metrics(&refr),
            "vm seed {seed}: behavioral metrics diverged"
        );
        vm_steps += fast
            .trace
            .iter()
            .filter(|st| matches!(st.op, Op::Vm { .. }))
            .count() as u64;
    }
    assert!(
        vm_steps > 0,
        "no VM ops executed across 24 transistency seeds — gate is vacuous"
    );
}

/// Determinism of the raw-run capture itself: same seed and mode, same
/// observables — so an equivalence failure always pins to the
/// accelerators, never to fixture nondeterminism.
#[test]
fn raw_runs_reproduce_from_the_seed() {
    for seed in [0u64, 7, 31] {
        for fastpath in [false, true] {
            let a = run_seed_raw(seed, fastpath);
            let b = run_seed_raw(seed, fastpath);
            assert_eq!(a.halt, b.halt);
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.trace, b.trace);
            assert_eq!(
                a.metrics, b.metrics,
                "seed {seed} fastpath={fastpath} not reproducible"
            );
        }
    }
}
