//! Workspace integration tests: every workload × every runtime that claims
//! compatibility must complete and verify; known-broken combinations must
//! fail in exactly the way the paper describes.

use tmi_repro::bench::{Experiment, RunConfig, RunResult, RuntimeKind};
use tmi_repro::sim::Halt;

fn run(name: &str, cfg: &RunConfig) -> RunResult {
    Experiment::new(name).config(*cfg).run()
}

fn small(rt: RuntimeKind) -> RunConfig {
    let mut cfg = RunConfig::new(rt).scale(0.05);
    cfg.tick_interval = 300_000;
    cfg.max_ops = 30_000_000;
    cfg
}

#[test]
fn whole_suite_verifies_under_pthreads() {
    for name in tmi_repro::workloads::SUITE {
        let r = run(name, &small(RuntimeKind::Pthreads));
        assert!(r.ok(), "{name}: halt={:?} verify={:?}", r.halt, r.verified);
    }
}

#[test]
fn whole_suite_verifies_under_tmi_detect() {
    for name in tmi_repro::workloads::SUITE {
        let r = run(name, &small(RuntimeKind::TmiDetect));
        assert!(r.ok(), "{name}: halt={:?} verify={:?}", r.halt, r.verified);
    }
}

#[test]
fn whole_suite_verifies_under_tmi_protect() {
    // The paper's core compatibility claim: TMI's repair machinery never
    // breaks a program, whether or not it triggers.
    for name in tmi_repro::workloads::SUITE {
        let r = run(name, &small(RuntimeKind::TmiProtect));
        assert!(r.ok(), "{name}: halt={:?} verify={:?}", r.halt, r.verified);
    }
}

#[test]
fn cholesky_is_safe_under_tmi_but_hangs_under_sheriff() {
    let tmi = run("cholesky", &small(RuntimeKind::TmiProtect));
    assert!(tmi.ok(), "{:?}", tmi.halt);
    let mut cfg = small(RuntimeKind::SheriffProtect);
    cfg.max_ops = 3_000_000;
    let sheriff = run("cholesky", &cfg);
    assert_eq!(sheriff.halt, Halt::Hang, "Sheriff must hang (Fig. 12)");
}

#[test]
fn canneal_corrupts_under_sheriff_only() {
    let mut cfg = small(RuntimeKind::SheriffProtect);
    cfg.scale = 0.3;
    let sheriff = run("canneal", &cfg);
    assert!(
        sheriff.verified.is_err(),
        "Sheriff's guard-less PTSB must corrupt canneal (Fig. 11)"
    );
    let mut tcfg = small(RuntimeKind::TmiProtect);
    tcfg.scale = 0.3;
    let tmi = run("canneal", &tcfg);
    assert!(tmi.ok(), "{:?} {:?}", tmi.halt, tmi.verified);
}

#[test]
fn laser_and_plastic_preserve_correctness() {
    // Their store buffers/remaps are TSO-preserving, so the consistency
    // case studies must pass (Table 1's "memory consistency" row).
    for rt in [RuntimeKind::Laser, RuntimeKind::Plastic] {
        for name in ["canneal", "cholesky", "leveldb-fs"] {
            let mut cfg = small(rt);
            cfg.scale = 0.2;
            let r = run(name, &cfg);
            assert!(
                r.ok(),
                "{name} under {}: {:?} {:?}",
                rt.label(),
                r.halt,
                r.verified
            );
        }
    }
}

#[test]
fn sheriff_compatible_workloads_run_correctly_under_sheriff() {
    for name in tmi_repro::workloads::SUITE {
        let spec = tmi_repro::workloads::by_name(name).unwrap().spec();
        if !spec.sheriff_compatible {
            continue;
        }
        let r = run(name, &small(RuntimeKind::SheriffDetect));
        assert!(
            r.ok(),
            "{name} under sheriff-detect: {:?} {:?}",
            r.halt,
            r.verified
        );
    }
}
