//! The parallel-equivalence gate: sharding simulated cores across host
//! threads (`SimTuning::threads`, the `TMI_SIM_THREADS` knob) is a pure
//! wall-clock accelerator. The epoch-parallel engine prefetches each
//! thread's compute run privately and replays it through the *same*
//! sequential min-clock scheduler, so a run at any host-thread count must
//! be **byte-identical** to the 1-thread run on every observable — halt
//! reason, simulated cycles (total and per thread), dynamic op count, the
//! executed schedule with all load observations, and the *full* metrics
//! snapshot. Unlike the fast-path gate, nothing is filtered here: even
//! the `sim.par.*` counters are deterministic functions of the epoch
//! schedule alone, so they too must agree at every shard count.

use tmi_repro::oracle::{run_seed_raw_tuned, run_transistency_seed_raw_tuned, RawRun};
use tmi_repro::program::Op;

/// Host-thread counts the gate replays every seed at; 1 is the
/// sequential baseline.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn assert_identical(base: &RawRun, run: &RawRun, what: &str) {
    assert_eq!(base.halt, run.halt, "{what}: halt diverged");
    assert_eq!(base.cycles, run.cycles, "{what}: cycles diverged");
    assert_eq!(
        base.thread_cycles, run.thread_cycles,
        "{what}: per-thread clocks diverged"
    );
    assert_eq!(base.ops, run.ops, "{what}: op counts diverged");
    assert_eq!(
        base.trace, run.trace,
        "{what}: schedule or observed values diverged"
    );
    assert_eq!(
        base.metrics, run.metrics,
        "{what}: metrics snapshot diverged (sim.par.* included)"
    );
}

/// 64 fuzz seeds through the full repaired stack at every shard count:
/// bit-identity against the 1-thread baseline, in both fast-path modes
/// for a subset so the two accelerators are proven independent.
#[test]
fn shard_count_is_behaviorally_invisible_over_64_seeds() {
    let mut epochs = 0u64;
    let mut prefetched = 0u64;
    for seed in 0..64u64 {
        let base = run_seed_raw_tuned(seed, true, 1);
        for threads in &THREADS[1..] {
            let run = run_seed_raw_tuned(seed, true, *threads);
            assert_identical(&base, &run, &format!("seed {seed} threads {threads}"));
        }
        epochs += base.metrics.u64("sim.par.epochs");
        prefetched += base.metrics.u64("sim.par.prefetched_ops");
    }
    // Reference-path replay on a subset: sharding must also be invisible
    // with the TLB/directory accelerators off.
    for seed in 0..8u64 {
        let base = run_seed_raw_tuned(seed, false, 1);
        for threads in &THREADS[1..] {
            let run = run_seed_raw_tuned(seed, false, *threads);
            assert_identical(&base, &run, &format!("ref seed {seed} threads {threads}"));
        }
    }
    assert!(epochs > 0, "no epochs recorded — gate is vacuous");
    assert!(
        prefetched > 0,
        "the epoch prefetcher never engaged across 64 seeds — gate is vacuous"
    );
}

/// The same gate over transistency seeds: VM-op programs exercise the
/// kernel-entry path (`mprotect`, COW breaks, T2P conversions, twin
/// commits, TLB shootdowns), which the epoch prefetcher must park and
/// replay through the serialized scheduler — so every VM-op outcome code
/// in the trace must survive sharding bit-for-bit.
#[test]
fn shard_count_is_invisible_to_transistency_programs() {
    let mut vm_steps = 0u64;
    let mut conflicts = 0u64;
    for seed in 0..24u64 {
        let base = run_transistency_seed_raw_tuned(seed, true, 1);
        for threads in &THREADS[1..] {
            let run = run_transistency_seed_raw_tuned(seed, true, *threads);
            assert_identical(&base, &run, &format!("vm seed {seed} threads {threads}"));
        }
        vm_steps += base
            .trace
            .iter()
            .filter(|st| matches!(st.op, Op::Vm { .. }))
            .count() as u64;
        conflicts += base.metrics.u64("sim.par.conflicts");
    }
    assert!(
        vm_steps > 0,
        "no VM ops executed across 24 transistency seeds — gate is vacuous"
    );
    assert!(
        conflicts > 0,
        "no cross-shard ops were ever parked — the serialization path \
         went unexercised"
    );
}
