//! The observability layer's three contracts:
//!
//! 1. **Determinism** — the Chrome-trace exporter is a pure function of
//!    the simulated execution, so the same seed produces a byte-identical
//!    trace, checked against a committed golden file
//!    (`tests/golden/trace_seed7.json`; regenerate with
//!    `TMI_BLESS=1 cargo test --test telemetry_observability`).
//! 2. **Schema stability** — every metric name the registry can export
//!    is unique and identical across repeated registrations, and every
//!    name a real run exports is in the canonical schema
//!    (`tests/golden/metric_names.txt`, the `scripts/check.sh` gate).
//! 3. **Zero perturbation** — enabling tracing must not change the
//!    simulation: cycle counts, repair decisions and every registered
//!    metric are identical with the tracer on and off.

use std::collections::BTreeSet;
use std::path::Path;

use proptest::prelude::*;
use tmi_repro::bench::telemetry::{registered_metric_names, validate_trace};
use tmi_repro::bench::{Experiment, RuntimeKind};
use tmi_repro::oracle::{trace_seed, CheckConfig};
use tmi_repro::service::service_metric_names;

/// The full deployed schema: the simulation registry's names merged
/// with the job server's `service.*` aggregates — exactly what
/// `validate_telemetry` writes to `tests/golden/metric_names.txt`.
fn schema_metric_names() -> Vec<String> {
    let mut names = registered_metric_names();
    names.extend(service_metric_names());
    names.sort();
    names.dedup();
    names
}

#[test]
fn chrome_trace_matches_golden_byte_for_byte() {
    let (report, trace) = trace_seed(7, &CheckConfig::default());
    assert!(report.clean(), "{}", report.render());

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_seed7.json");
    if std::env::var("TMI_BLESS").is_ok() {
        std::fs::write(&golden_path, &trace).expect("write golden");
    }
    let golden = std::fs::read_to_string(&golden_path).expect(
        "tests/golden/trace_seed7.json missing — regenerate with \
         TMI_BLESS=1 cargo test --test telemetry_observability",
    );
    assert!(
        trace == golden,
        "trace for seed 7 drifted from the committed golden \
         ({} vs {} bytes); if the exporter change is intentional, \
         regenerate with TMI_BLESS=1",
        trace.len(),
        golden.len()
    );

    let summary = validate_trace(&trace).expect("golden trace validates");
    assert!(summary.events > 0);
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let quiet = Experiment::repair("histogramfs")
        .runtime(RuntimeKind::TmiProtect)
        .scale(0.1)
        .misaligned()
        .run();
    let (traced, trace) = Experiment::repair("histogramfs")
        .runtime(RuntimeKind::TmiProtect)
        .scale(0.1)
        .misaligned()
        .run_traced();

    assert!(!trace.is_empty());
    assert_eq!(quiet.cycles, traced.cycles, "tracing changed cycle counts");
    assert_eq!(quiet.ops, traced.ops);
    assert_eq!(quiet.repaired, traced.repaired);
    assert_eq!(quiet.commits, traced.commits);
    assert_eq!(quiet.converted_at, traced.converted_at);
    // The per-phase profiler counters are produced by the tracer itself,
    // so they are zero in the quiet run — every other metric must match
    // exactly.
    let a: Vec<_> = quiet
        .metrics
        .iter()
        .filter(|(n, _)| !n.starts_with("tmi.phase."))
        .collect();
    let b: Vec<_> = traced
        .metrics
        .iter()
        .filter(|(n, _)| !n.starts_with("tmi.phase."))
        .collect();
    assert_eq!(a, b, "tracing changed a registered metric");
    assert!(
        traced.metrics.u64("tmi.phase.detect_cycles") > 0,
        "traced run should attribute cycles to the detect phase"
    );
}

#[test]
fn run_exports_only_schema_names() {
    let schema: BTreeSet<String> = registered_metric_names().into_iter().collect();
    let r = Experiment::repair("histogramfs")
        .runtime(RuntimeKind::TmiProtect)
        .scale(0.1)
        .misaligned()
        .run();
    assert!(!r.metrics.is_empty());
    for name in r.metrics.names() {
        assert!(schema.contains(name), "run exported unknown metric {name}");
    }
}

proptest! {
    /// The registry's name set is a pure function: registering the same
    /// sources any number of times yields the same unique, sorted names,
    /// and they match the checked-in schema file exactly.
    #[test]
    fn registered_names_are_unique_and_stable(rounds in 1usize..4) {
        let first = schema_metric_names();
        let unique: BTreeSet<&String> = first.iter().collect();
        prop_assert_eq!(unique.len(), first.len(), "duplicate metric names");
        let mut sorted = first.clone();
        sorted.sort();
        prop_assert_eq!(&sorted, &first, "names must come out sorted");
        for _ in 0..rounds {
            prop_assert_eq!(&schema_metric_names(), &first);
        }
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metric_names.txt");
        let checked_in: Vec<String> = std::fs::read_to_string(path)
            .expect("tests/golden/metric_names.txt")
            .lines()
            .map(str::to_string)
            .collect();
        prop_assert_eq!(&checked_in, &first, "schema file drifted; \
            regenerate with validate_telemetry --write-schema");
    }

    /// The exporter is deterministic across arbitrary seeds, not just the
    /// golden one: tracing the same litmus seed twice is byte-identical.
    #[test]
    fn trace_export_is_deterministic_for_any_seed(seed in 0u64..64) {
        let cfg = CheckConfig::default();
        let (ra, ta) = trace_seed(seed, &cfg);
        let (rb, tb) = trace_seed(seed, &cfg);
        prop_assert_eq!(ra.clean(), rb.clean());
        prop_assert_eq!(ta, tb, "trace for seed {} is not deterministic", seed);
    }
}
