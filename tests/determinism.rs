//! The simulator must be bit-deterministic: identical configurations
//! produce identical cycle counts, HITM counts and repair decisions. This
//! is what makes every number in EXPERIMENTS.md reproducible exactly.

use tmi_repro::bench::{Experiment, RunConfig, RunResult, RuntimeKind};

fn run(name: &str, cfg: &RunConfig) -> RunResult {
    Experiment::new(name).config(*cfg).run()
}

fn fingerprint(r: &tmi_repro::bench::RunResult) -> (u64, u64, u64, bool, u64, Option<u64>) {
    (
        r.cycles,
        r.ops,
        r.hitm_events,
        r.repaired,
        r.commits,
        r.converted_at,
    )
}

#[test]
fn identical_runs_are_bit_identical() {
    for (name, rt) in [
        ("lreg", RuntimeKind::TmiProtect),
        ("leveldb-fs", RuntimeKind::TmiProtect),
        ("histogramfs", RuntimeKind::SheriffProtect),
        ("spinlockpool", RuntimeKind::Laser),
        ("canneal", RuntimeKind::Pthreads),
    ] {
        let cfg = RunConfig::repair(rt).scale(0.2).misaligned();
        let a = run(name, &cfg);
        let b = run(name, &cfg);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{name} under {} must be deterministic",
            rt.label()
        );
    }
}

#[test]
fn shard_count_never_changes_the_run_report() {
    // The epoch-parallel engine shards simulated cores across host
    // threads; the shard count is a wall-clock knob only, so the full
    // report — fingerprint and every metric, the `sim.par.*` counters
    // included — must be identical at any `sim_threads` value.
    for (name, rt) in [
        ("lreg", RuntimeKind::TmiProtect),
        ("histogramfs", RuntimeKind::Pthreads),
    ] {
        let base_cfg = RunConfig::repair(rt).scale(0.2).misaligned();
        let base = run(name, &base_cfg.sim_threads(1));
        for threads in [2usize, 4, 8] {
            let sharded = run(name, &base_cfg.sim_threads(threads));
            assert_eq!(
                fingerprint(&base),
                fingerprint(&sharded),
                "{name} under {}: {threads} host threads changed the report",
                rt.label()
            );
            assert_eq!(
                base.metrics,
                sharded.metrics,
                "{name} under {}: {threads} host threads changed the metrics",
                rt.label()
            );
        }
    }
}

#[test]
fn different_seeds_of_work_change_results() {
    // Sanity check that the fingerprint actually discriminates: changing
    // the scale must change the outcome.
    let a = run("lreg", &RunConfig::repair(RuntimeKind::Pthreads).scale(0.2));
    let b = run(
        "lreg",
        &RunConfig::repair(RuntimeKind::Pthreads).scale(0.25),
    );
    assert_ne!(a.cycles, b.cycles);
}
