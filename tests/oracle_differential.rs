//! Workspace integration tests for the differential consistency oracle:
//! the repaired execution must be indistinguishable from the sequential
//! reference on every generated litmus program, the code-centric ablation
//! must visibly break, and both verdicts must reproduce bit-identically
//! from the seed alone.

use tmi_repro::bench::fuzz::{run_campaign, FuzzConfig};
use tmi_repro::oracle::{check_seed, CheckConfig, DivergenceKind, Litmus};

/// §3.4: with code-centric consistency on, the PTSB repair path is
/// equivalent to sequential consistency per schedule for data-race-free
/// programs — across a healthy seed range.
#[test]
fn repair_path_matches_oracle_over_many_seeds() {
    let cfg = CheckConfig::default();
    for seed in 0..200 {
        let r = check_seed(seed, &cfg);
        assert!(
            r.clean(),
            "seed {seed} diverged under code-centric ON:\n{}",
            r.render()
        );
    }
}

/// Figs. 11–12: dropping code-centric consistency makes the same litmus
/// population observably incorrect — stale or torn values that the
/// checker pins to concrete steps.
#[test]
fn ablation_reproduces_paper_failure_modes() {
    let cfg = FuzzConfig {
        seeds: 96,
        start_seed: 0,
        ablate_code_centric: true,
        workers: Some(4),
        ..FuzzConfig::default()
    };
    let r = run_campaign(&cfg);
    assert!(
        !r.divergent_seeds.is_empty(),
        "ablated campaign found nothing:\n{}",
        r.render()
    );
    // The population must exhibit stale reads, not just one lucky seed.
    assert!(
        r.divergent_seeds.len() >= 10,
        "only {} / {} seeds diverged",
        r.divergent_seeds.len(),
        r.checked
    );
    let kinds: Vec<DivergenceKind> = r
        .reports
        .iter()
        .flat_map(|rep| rep.divergences.iter().map(|d| d.kind))
        .collect();
    assert!(
        kinds.contains(&DivergenceKind::ValueMismatch)
            || kinds.contains(&DivergenceKind::FinalMemory)
            || kinds.contains(&DivergenceKind::TornValue),
        "expected a data divergence kind, got {kinds:?}"
    );
}

/// A divergence report is a function of (seed, mode) only: rerunning the
/// checker yields the identical rendered report, so the seed printed in a
/// CI failure is a complete reproducer.
#[test]
fn divergence_reports_reproduce_from_the_seed() {
    let cfg = CheckConfig {
        code_centric: false,
        ..CheckConfig::default()
    };
    let seed = (0..64)
        .find(|&s| !check_seed(s, &cfg).clean())
        .expect("some seed diverges under ablation");
    let a = check_seed(seed, &cfg).render();
    let b = check_seed(seed, &cfg).render();
    assert_eq!(a, b);
    assert!(a.contains(&format!("--start {seed}")));
}

/// The generator is deterministic and structurally honest: same seed,
/// same program; coverage counters match a hand scan of the listing.
#[test]
fn generator_is_deterministic_across_call_sites() {
    for seed in [0u64, 7, 99, 12345] {
        let a = Litmus::generate(seed);
        let b = Litmus::generate(seed);
        assert_eq!(a, b, "seed {seed} generated differently twice");
        assert_eq!(a.coverage(), b.coverage());
        assert!(a.total_ops() > 0);
    }
}
