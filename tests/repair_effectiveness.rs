//! Workspace integration tests for the paper's quantitative claims, at
//! reduced scale: repair helps where it should, stays out of the way where
//! it shouldn't, and the comparison systems order the way Table 1 says.

use tmi_repro::bench::{Experiment, RunConfig, RunResult, RuntimeKind};

fn run(name: &str, cfg: &RunConfig) -> RunResult {
    Experiment::new(name).config(*cfg).run()
}

fn repair_cfg(rt: RuntimeKind) -> RunConfig {
    RunConfig::repair(rt).scale(1.0).misaligned()
}

#[test]
fn tmi_recovers_most_of_the_manual_speedup_on_lreg() {
    let base = run("lreg", &repair_cfg(RuntimeKind::Pthreads));
    let manual = run("lreg", &RunConfig::repair(RuntimeKind::Pthreads).fixed());
    let tmi = run("lreg", &repair_cfg(RuntimeKind::TmiProtect));
    assert!(base.ok() && manual.ok() && tmi.ok());
    assert!(tmi.repaired, "repair must trigger");
    let manual_speedup = base.cycles as f64 / manual.cycles as f64;
    let tmi_speedup = base.cycles as f64 / tmi.cycles as f64;
    assert!(
        manual_speedup > 2.0,
        "lreg FS must be substantial: {manual_speedup:.2}x"
    );
    assert!(
        tmi_speedup > 0.7 * manual_speedup,
        "TMI {tmi_speedup:.2}x vs manual {manual_speedup:.2}x"
    );
}

#[test]
fn laser_repair_is_much_weaker_than_tmi() {
    let base = run("stringmatch", &repair_cfg(RuntimeKind::Pthreads));
    let tmi = run("stringmatch", &repair_cfg(RuntimeKind::TmiProtect));
    let laser = run("stringmatch", &repair_cfg(RuntimeKind::Laser));
    assert!(base.ok() && tmi.ok() && laser.ok());
    let s_tmi = base.cycles as f64 / tmi.cycles as f64;
    let s_laser = base.cycles as f64 / laser.cycles as f64;
    assert!(
        s_tmi > 1.8 * s_laser,
        "TMI ({s_tmi:.2}x) should far outrepair LASER ({s_laser:.2}x)"
    );
}

#[test]
fn relaxed_atomics_keep_repair_effective_but_locks_do_not() {
    // §4.3's shptr pair: the headline result for code-centric consistency.
    let speedup = |name: &str| {
        let base = run(name, &repair_cfg(RuntimeKind::Pthreads));
        let tmi = run(name, &repair_cfg(RuntimeKind::TmiProtect));
        assert!(base.ok() && tmi.ok(), "{name}");
        base.cycles as f64 / tmi.cycles as f64
    };
    let relaxed = speedup("shptr-relaxed");
    let locked = speedup("shptr-lock");
    assert!(relaxed > 2.5, "shptr-relaxed: {relaxed:.2}x");
    assert!(locked < 1.5, "shptr-lock: {locked:.2}x");
    assert!(relaxed > 2.0 * locked);
}

#[test]
fn lu_ncb_is_fixed_by_tmis_allocator_without_page_protection() {
    let base = run("lu-ncb", &repair_cfg(RuntimeKind::Pthreads));
    let tmi = run("lu-ncb", &repair_cfg(RuntimeKind::TmiProtect));
    assert!(base.ok() && tmi.ok());
    assert!(
        tmi.cycles as f64 <= base.cycles as f64 * 0.8,
        "allocator change should repair lu-ncb: {} vs {}",
        tmi.cycles,
        base.cycles
    );
}

#[test]
fn spinlockpool_is_repaired_by_lock_repadding() {
    let base = run("spinlockpool", &repair_cfg(RuntimeKind::Pthreads));
    let tmi = run("spinlockpool", &repair_cfg(RuntimeKind::TmiProtect));
    assert!(base.ok() && tmi.ok());
    assert!(
        tmi.repaired,
        "the lock-array FS must be detected and repadded"
    );
    assert!(
        tmi.cycles < base.cycles,
        "repadding should help: {} vs {}",
        tmi.cycles,
        base.cycles
    );
}

#[test]
fn no_contention_means_no_intervention() {
    for name in ["blackscholes", "swaptions", "matrix"] {
        let base = run(name, &RunConfig::repair(RuntimeKind::Pthreads).scale(0.2));
        let tmi = run(name, &RunConfig::repair(RuntimeKind::TmiProtect).scale(0.2));
        assert!(base.ok() && tmi.ok());
        assert!(!tmi.repaired, "{name} must not trigger repair");
        let over = tmi.cycles as f64 / base.cycles as f64 - 1.0;
        assert!(over < 0.06, "{name}: {:.1}% overhead", over * 100.0);
    }
}

#[test]
fn detection_classifies_leveldbs_queue_as_true_sharing() {
    // §4.2: TMI sees the pristine store's contention but declines to
    // repair it (true sharing dominates).
    let r = run(
        "leveldb",
        &RunConfig::new(RuntimeKind::TmiProtect).scale(0.4),
    );
    assert!(r.ok());
    assert!(
        r.perf_events > 1_000,
        "contention must be visible: {}",
        r.perf_events
    );
    assert!(r.converted_at.is_none(), "no T2P for true sharing");
}

#[test]
fn huge_pages_cut_fault_counts_by_orders_of_magnitude() {
    let small = run(
        "ocean-cp",
        &RunConfig::new(RuntimeKind::TmiDetect).scale(0.2),
    );
    let huge = run(
        "ocean-cp",
        &RunConfig::new(RuntimeKind::TmiDetect)
            .scale(0.2)
            .huge_pages(),
    );
    assert!(small.ok() && huge.ok());
    assert!(
        huge.faults * 50 < small.faults,
        "huge pages: {} vs {} faults",
        huge.faults,
        small.faults
    );
}

#[test]
fn ptsb_everywhere_is_worse_than_targeted_on_histogram() {
    let cfg = |rt| RunConfig::repair(rt).scale(2.0).misaligned();
    let targeted = run("histogram", &cfg(RuntimeKind::TmiProtect));
    let everywhere = run("histogram", &cfg(RuntimeKind::TmiPtsbEverywhere));
    assert!(targeted.ok() && everywhere.ok());
    assert!(
        everywhere.cycles > targeted.cycles,
        "PTSB-everywhere {} should be slower than targeted {}",
        everywhere.cycles,
        targeted.cycles
    );
}
