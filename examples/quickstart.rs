//! Quickstart: build a tiny falsely-sharing program, run it bare, then run
//! it under TMI and watch the online repair kick in.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tmi_repro::machine::{VAddr, Width, FRAME_SIZE};
use tmi_repro::os::MapRequest;
use tmi_repro::program::{InstrKind, Op, SequenceProgram};
use tmi_repro::sim::{Engine, EngineConfig, NullRuntime, RuntimeHooks};
use tmi_repro::tmi::{AppLayout, TmiConfig, TmiRuntime};

const APP: u64 = 0x10_0000;
const APP_LEN: u64 = 64 * FRAME_SIZE;
const INTERNAL: u64 = 0x80_0000;
const INTERNAL_LEN: u64 = 16 * FRAME_SIZE;

/// Builds an engine with 4 threads, each hammering its own 8-byte counter.
/// With `stride = 8` the four counters pack into one cache line: textbook
/// false sharing.
fn build<R: RuntimeHooks>(runtime: R, stride: u64, iters: usize) -> Engine<R> {
    let mut cfg = EngineConfig::with_cores(4);
    cfg.tick_interval = 400_000; // detector analysis cadence
    let mut e = Engine::new(cfg, runtime);

    // All application memory lives in one shared-memory object, as under
    // TMI's allocator (Fig. 6) — that is what lets threads later become
    // processes while still sharing the heap.
    let app = e.core_mut().kernel.create_object(APP_LEN);
    let internal = e.core_mut().kernel.create_object(INTERNAL_LEN);
    let aspace = e.core_mut().kernel.create_aspace();
    e.core_mut()
        .kernel
        .map(aspace, MapRequest::object(VAddr::new(APP), APP_LEN, app, 0))
        .expect("map app");
    e.core_mut()
        .kernel
        .map(
            aspace,
            MapRequest::object(VAddr::new(INTERNAL), INTERNAL_LEN, internal, 0),
        )
        .expect("map internal");
    e.create_root_process(aspace);

    let ld = e
        .core_mut()
        .code
        .instr("quickstart::load", InstrKind::Load, Width::W8);
    let st = e
        .core_mut()
        .code
        .instr("quickstart::store", InstrKind::Store, Width::W8);
    for i in 0..4u64 {
        let addr = VAddr::new(APP + i * stride);
        let mut ops = Vec::with_capacity(iters * 2);
        for n in 0..iters {
            ops.push(Op::Load {
                pc: ld,
                addr,
                width: Width::W8,
            });
            ops.push(Op::Store {
                pc: st,
                addr,
                width: Width::W8,
                value: n as u64,
            });
        }
        e.add_thread(Box::new(SequenceProgram::new(ops)));
    }
    e
}

fn layout() -> AppLayout {
    AppLayout {
        app_obj: tmi_repro::os::ObjId(0),
        app_start: VAddr::new(APP),
        app_len: APP_LEN,
        internal_obj: tmi_repro::os::ObjId(1),
        internal_start: VAddr::new(INTERNAL),
        internal_len: INTERNAL_LEN,
        huge_pages: false,
    }
}

fn main() {
    let iters = 300_000;

    // 1. The buggy program on plain pthreads.
    let mut buggy = build(NullRuntime, 8, iters);
    let r_buggy = buggy.run();
    println!(
        "buggy   (packed counters): {:>12} cycles, {} HITM events",
        r_buggy.cycles,
        buggy.core().machine.stats().hitm_events
    );

    // 2. The manual fix: counters padded to separate lines.
    let mut fixed = build(NullRuntime, 64, iters);
    let r_fixed = fixed.run();
    println!(
        "manual  (padded counters): {:>12} cycles, {} HITM events",
        r_fixed.cycles,
        fixed.core().machine.stats().hitm_events
    );

    // 3. The buggy program under TMI: detection via HITM sampling, then
    //    threads become processes and the hot page goes copy-on-write.
    let mut tmi = build(TmiRuntime::new(TmiConfig::protect(), layout()), 8, iters);
    let r_tmi = tmi.run();
    let view = tmi.runtime().observe();
    println!(
        "TMI     (online repair)  : {:>12} cycles, repaired={}, commits={}, T2P at cycle {:?}",
        r_tmi.cycles,
        view.repaired(),
        view.repair().stats().commits,
        view.repair().stats().converted_at_cycle,
    );

    let manual = r_buggy.cycles as f64 / r_fixed.cycles as f64;
    let online = r_buggy.cycles as f64 / r_tmi.cycles as f64;
    println!(
        "\nmanual speedup {manual:.2}x; TMI automatic speedup {online:.2}x ({:.0}% of manual)",
        100.0 * online / manual
    );
}
