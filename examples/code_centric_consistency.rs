//! Code-centric consistency in action (§3.4): the same false-sharing
//! repair is sound or unsound depending on what *kind of code* touches the
//! buffered pages — and relaxed atomics are the case where knowing the
//! memory order buys real performance.
//!
//! Three demonstrations:
//!   1. shptr-relaxed vs shptr-lock: identical work, different refcount
//!      synchronization; relaxed atomics don't flush the PTSB.
//!   2. canneal: atomic/assembly swaps corrupt under a guard-less PTSB.
//!   3. cholesky: a legacy volatile flag hangs under a guard-less PTSB.
//!
//! ```sh
//! cargo run --release --example code_centric_consistency
//! ```

use tmi_bench::{Experiment, RuntimeKind};

fn main() {
    // 1. The relaxed-atomic optimization.
    println!("1. relaxed atomics need atomicity, not ordering — so they bypass the PTSB");
    println!("   without flushing it (Table 2 refinement):\n");
    for name in ["shptr-relaxed", "shptr-lock"] {
        let base = Experiment::repair(name).scale(2.0).run();
        let tmi = Experiment::repair(name)
            .runtime(RuntimeKind::TmiProtect)
            .scale(2.0)
            .run();
        println!(
            "   {name:14} TMI speedup {:.2}x  (commits: {})",
            base.cycles as f64 / tmi.cycles as f64,
            tmi.commits
        );
    }
    println!(
        "\n   The lock variant flushes (and re-twins) on every mutex operation, so the\n\
        \x20  repair's benefit evaporates — the paper measures 4.43x vs 1.04x (§4.3).\n"
    );

    // 2. canneal's atomic swaps.
    println!("2. canneal's lock-free element swaps, with and without the guard:\n");
    for rt in [RuntimeKind::TmiProtect, RuntimeKind::SheriffProtect] {
        let r = Experiment::repair("canneal")
            .runtime(rt)
            .scale(0.5)
            .max_ops(20_000_000)
            .run();
        println!(
            "   {:16} {}",
            rt.label(),
            match &r.verified {
                Ok(()) => "netlist intact (every element exactly once)".to_string(),
                Err(e) => format!("CORRUPTED: {e}"),
            }
        );
    }

    // 3. cholesky's volatile flag.
    println!("\n3. cholesky's volatile-flag handshake (Fig. 12):\n");
    for rt in [RuntimeKind::TmiProtect, RuntimeKind::SheriffProtect] {
        let r = Experiment::repair("cholesky")
            .runtime(rt)
            .max_ops(6_000_000)
            .run();
        println!(
            "   {:16} {}",
            rt.label(),
            if r.ok() {
                "completes"
            } else {
                "HANGS on a stale private flag"
            }
        );
    }
}
