//! The paper's flagship real-world scenario (§4.3): Google's leveldb
//! key-value store with an injected false-sharing bug — per-thread
//! operation counters packed into one cache line — repaired online by TMI
//! with no source access and no downtime.
//!
//! ```sh
//! cargo run --release --example leveldb_repair
//! ```

use tmi_bench::{Experiment, RuntimeKind};

fn main() {
    let scale = 2.0;
    println!("leveldb (readwhilewriting-style, 4 threads) with the injected counter bug\n");

    let base = Experiment::repair("leveldb-fs").scale(scale).run();
    println!(
        "pthreads, buggy      : {:>12} cycles  ({} HITM events)",
        base.cycles, base.hitm_events
    );

    let manual = Experiment::repair("leveldb-fs").scale(scale).fixed().run();
    println!(
        "pthreads, source fix : {:>12} cycles  ({:.2}x)",
        manual.cycles,
        base.cycles as f64 / manual.cycles as f64
    );

    let tmi = Experiment::repair("leveldb-fs")
        .runtime(RuntimeKind::TmiProtect)
        .scale(scale)
        .run();
    assert!(
        tmi.ok(),
        "leveldb under TMI must verify: {:?}",
        tmi.verified
    );
    println!(
        "TMI, online repair   : {:>12} cycles  ({:.2}x, {:.0}% of manual)",
        tmi.cycles,
        base.cycles as f64 / tmi.cycles as f64,
        100.0 * (base.cycles as f64 / tmi.cycles as f64)
            / (base.cycles as f64 / manual.cycles as f64)
    );
    println!(
        "  threads became processes at cycle {:?}; {} PTSB commits ({:.2}/s); every\n\
        \x20 operation counter verified intact through diff-and-merge.",
        tmi.converted_at,
        tmi.commits,
        tmi.commits_per_sec()
    );

    // The pristine store for contrast: mostly true sharing, nothing for
    // TMI to repair (§4.2).
    let pristine = Experiment::repair("leveldb")
        .runtime(RuntimeKind::TmiDetect)
        .scale(scale)
        .run();
    println!(
        "\npristine leveldb under tmi-detect: repaired={}, {} HITM events observed\n\
         (the queue's head/tail contention is true sharing — repair would not help)",
        pristine.repaired, pristine.perf_events
    );
}
