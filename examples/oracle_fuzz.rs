//! Differential-oracle walkthrough: check one litmus seed through the
//! full TMI repair path, then flip code-centric consistency off and watch
//! the same program population diverge — the §3.4 correctness argument
//! and its Figs. 11–12 ablation in miniature.
//!
//! ```text
//! cargo run --release --example oracle_fuzz [seed]
//! ```

use tmi_repro::bench::fuzz::{run_campaign, FuzzConfig};
use tmi_repro::oracle::{check_seed, CheckConfig, Litmus};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(2);

    println!("=== litmus program for seed {seed} ===");
    println!("{}", Litmus::generate(seed).listing());

    println!("=== repaired run vs sequential oracle (code-centric on) ===");
    let on = check_seed(seed, &CheckConfig::default());
    print!("{}", on.render());
    assert!(
        on.clean(),
        "repair with code-centric consistency must agree"
    );

    println!("=== the same seed without code-centric consistency ===");
    let off = check_seed(
        seed,
        &CheckConfig {
            code_centric: false,
            ..CheckConfig::default()
        },
    );
    print!("{}", off.render());
    if off.clean() {
        println!("(this seed happens to survive the ablation — many do not)");
    }

    println!("=== a small ablated campaign ===");
    let campaign = run_campaign(&FuzzConfig {
        seeds: 32,
        ablate_code_centric: true,
        max_reports: 1,
        ..FuzzConfig::default()
    });
    print!("{}", campaign.render());
}
