//! A `perf c2c`-style contention report (§5 compares TMI's HITM machinery
//! to Intel VTune and Linux `perf c2c`, which report but do not repair),
//! plus a Cheetah-style prediction of the manual-fix speedup — validated
//! against the actually measured manual fix.
//!
//! ```sh
//! cargo run --release --example detect_report [workload]
//! ```

use tmi_repro::bench::Experiment;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "lreg".to_string());

    let (result, report, predicted) = Experiment::repair(&name)
        .scale(1.0)
        .misaligned()
        .run_detect_report();
    assert!(result.ok(), "{name}: {:?}", result.verified);

    println!("{}", report.render());
    println!(
        "true-sharing : false-sharing event ratio = {:.2}",
        report.true_to_false_ratio()
    );
    println!("\npredicted manual-fix speedup (Cheetah-style): {predicted:.2}x");

    // Validate the prediction against reality.
    let base = Experiment::repair(&name).scale(1.0).misaligned().run();
    let fixed = Experiment::repair(&name).scale(1.0).fixed().run();
    if base.ok() && fixed.ok() {
        println!(
            "measured manual-fix speedup:                  {:.2}x",
            base.cycles as f64 / fixed.cycles as f64
        );
    }
}
