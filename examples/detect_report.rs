//! A `perf c2c`-style contention report (§5 compares TMI's HITM machinery
//! to Intel VTune and Linux `perf c2c`, which report but do not repair),
//! plus a Cheetah-style prediction of the manual-fix speedup — validated
//! against the actually measured manual fix.
//!
//! ```sh
//! cargo run --release --example detect_report [workload]
//! ```

use tmi_repro::bench::{run, run_detect_report, RunConfig, RuntimeKind};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lreg".to_string());
    let cfg = RunConfig::repair(RuntimeKind::TmiDetect).scale(1.0).misaligned();

    let (result, report, predicted) = run_detect_report(&name, &cfg);
    assert!(result.ok(), "{name}: {:?}", result.verified);

    println!("{}", report.render());
    println!(
        "true-sharing : false-sharing event ratio = {:.2}",
        report.true_to_false_ratio()
    );
    println!("\npredicted manual-fix speedup (Cheetah-style): {predicted:.2}x");

    // Validate the prediction against reality.
    let base = run(&name, &RunConfig::repair(RuntimeKind::Pthreads).scale(1.0).misaligned());
    let fixed = run(&name, &RunConfig::repair(RuntimeKind::Pthreads).scale(1.0).fixed());
    if base.ok() && fixed.ok() {
        println!(
            "measured manual-fix speedup:                  {:.2}x",
            base.cycles as f64 / fixed.cycles as f64
        );
    }
}
