#![warn(missing_docs)]

//! Umbrella crate for the TMI reproduction workspace: re-exports every
//! member crate and hosts the workspace-level integration tests and
//! examples. See README.md for the tour.
pub use tmi;
pub use tmi_alloc as alloc;
pub use tmi_baselines as baselines;
pub use tmi_bench as bench;
pub use tmi_machine as machine;
pub use tmi_oracle as oracle;
pub use tmi_os as os;
pub use tmi_perf as perf;
pub use tmi_program as program;
pub use tmi_service as service;
pub use tmi_sim as sim;
pub use tmi_telemetry as telemetry;
pub use tmi_workloads as workloads;
