//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements just enough of criterion's API for the workspace's bench
//! targets to compile and produce useful numbers: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Bencher::iter`] and [`Bencher::iter_batched`].
//! Each benchmark runs a short warmup, then an adaptive measurement
//! window, and prints the mean time per iteration. There is no
//! statistical analysis, no plots, and no saved baselines.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for benchmarks.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` sizes its batches (accepted, not acted on).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Declared throughput of one iteration (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, rendered as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(600);

impl Bencher {
    /// Times `routine` over an adaptive number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup: discover a batch size that exceeds ~1ms per batch.
        let mut batch = 1u64;
        let warm_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            if warm_start.elapsed() >= WARMUP {
                break;
            }
            if t0.elapsed() < Duration::from_millis(1) {
                batch = batch.saturating_mul(2);
            }
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            elapsed += t0.elapsed();
            iters += batch;
        }
        self.measured = Some((elapsed, iters));
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            std_black_box(routine(setup()));
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            elapsed += t0.elapsed();
            iters += 1;
        }
        self.measured = Some((elapsed, iters));
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput (printed with results).
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for API compatibility; sampling is adaptive here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, f);
        let _ = &self.criterion;
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; results print as they complete).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), None, f);
        self
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { measured: None };
    f(&mut b);
    match b.measured {
        Some((elapsed, iters)) if iters > 0 => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.1} Melem/s)", n as f64 * 1e3 / ns)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  ({:.1} MB/s)", n as f64 * 1e3 / ns)
                }
                None => String::new(),
            };
            println!("{name:40} {ns:12.1} ns/iter{rate}");
        }
        _ => println!("{name:40} (no measurement taken)"),
    }
}

/// Declares a function that runs the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a set of `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { measured: None };
        b.iter(|| black_box(1u64.wrapping_add(2)));
        let (elapsed, iters) = b.measured.unwrap();
        assert!(iters > 0);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn benchmark_id_renders_as_path() {
        assert_eq!(BenchmarkId::new("group", 42).to_string(), "group/42");
    }
}
