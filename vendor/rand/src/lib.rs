//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *tiny* subset of `rand`'s API it actually uses: the
//! [`RngCore`] and [`SeedableRng`] traits and [`rngs::StdRng`]. The
//! generator is xoshiro256** seeded through splitmix64 — high-quality,
//! deterministic, and dependency-free. It is *not* the same stream as the
//! real `StdRng` (which is ChaCha-based); everything in this workspace
//! only requires determinism, not a particular stream.

/// A random number generator core, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (Blackman & Vigna).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
