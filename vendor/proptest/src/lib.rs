//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests
//! use: [`Strategy`] with `prop_map`/`boxed`, range and tuple strategies,
//! [`strategy::Just`], [`arbitrary::any`], `proptest::collection::vec`,
//! and the `proptest!`, `prop_oneof!` and `prop_assert*!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   available via the assertion message; it is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name (plus the optional `PROPTEST_SEED` env override), so
//!   failures reproduce exactly across runs and machines.
//! * **Case count** defaults to 128 and obeys `PROPTEST_CASES`.

pub mod test_runner {
    //! The per-test deterministic RNG and case-count policy.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates a generator whose stream is a pure function of `name`
        /// (FNV-1a) and the optional `PROPTEST_SEED` env var.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h = h.wrapping_add(extra);
                }
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty sample range");
            self.next_u64() % n
        }
    }

    /// Number of cases each `proptest!` test runs (`PROPTEST_CASES`
    /// overrides; default 128).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(128)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of an output type from random bits.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must sum to a nonzero value.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Samples an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` of values from `element`, with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests. Each `fn name(pat in strategy,
/// ...) { body }` becomes a `#[test]` that samples its strategies
/// [`test_runner::cases`] times.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::test_runner::cases() {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions are unequal for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Pick {
        Small(u64),
        Big(u64),
        Fixed,
    }

    fn pick_strategy() -> impl Strategy<Value = Pick> {
        prop_oneof![
            3 => (0..10u64).prop_map(Pick::Small),
            1 => (1000..2000u64).prop_map(Pick::Big),
            1 => Just(Pick::Fixed),
        ]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3..17u64, y in 0..5usize, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn vectors_respect_length_bounds(
            xs in crate::collection::vec((0..4u32, any::<bool>()), 1..30),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 30);
            for (v, _) in xs {
                prop_assert!(v < 4);
            }
        }

        #[test]
        fn unions_honor_arms(p in pick_strategy()) {
            match p {
                Pick::Small(v) => prop_assert!(v < 10),
                Pick::Big(v) => prop_assert!((1000..2000).contains(&v)),
                Pick::Fixed => {}
            }
        }
    }

    #[test]
    fn deterministic_across_instantiations() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0..1000u64, 5..6);
        let mut r1 = crate::test_runner::TestRng::deterministic("fixed-name");
        let mut r2 = crate::test_runner::TestRng::deterministic("fixed-name");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
