//! Service-level counters: one [`ServiceStats`] per server, exported
//! through the workspace metrics registry under the `service.` prefix.
//!
//! The aggregate names here are part of the telemetry schema
//! (`tests/golden/metric_names.txt`, enforced by `validate_telemetry`);
//! per-tenant counters are rendered with dynamic
//! `service.tenant.<name>.*` names into `stats` replies only, so tenant
//! churn never perturbs the golden schema.

use std::sync::atomic::{AtomicU64, Ordering};

use tmi_telemetry::{MetricSink, MetricSource, MetricsSnapshot};

/// Monotonic aggregate counters for one job server. All methods are
/// lock-free; snapshots are taken through the metrics registry.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Jobs admitted (accepted replies), including cache hits.
    pub jobs_submitted: AtomicU64,
    /// Jobs finished with a result payload (computed or cache-served).
    pub jobs_completed: AtomicU64,
    /// Jobs finished with an error.
    pub jobs_failed: AtomicU64,
    /// Requeues after a worker died mid-job.
    pub jobs_retried: AtomicU64,
    /// Submissions answered straight from the result cache.
    pub cache_hits: AtomicU64,
    /// Submissions that had to compute (admission-time misses).
    pub cache_misses: AtomicU64,
    /// Cache stores dropped by the `cache_drop` fault point.
    pub cache_drops: AtomicU64,
    /// Rejections because the admission ring was full (or the
    /// `queue_full` fault point forced load-shedding).
    pub reject_queue_full: AtomicU64,
    /// Rejections because the tenant hit its outstanding-job quota.
    pub reject_quota: AtomicU64,
    /// Rejections because the request itself was invalid.
    pub reject_bad_request: AtomicU64,
    /// Lines that failed to parse as a request.
    pub malformed_requests: AtomicU64,
    /// `worker_kill` fault-point firings.
    pub worker_kills: AtomicU64,
    /// Workers the supervisor respawned after a death.
    pub workers_respawned: AtomicU64,
    /// High-water mark of any one priority ring's depth.
    pub queue_peak_depth: AtomicU64,
    /// Distinct tenants seen since boot.
    pub tenants: AtomicU64,
    /// Journal records appended (write-ahead accepted/done/failed).
    pub journal_appended: AtomicU64,
    /// Intact journal records replayed at boot.
    pub journal_replayed: AtomicU64,
    /// Torn/corrupt journal records skipped during replay.
    pub journal_torn_skipped: AtomicU64,
    /// Boot-time journal compactions (rewrite to unfinished jobs only).
    pub journal_compactions: AtomicU64,
    /// Result payloads spilled to the on-disk cache.
    pub cache_stores: AtomicU64,
    /// Cache entries loaded intact from disk at boot.
    pub cache_loaded: AtomicU64,
    /// Admission cache hits served from a disk-loaded (warm) entry.
    pub cache_warm_hits: AtomicU64,
    /// Spilled cache entries dropped for checksum damage at load.
    pub cache_corrupt_dropped: AtomicU64,
    /// Durability flushes skipped by the `flush_fail` fault point.
    pub flush_fails: AtomicU64,
    /// Drain requests received (graceful-shutdown entries).
    pub drain_requests: AtomicU64,
    /// Submissions refused with a `draining` reply.
    pub drain_rejected_submits: AtomicU64,
}

impl ServiceStats {
    /// Adds one to a counter.
    pub fn inc(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the queue-depth high-water mark to at least `depth`.
    pub fn note_queue_depth(&self, depth: u64) {
        self.queue_peak_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// The `service.*` snapshot of these counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut sink = MetricSink::new();
        sink.source("service", self);
        sink.finish()
    }
}

impl MetricSource for ServiceStats {
    fn metrics(&self, out: &mut MetricSink) {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        out.u64("jobs_submitted", g(&self.jobs_submitted));
        out.u64("jobs_completed", g(&self.jobs_completed));
        out.u64("jobs_failed", g(&self.jobs_failed));
        out.u64("jobs_retried", g(&self.jobs_retried));
        out.u64("cache_hits", g(&self.cache_hits));
        out.u64("cache_misses", g(&self.cache_misses));
        out.u64("cache_drops", g(&self.cache_drops));
        out.u64("reject_queue_full", g(&self.reject_queue_full));
        out.u64("reject_quota", g(&self.reject_quota));
        out.u64("reject_bad_request", g(&self.reject_bad_request));
        out.u64("malformed_requests", g(&self.malformed_requests));
        out.u64("worker_kills", g(&self.worker_kills));
        out.u64("workers_respawned", g(&self.workers_respawned));
        out.u64("queue_peak_depth", g(&self.queue_peak_depth));
        out.u64("tenants", g(&self.tenants));
        out.u64("persist.journal.appended", g(&self.journal_appended));
        out.u64("persist.journal.replayed", g(&self.journal_replayed));
        out.u64(
            "persist.journal.torn_skipped",
            g(&self.journal_torn_skipped),
        );
        out.u64("persist.journal.compactions", g(&self.journal_compactions));
        out.u64("persist.cache.stores", g(&self.cache_stores));
        out.u64("persist.cache.loaded", g(&self.cache_loaded));
        out.u64("persist.cache.warm_hits", g(&self.cache_warm_hits));
        out.u64(
            "persist.cache.corrupt_dropped",
            g(&self.cache_corrupt_dropped),
        );
        out.u64("persist.flush_fails", g(&self.flush_fails));
        out.u64("drain.requests", g(&self.drain_requests));
        out.u64("drain.rejected_submits", g(&self.drain_rejected_submits));
    }
}

/// The canonical `service.*` metric names, sorted — the service's
/// contribution to the telemetry schema, merged with the simulation
/// names by `validate_telemetry` and the schema gate tests.
pub fn service_metric_names() -> Vec<String> {
    ServiceStats::default()
        .snapshot()
        .names()
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_sorted_and_prefixed() {
        let names = service_metric_names();
        assert_eq!(names.len(), 26);
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot order is sorted");
        assert!(names.iter().all(|n| n.starts_with("service.")));
        assert!(names.contains(&"service.worker_kills".to_string()));
        assert!(names.contains(&"service.persist.cache.warm_hits".to_string()));
        assert!(names.contains(&"service.drain.requests".to_string()));
    }

    #[test]
    fn counters_flow_into_the_snapshot() {
        let s = ServiceStats::default();
        s.inc(&s.jobs_submitted);
        s.inc(&s.jobs_submitted);
        s.note_queue_depth(5);
        s.note_queue_depth(3);
        let snap = s.snapshot();
        assert_eq!(snap.u64("service.jobs_submitted"), 2);
        assert_eq!(snap.u64("service.queue_peak_depth"), 5);
        assert_eq!(snap.u64("service.jobs_failed"), 0);
    }
}
