//! Durable storage primitives for the job server: CRC-framed record
//! logs and the persistent result cache built on them.
//!
//! ## Frame format
//!
//! Both the job journal ([`crate::journal`]) and the cache spill file
//! use the same append-only framing:
//!
//! ```text
//! [len: u32 LE][crc: u32 LE][payload: len bytes]
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload bytes. A reader walks frames
//! from the start of the file and stops at the first frame that cannot
//! be trusted — header short of 8 bytes, an implausible length, a
//! truncated payload, or a CRC mismatch. Everything before that point is
//! intact (a CRC match on a length-delimited frame vouches for it);
//! everything from it on is the *torn tail* a `kill -9` or power cut can
//! leave behind, and is skipped without failing the boot. The writer
//! appends whole frames and never seeks, so the only damage a crash can
//! cause is a torn tail — exactly what the reader tolerates.
//!
//! Rewrites (journal compaction, cache scrub) never edit in place: they
//! write a fresh file beside the original, `sync_data`, then `rename`
//! over it — atomic on POSIX, so a crash during rotation leaves either
//! the old file or the new one, both valid.
//!
//! ## Fault points
//!
//! Three [`tmi_faultpoint`] points model the IO failure modes:
//! [`FaultPoint::JournalTear`] truncates a frame mid-write,
//! [`FaultPoint::CacheCorrupt`] flips a payload byte after the CRC was
//! computed (so the reader must reject the frame), and
//! [`FaultPoint::FlushFail`] skips the durability flush. All three are
//! *silent* at write time — the reply path never blocks on them — and
//! surface only as recompute work after a restart.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tmi_faultpoint::{FaultInjector, FaultPoint};
use tmi_telemetry::json::{self, Json};

/// Frames larger than this are treated as corruption, not data: the
/// biggest legitimate payload (a rendered result with a full metrics
/// snapshot) is a few hundred KiB.
const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the frame checksum.
/// Bitwise implementation: the log write path is not hot enough to
/// justify a table, and table-free keeps the codec obviously portable.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encodes one payload as a frame (header + payload, ready to append).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What a frame scan found.
#[derive(Debug, Default)]
pub struct FrameScan {
    /// Intact payloads, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes of torn/corrupt tail skipped (0 for a clean file).
    pub torn_bytes: u64,
    /// Whether the scan stopped early on a bad frame.
    pub torn: bool,
}

/// Walks `bytes` frame by frame; stops cleanly at the first torn or
/// corrupt frame (see the module docs for why the tail is skippable).
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut scan = FrameScan::default();
    let mut at = 0usize;
    while at < bytes.len() {
        let rest = &bytes[at..];
        if rest.len() < 8 {
            break; // torn header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_FRAME_LEN || rest.len() < 8 + len as usize {
            break; // implausible length or truncated payload
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            break; // corrupt frame: nothing after it can be trusted
        }
        scan.payloads.push(payload.to_vec());
        at += 8 + len as usize;
    }
    if at < bytes.len() {
        scan.torn = true;
        scan.torn_bytes = (bytes.len() - at) as u64;
    }
    scan
}

/// What one append actually did, for the caller's metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppendOutcome {
    /// A fault point tore or corrupted the frame on the way down.
    pub damaged: bool,
    /// The durability flush was skipped ([`FaultPoint::FlushFail`]) or
    /// failed.
    pub flush_skipped: bool,
}

/// An append-only CRC-framed log file.
#[derive(Debug)]
pub struct FrameLog {
    path: PathBuf,
    file: File,
}

impl FrameLog {
    /// Opens `path` for appending, creating it if absent.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<FrameLog> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FrameLog { path, file })
    }

    /// The file backing this log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one frame, rolling the IO fault points: `JournalTear`
    /// writes only a prefix of the frame, `CacheCorrupt` flips a payload
    /// byte (`corruptible` lets the journal opt out — tear is its
    /// failure mode), `FlushFail` skips the flush. IO errors are
    /// reported through the outcome, never panicked — durability is
    /// best-effort, correctness comes from replay + recompute.
    pub fn append(
        &mut self,
        payload: &[u8],
        faults: Option<&FaultInjector>,
        corruptible: bool,
    ) -> AppendOutcome {
        let mut frame = encode_frame(payload);
        let mut out = AppendOutcome::default();
        let roll = |p: FaultPoint| faults.map(|f| f.should_fail(p)).unwrap_or(false);
        if roll(FaultPoint::JournalTear) {
            // A torn write: only a prefix (cutting into the payload, past
            // the header) reaches the file.
            frame.truncate(8 + payload.len() / 2);
            out.damaged = true;
        } else if corruptible && roll(FaultPoint::CacheCorrupt) {
            // Bit rot after the CRC was computed: the frame lands whole
            // but the reader's CRC check must throw it away.
            let at = (8 + payload.len() / 2).min(frame.len() - 1);
            frame[at] ^= 0x40;
            out.damaged = true;
        }
        if self.file.write_all(&frame).is_err() {
            out.damaged = true;
            return out;
        }
        if roll(FaultPoint::FlushFail) || self.file.sync_data().is_err() {
            out.flush_skipped = true;
        }
        out
    }

    /// Forces a durability flush (drain path: everything appended so
    /// far must be on disk before exit 0).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    /// Reads and scans the whole file at `path` (absent file = empty
    /// scan, not an error: first boot has no log yet).
    pub fn scan_file(path: &Path) -> std::io::Result<FrameScan> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(scan_frames(&bytes))
    }

    /// Atomically replaces the file at `path` with one holding exactly
    /// `payloads`: write a sibling tmp file, flush it, rename over. A
    /// crash at any point leaves a valid file (old or new).
    pub fn rewrite(path: &Path, payloads: &[Vec<u8>]) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            for p in payloads {
                f.write_all(&encode_frame(p))?;
            }
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)
    }
}

/// What loading a cache spill file recovered.
#[derive(Debug, Default)]
pub struct CacheLoad {
    /// Recovered entries: canonical spec JSON → payload bytes.
    pub entries: Vec<(String, Arc<String>)>,
    /// Frames whose JSON shape was wrong (dropped).
    pub corrupt_dropped: u64,
    /// Whether the file had a torn/corrupt tail.
    pub torn: bool,
}

/// The result-cache spill: one frame per store, payload
/// `{"key": <spec JSON as a string>, "payload": <payload string>}`.
/// Later frames for the same key win (identical bytes anyway — results
/// are deterministic — but re-stores after a `cache_drop` are normal).
#[derive(Debug)]
pub struct CacheSpill {
    log: FrameLog,
}

impl CacheSpill {
    /// Opens the spill file for appending.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<CacheSpill> {
        Ok(CacheSpill {
            log: FrameLog::open(path)?,
        })
    }

    /// Renders one store as a frame payload.
    fn encode(key: &str, payload: &str) -> String {
        format!(
            "{{\"key\": {}, \"payload\": {}}}",
            json::string(key),
            json::string(payload)
        )
    }

    /// Forces a durability flush of the spill file.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.log.sync()
    }

    /// Appends one store (see [`FrameLog::append`] for fault semantics).
    pub fn store(
        &mut self,
        key: &str,
        payload: &str,
        faults: Option<&FaultInjector>,
    ) -> AppendOutcome {
        self.log
            .append(Self::encode(key, payload).as_bytes(), faults, true)
    }

    /// Loads every recoverable entry from `path`, then scrubs the file:
    /// if anything was dropped (torn tail, corrupt frame), the surviving
    /// entries are atomically rewritten so damage never accumulates.
    pub fn load(path: &Path) -> std::io::Result<CacheLoad> {
        let scan = FrameLog::scan_file(path)?;
        let mut out = CacheLoad {
            torn: scan.torn,
            ..CacheLoad::default()
        };
        let mut good: Vec<Vec<u8>> = Vec::new();
        for frame in &scan.payloads {
            let parsed = std::str::from_utf8(frame).ok().and_then(|s| {
                let v = json::parse(s).ok()?;
                let key = v.get("key").and_then(Json::as_str)?.to_string();
                let payload = v.get("payload").and_then(Json::as_str)?.to_string();
                Some((key, payload))
            });
            match parsed {
                Some((key, payload)) => {
                    out.entries.push((key, Arc::new(payload)));
                    good.push(frame.clone());
                }
                None => out.corrupt_dropped += 1,
            }
        }
        if scan.torn || out.corrupt_dropped > 0 {
            FrameLog::rewrite(path, &good)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmi_faultpoint::{FaultPlan, PointPlan};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tmi-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("log")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 reference values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frames_round_trip() {
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"{\"x\": 1}"];
        let mut bytes = Vec::new();
        for p in &payloads {
            bytes.extend_from_slice(&encode_frame(p));
        }
        let scan = scan_frames(&bytes);
        assert!(!scan.torn);
        assert_eq!(scan.payloads, payloads);
    }

    #[test]
    fn truncation_at_every_offset_keeps_the_intact_prefix() {
        let mut bytes = Vec::new();
        for p in [b"first".as_slice(), b"second", b"third-record"] {
            bytes.extend_from_slice(&encode_frame(p));
        }
        let last_start = bytes.len() - (8 + "third-record".len());
        for cut in last_start..bytes.len() {
            let scan = scan_frames(&bytes[..cut]);
            assert_eq!(scan.payloads.len(), 2, "cut at {cut}");
            assert_eq!(scan.torn, cut > last_start, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_frame_stops_the_scan() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(b"good"));
        let at = bytes.len() + 10; // inside the second payload
        bytes.extend_from_slice(&encode_frame(b"about-to-be-corrupted"));
        bytes[at] ^= 0xFF;
        let scan = scan_frames(&bytes);
        assert_eq!(scan.payloads, vec![b"good".to_vec()]);
        assert!(scan.torn);
    }

    #[test]
    fn cache_spill_stores_and_loads() {
        let path = tmp("spill");
        let mut spill = CacheSpill::open(&path).unwrap();
        spill.store("{\"workload\": \"a\"}", "{\"cycles\": 1}", None);
        spill.store("{\"workload\": \"b\"}", "{\"cycles\": 2}", None);
        let load = CacheSpill::load(&path).unwrap();
        assert!(!load.torn);
        assert_eq!(load.corrupt_dropped, 0);
        assert_eq!(load.entries.len(), 2);
        assert_eq!(load.entries[0].0, "{\"workload\": \"a\"}");
        assert_eq!(*load.entries[1].1, "{\"cycles\": 2}");
    }

    #[test]
    fn cache_corrupt_fault_drops_only_the_damaged_entry() {
        let path = tmp("corrupt");
        let faults = FaultInjector::new(
            FaultPlan::quiet().with(FaultPoint::CacheCorrupt, PointPlan::transient(2, 1)),
        );
        let mut spill = CacheSpill::open(&path).unwrap();
        let a = spill.store("k1", "v1", Some(&faults));
        let b = spill.store("k2", "v2", Some(&faults)); // roll 2 fires
        assert!(!a.damaged);
        assert!(b.damaged);
        let load = CacheSpill::load(&path).unwrap();
        // The corrupted frame fails its CRC, which tears the scan there;
        // the intact first entry survives.
        assert_eq!(load.entries.len(), 1);
        assert_eq!(load.entries[0].0, "k1");
        assert!(load.torn);
        // The load scrubbed the file: a second load is clean.
        let again = CacheSpill::load(&path).unwrap();
        assert!(!again.torn);
        assert_eq!(again.entries.len(), 1);
    }

    #[test]
    fn journal_tear_fault_tears_the_tail() {
        let path = tmp("tear");
        let faults = FaultInjector::new(
            FaultPlan::quiet().with(FaultPoint::JournalTear, PointPlan::transient(3, 1)),
        );
        let mut log = FrameLog::open(&path).unwrap();
        log.append(b"one", Some(&faults), false);
        log.append(b"two", Some(&faults), false);
        let torn = log.append(b"three-gets-torn", Some(&faults), false);
        assert!(torn.damaged);
        let scan = FrameLog::scan_file(&path).unwrap();
        assert_eq!(scan.payloads, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(scan.torn);
    }

    #[test]
    fn rewrite_is_atomic_and_replaces_content() {
        let path = tmp("rewrite");
        let mut log = FrameLog::open(&path).unwrap();
        log.append(b"stale", None, false);
        FrameLog::rewrite(&path, &[b"fresh".to_vec(), b"pair".to_vec()]).unwrap();
        let scan = FrameLog::scan_file(&path).unwrap();
        assert_eq!(scan.payloads, vec![b"fresh".to_vec(), b"pair".to_vec()]);
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn missing_file_scans_empty() {
        let path = tmp("absent").join("never-created");
        let scan = FrameLog::scan_file(&path).unwrap();
        assert!(scan.payloads.is_empty());
        assert!(!scan.torn);
    }
}
