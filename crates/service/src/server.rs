//! The multi-tenant job server.
//!
//! One [`Service`] owns a TCP listener, a fixed worker pool layered on
//! the deterministic [`tmi_bench::Executor`], three priority-classed
//! admission rings ([`BoundedQueue`]), a memoized result cache keyed on
//! the full [`JobSpec`] identity, per-tenant quota accounting, and a
//! supervisor that respawns workers the `worker_kill` fault point
//! murders mid-job.
//!
//! ## Determinism contract
//!
//! A job's result payload is a pure function of its spec. The service
//! holds that line through every path a reply can take:
//!
//! * **computed** — workers run specs through the shared [`Executor`],
//!   whose runs are deterministic;
//! * **cache-served** — the cache stores the rendered payload bytes, so
//!   a hit replays exactly what compute produced;
//! * **retried** — the `worker_kill` fault fires *before* compute
//!   starts, the job is requeued, and the respawned worker recomputes
//!   the same bytes.
//!
//! The integration suite and `scripts/check.sh` byte-compare all three.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tmi_bench::{Executor, JobSpec};
use tmi_faultpoint::{FaultInjector, FaultPlan, FaultPoint, PointPlan};
use tmi_telemetry::{chrome, EventKind, MetricSink, MetricsSnapshot, PhaseProfile, TraceEvent};

use crate::journal::{Journal, JournalRecord};
use crate::persist::CacheSpill;
use crate::proto::{self, Request, PRIORITIES};
use crate::queue::BoundedQueue;
use crate::stats::ServiceStats;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address; port 0 picks a free port (read it back with
    /// [`Service::addr`]).
    pub addr: String,
    /// Worker pool size. 0 runs the server admission-only — jobs queue
    /// but never execute (the backpressure tests use this to fill the
    /// rings deterministically).
    pub workers: usize,
    /// Capacity of each priority ring (rounded up to a power of two).
    pub queue_capacity: usize,
    /// Outstanding-job quota applied to tenants.
    pub default_quota: usize,
    /// Total attempts a job gets before it fails (≥ 1); attempts beyond
    /// the first happen only when a worker dies mid-job.
    pub max_attempts: u32,
    /// Fault plan for the service fault points (`worker_kill`,
    /// `queue_full`, `cache_drop`, `journal_tear`, `cache_corrupt`,
    /// `flush_fail`); `None` runs clean.
    pub faults: Option<FaultPlan>,
    /// Durable-state directory (job journal + result-cache spill).
    /// `None` runs fully in-memory, exactly as before this layer
    /// existed. With a directory, a restarted daemon replays the
    /// journal (re-enqueueing unfinished jobs and rebuilding tenant
    /// quota state) and reloads the spilled cache, so warm restarts
    /// serve byte-identical cached replies without re-simulating.
    pub data_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            default_quota: 8,
            max_attempts: 3,
            faults: None,
            data_dir: None,
        }
    }
}

/// The deterministic chaos plan used by CI and the fault campaign tests:
/// every second worker pickup dies, every third cache store is dropped.
/// `queue_full` stays off (backpressure is exercised by actually filling
/// the ring). Seed 0 means no faults.
pub fn chaos_plan(seed: u64) -> Option<FaultPlan> {
    (seed != 0).then(|| {
        FaultPlan::quiet()
            .with(FaultPoint::WorkerKill, PointPlan::transient(2, 1))
            .with(FaultPoint::CacheDrop, PointPlan::transient(3, 1))
    })
}

/// Extends `base` with one of the deterministic persistence fault
/// plans the crash matrix drives: `"journal"` tears every third journal
/// frame and skips every second flush; `"cache"` corrupts every second
/// spilled cache frame and skips every third flush. `"none"` (or any
/// other string) leaves `base` untouched. All damage is at-rest only —
/// replies must stay byte-identical, the faults just force replay and
/// recompute work after a restart.
pub fn persist_chaos_plan(kind: &str, base: Option<FaultPlan>) -> Option<FaultPlan> {
    let base_plan = || base.clone().unwrap_or_else(FaultPlan::quiet);
    match kind {
        "journal" => Some(
            base_plan()
                .with(FaultPoint::JournalTear, PointPlan::transient(3, 1))
                .with(FaultPoint::FlushFail, PointPlan::transient(2, 1)),
        ),
        "cache" => Some(
            base_plan()
                .with(FaultPoint::CacheCorrupt, PointPlan::transient(2, 1))
                .with(FaultPoint::FlushFail, PointPlan::transient(3, 1)),
        ),
        _ => base,
    }
}

/// Per-job progress event, retained for streaming and `wait` replay.
struct JobEvent {
    state: &'static str,
    attempt: u32,
    /// Rendered `service.*` snapshot at the moment of the event — the
    /// metrics registry is the source of streamed progress.
    metrics: String,
}

enum JobState {
    Queued,
    Running,
    Done { payload: Arc<String>, cached: bool },
    Failed { message: String },
}

struct Job {
    tenant: String,
    spec: JobSpec,
    priority: usize,
    attempts: u32,
    state: JobState,
    events: Vec<JobEvent>,
}

#[derive(Default)]
struct Tenant {
    quota: usize,
    outstanding: usize,
    submitted: u64,
    completed: u64,
    rejected: u64,
}

/// One result-cache slot. `warm` marks entries loaded from the disk
/// spill at boot (first hit on one counts as a warm-restart hit).
struct CacheEntry {
    payload: Arc<String>,
    warm: bool,
}

/// Everything the connection, worker, and supervisor threads share.
struct ServiceInner {
    cfg: ServiceConfig,
    /// One ring per priority class; workers drain 0 first.
    queues: [BoundedQueue<u64>; PRIORITIES],
    /// Wakes idle workers when a job is queued (or shutdown begins).
    queue_signal: (Mutex<()>, Condvar),
    /// Job table indexed by `job_id - 1`; `job_cv` wakes streamers on
    /// any job-state change.
    jobs: Mutex<Vec<Job>>,
    job_cv: Condvar,
    /// Result cache: canonical spec JSON → rendered payload bytes.
    cache: Mutex<HashMap<String, CacheEntry>>,
    tenants: Mutex<BTreeMap<String, Tenant>>,
    stats: ServiceStats,
    faults: Option<FaultInjector>,
    executor: Executor,
    /// Write-ahead job journal (None without a `data_dir`).
    journal: Option<Mutex<Journal>>,
    /// Result-cache spill file (None without a `data_dir`).
    spill: Option<Mutex<CacheSpill>>,
    /// Graceful drain in progress: admission refuses, in-flight jobs
    /// finish, then the supervisor flips `shutdown`.
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// Chrome-trace spans (one per job completion), stamped in host
    /// microseconds since boot.
    trace: Mutex<Vec<TraceEvent>>,
    started: Instant,
}

/// What `submit` admission decided.
enum Admission {
    Accepted(u64),
    Rejected {
        reason: &'static str,
        detail: String,
    },
}

impl ServiceInner {
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn rendered_stats(&self) -> String {
        self.stats.snapshot().to_json("")
    }

    /// The full metrics document for `stats` replies: the schema-stable
    /// `service.*` aggregates plus dynamic per-tenant counters (never
    /// part of the golden schema).
    fn stats_with_tenants(&self) -> MetricsSnapshot {
        let mut sink = MetricSink::new();
        sink.source("service", &self.stats);
        for (name, t) in self.tenants.lock().unwrap().iter() {
            let k = |field: &str| format!("service.tenant.{name}.{field}");
            sink.u64(&k("quota"), t.quota as u64);
            sink.u64(&k("outstanding"), t.outstanding as u64);
            sink.u64(&k("submitted"), t.submitted);
            sink.u64(&k("completed"), t.completed);
            sink.u64(&k("rejected"), t.rejected);
        }
        sink.finish()
    }

    fn roll(&self, point: FaultPoint) -> bool {
        self.faults
            .as_ref()
            .map(|inj| inj.should_fail(point))
            .unwrap_or(false)
    }

    /// Appends a progress event to a job (caller holds the jobs lock —
    /// the snapshot is rendered before locking).
    fn push_event(job: &mut Job, state: &'static str, metrics: String) {
        let attempt = job.attempts;
        job.events.push(JobEvent {
            state,
            attempt,
            metrics,
        });
    }

    /// Decrements a tenant's outstanding count (job reached a terminal
    /// state or was served from cache at admission).
    fn release_tenant(&self, tenant: &str, completed: bool) {
        let mut tenants = self.tenants.lock().unwrap();
        if let Some(t) = tenants.get_mut(tenant) {
            t.outstanding = t.outstanding.saturating_sub(1);
            if completed {
                t.completed += 1;
            }
        }
    }

    /// Appends one record to the job journal (no-op without a
    /// `data_dir`), surfacing skipped flushes in the metrics.
    fn journal_append(&self, record: &JournalRecord) {
        if let Some(journal) = &self.journal {
            let out = journal.lock().unwrap().append(record, self.faults.as_ref());
            self.stats.inc(&self.stats.journal_appended);
            if out.flush_skipped {
                self.stats.inc(&self.stats.flush_fails);
            }
        }
    }

    /// The admission path: validate, check drain state, check quota,
    /// consult the cache, roll the `queue_full` fault, journal, enqueue.
    fn admit(&self, tenant_name: &str, spec: JobSpec, priority: usize, fresh: bool) -> Admission {
        // Draining servers admit nothing: the client's retry layer
        // treats this reply as transient and resubmits elsewhere/later.
        if self.draining.load(Ordering::SeqCst) {
            self.stats.inc(&self.stats.drain_rejected_submits);
            return Admission::Rejected {
                reason: "draining",
                detail: "server is draining; resubmit after restart".to_string(),
            };
        }

        // Reject jobs naming no known workload before they consume
        // quota. `is_litmus` is seed-parse-strict (a malformed
        // `litmus:`/`litmus+vm:` seed makes it false), so this one check
        // also covers bad litmus workloads.
        let known = spec.is_litmus() || tmi_workloads::by_name(&spec.workload).is_some();
        if !known {
            self.stats.inc(&self.stats.reject_bad_request);
            self.note_tenant_reject(tenant_name);
            return Admission::Rejected {
                reason: "bad_request",
                detail: format!("unknown workload {:?}", spec.workload),
            };
        }

        // Quota: reserve an outstanding slot under the tenants lock.
        {
            let mut tenants = self.tenants.lock().unwrap();
            let t = tenants.entry(tenant_name.to_string()).or_insert_with(|| {
                self.stats.inc(&self.stats.tenants);
                Tenant {
                    quota: self.cfg.default_quota,
                    ..Tenant::default()
                }
            });
            if t.outstanding >= t.quota {
                t.rejected += 1;
                self.stats.inc(&self.stats.reject_quota);
                return Admission::Rejected {
                    reason: "quota_exceeded",
                    detail: format!(
                        "tenant {tenant_name:?} has {} outstanding jobs (quota {})",
                        t.outstanding, t.quota
                    ),
                };
            }
            t.outstanding += 1;
        }

        let cache_key = spec.to_json();
        if !fresh {
            let hit = {
                let cache = self.cache.lock().unwrap();
                cache
                    .get(&cache_key)
                    .map(|e| (Arc::clone(&e.payload), e.warm))
            };
            if let Some((payload, warm)) = hit {
                // Served straight from the cache: the job is born Done
                // and never touches the rings or the workers. A `warm`
                // entry came off disk — this hit is the restart saving
                // a re-simulation.
                if warm {
                    self.stats.inc(&self.stats.cache_warm_hits);
                }
                self.stats.inc(&self.stats.cache_hits);
                self.stats.inc(&self.stats.jobs_submitted);
                self.stats.inc(&self.stats.jobs_completed);
                self.release_tenant(tenant_name, true);
                if let Some(t) = self.tenants.lock().unwrap().get_mut(tenant_name) {
                    t.submitted += 1;
                }
                let snapshot = self.rendered_stats();
                let mut jobs = self.jobs.lock().unwrap();
                let id = jobs.len() as u64 + 1;
                let mut job = Job {
                    tenant: tenant_name.to_string(),
                    spec,
                    priority,
                    attempts: 0,
                    state: JobState::Done {
                        payload,
                        cached: true,
                    },
                    events: Vec::new(),
                };
                Self::push_event(&mut job, "done", snapshot);
                jobs.push(job);
                self.job_cv.notify_all();
                return Admission::Accepted(id);
            }
        }
        self.stats.inc(&self.stats.cache_misses);

        // The queue_full fault point models load-shedding under
        // admission pressure: a firing sheds this request even though
        // the ring has room.
        if self.roll(FaultPoint::QueueFull) {
            self.stats.inc(&self.stats.reject_queue_full);
            self.release_tenant(tenant_name, false);
            self.note_tenant_reject(tenant_name);
            return Admission::Rejected {
                reason: "queue_full",
                detail: "admission shed by the queue_full fault point".to_string(),
            };
        }

        // Create the job, then publish its id to the priority ring.
        let snapshot = self.rendered_stats();
        let spec_for_journal = spec.clone();
        let id = {
            let mut jobs = self.jobs.lock().unwrap();
            let id = jobs.len() as u64 + 1;
            let mut job = Job {
                tenant: tenant_name.to_string(),
                spec,
                priority,
                attempts: 0,
                state: JobState::Queued,
                events: Vec::new(),
            };
            Self::push_event(&mut job, "queued", snapshot);
            jobs.push(job);
            id
        };
        // Write-ahead: the accepted record hits the journal before the
        // job can run (or the accepted reply can flush), so a crash
        // from here on leaves a record to replay. A ring-full rejection
        // below lands a terminal `failed` record after it.
        self.journal_append(&JournalRecord::Accepted {
            id,
            tenant: tenant_name.to_string(),
            priority,
            spec: spec_for_journal,
        });
        if self.queues[priority].push(id).is_err() {
            // Ring full: true backpressure. The job record stays as a
            // tombstone so its id never re-enters circulation.
            let detail = format!(
                "priority-{priority} ring at capacity {}",
                self.queues[priority].capacity()
            );
            self.fail_job(id, "rejected at admission: queue full".to_string());
            self.stats.inc(&self.stats.reject_queue_full);
            self.note_tenant_reject(tenant_name);
            return Admission::Rejected {
                reason: "queue_full",
                detail,
            };
        }
        self.stats.inc(&self.stats.jobs_submitted);
        if let Some(t) = self.tenants.lock().unwrap().get_mut(tenant_name) {
            t.submitted += 1;
        }
        self.stats
            .note_queue_depth(self.queues[priority].len() as u64);
        self.queue_signal.1.notify_one();
        Admission::Accepted(id)
    }

    fn note_tenant_reject(&self, tenant: &str) {
        if let Some(t) = self.tenants.lock().unwrap().get_mut(tenant) {
            t.rejected += 1;
        }
    }

    /// Moves a job to `Failed` and releases its tenant slot.
    fn fail_job(&self, id: u64, message: String) {
        self.journal_append(&JournalRecord::Failed { id });
        self.stats.inc(&self.stats.jobs_failed);
        let snapshot = self.rendered_stats();
        let tenant;
        {
            let mut jobs = self.jobs.lock().unwrap();
            let job = &mut jobs[id as usize - 1];
            tenant = job.tenant.clone();
            job.state = JobState::Failed {
                message: message.clone(),
            };
            Self::push_event(job, "failed", snapshot);
        }
        self.release_tenant(&tenant, false);
        self.job_cv.notify_all();
    }

    /// Moves a job to `Done`, stores the payload in the result cache
    /// (unless `cache_drop` fires), emits the job's trace span, and
    /// releases the tenant slot.
    fn complete_job(&self, id: u64, payload: String, span_start_us: u64, worker: u64) {
        let payload = Arc::new(payload);
        let (cache_key, tenant, priority, attempts);
        {
            let jobs = self.jobs.lock().unwrap();
            let job = &jobs[id as usize - 1];
            cache_key = job.spec.to_json();
            tenant = job.tenant.clone();
            priority = job.priority;
            attempts = job.attempts;
        }
        if self.roll(FaultPoint::CacheDrop) {
            self.stats.inc(&self.stats.cache_drops);
        } else {
            if let Some(spill) = &self.spill {
                let out = spill
                    .lock()
                    .unwrap()
                    .store(&cache_key, &payload, self.faults.as_ref());
                self.stats.inc(&self.stats.cache_stores);
                if out.flush_skipped {
                    self.stats.inc(&self.stats.flush_fails);
                }
            }
            self.cache.lock().unwrap().insert(
                cache_key,
                CacheEntry {
                    payload: Arc::clone(&payload),
                    warm: false,
                },
            );
        }
        self.journal_append(&JournalRecord::Done { id });
        self.stats.inc(&self.stats.jobs_completed);
        self.release_tenant(&tenant, true);
        let snapshot = self.rendered_stats();
        {
            let mut jobs = self.jobs.lock().unwrap();
            let job = &mut jobs[id as usize - 1];
            job.state = JobState::Done {
                payload,
                cached: false,
            };
            Self::push_event(job, "done", snapshot);
        }
        let end = self.now_us();
        self.trace.lock().unwrap().push(TraceEvent {
            name: "service.job",
            cat: "service",
            tid: worker,
            cycle: span_start_us,
            kind: EventKind::Complete {
                dur_cycles: end.saturating_sub(span_start_us),
            },
            args: vec![
                ("job_id", id),
                ("attempt", attempts as u64),
                ("priority", priority as u64),
            ],
        });
        self.job_cv.notify_all();
    }

    /// Pops the highest-priority queued job id.
    fn next_job(&self) -> Option<u64> {
        self.queues.iter().find_map(BoundedQueue::pop)
    }

    /// Flips the server into drain mode (idempotent): admission starts
    /// refusing, and the supervisor shuts the server down once every
    /// admitted job has reached a terminal state.
    fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            self.stats.inc(&self.stats.drain_requests);
        }
        self.queue_signal.1.notify_all();
    }

    /// Whether a draining server has finished its in-flight work: every
    /// ring empty and every job terminal.
    fn drained(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
            && self
                .jobs
                .lock()
                .unwrap()
                .iter()
                .all(|j| matches!(j.state, JobState::Done { .. } | JobState::Failed { .. }))
    }

    /// Final durability flush on the drain path (best-effort — replay
    /// recovers anything a failed flush loses).
    fn flush_durable(&self) {
        if let Some(journal) = &self.journal {
            let _ = journal.lock().unwrap().sync();
        }
        if let Some(spill) = &self.spill {
            let _ = spill.lock().unwrap().sync();
        }
    }

    /// One worker thread: drain the rings; park on the condvar when
    /// idle. A `worker_kill` firing panics the thread *after* arranging
    /// the job's retry — the supervisor respawns the worker and the
    /// respawned pool recomputes the identical result.
    fn worker_loop(self: &Arc<Self>, worker: u64) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let Some(id) = self.next_job() else {
                let guard = self.queue_signal.0.lock().unwrap();
                let _ = self
                    .queue_signal
                    .1
                    .wait_timeout(guard, Duration::from_millis(10))
                    .unwrap();
                continue;
            };

            let span_start = self.now_us();
            let spec = {
                let snapshot = self.rendered_stats();
                let mut jobs = self.jobs.lock().unwrap();
                let job = &mut jobs[id as usize - 1];
                job.attempts += 1;
                job.state = JobState::Running;
                Self::push_event(job, "running", snapshot);
                job.spec.clone()
            };
            self.job_cv.notify_all();

            // The kill point sits between pickup and compute, so a
            // killed attempt has observably done no work — the retry
            // recomputes from scratch and must produce the same bytes.
            if self.roll(FaultPoint::WorkerKill) {
                self.stats.inc(&self.stats.worker_kills);
                let (attempts, priority) = {
                    let jobs = self.jobs.lock().unwrap();
                    let job = &jobs[id as usize - 1];
                    (job.attempts, job.priority)
                };
                if attempts < self.cfg.max_attempts && self.queues[priority].push(id).is_ok() {
                    self.stats.inc(&self.stats.jobs_retried);
                    let snapshot = self.rendered_stats();
                    {
                        let mut jobs = self.jobs.lock().unwrap();
                        let job = &mut jobs[id as usize - 1];
                        job.state = JobState::Queued;
                        Self::push_event(job, "retrying", snapshot);
                    }
                    self.job_cv.notify_all();
                    self.queue_signal.1.notify_one();
                } else {
                    self.fail_job(id, format!("worker killed on final attempt {attempts}"));
                }
                panic!("worker {worker} killed by fault injection");
            }

            let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if spec.is_litmus() {
                    tmi_bench::check_spec(&spec).map(|report| proto::litmus_payload(&spec, &report))
                } else {
                    let job = self.executor.run_spec(&spec);
                    job.outcome.map(|r| proto::run_payload(&spec, &r))
                }
            }));
            match computed {
                Ok(Ok(payload)) => self.complete_job(id, payload, span_start, worker),
                Ok(Err(e)) => self.fail_job(id, e),
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "job panicked".to_string());
                    self.fail_job(id, format!("job panicked: {msg}"));
                }
            }
        }
    }

    /// Streams a job's progress events and final line to `out`.
    /// `stream` = false skips progress and writes only the final line.
    fn stream_job(&self, id: u64, stream: bool, out: &mut TcpStream) -> std::io::Result<()> {
        let mut next_event = 0usize;
        loop {
            // Collect under the lock, write outside it.
            let (batch, terminal) = {
                let jobs = self.jobs.lock().unwrap();
                let Some(job) = jobs.get(id as usize - 1) else {
                    return writeln!(out, "{}", proto::error(&format!("unknown job id {id}")));
                };
                let batch: Vec<String> = if stream {
                    job.events[next_event..]
                        .iter()
                        .map(|e| proto::progress(id, e.state, e.attempt, &e.metrics))
                        .collect()
                } else {
                    Vec::new()
                };
                next_event = job.events.len();
                let terminal = match &job.state {
                    JobState::Done { payload, cached } => {
                        Some(proto::result(id, *cached, job.attempts.max(1), payload))
                    }
                    JobState::Failed { message } => Some(proto::job_error(id, message)),
                    _ => None,
                };
                (batch, terminal)
            };
            for line in &batch {
                writeln!(out, "{line}")?;
            }
            if let Some(line) = terminal {
                return writeln!(out, "{line}");
            }
            let guard = self.jobs.lock().unwrap();
            let _ = self
                .job_cv
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap();
        }
    }

    /// One connection: read request lines, write reply lines. Malformed
    /// lines get an `error` reply and the connection stays open.
    fn serve_connection(self: &Arc<Self>, stream: TcpStream) {
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { return };
            if line.trim().is_empty() {
                continue;
            }
            let req = match proto::parse_request(&line) {
                Ok(req) => req,
                Err(e) => {
                    self.stats.inc(&self.stats.malformed_requests);
                    if writeln!(writer, "{}", proto::error(&e)).is_err() {
                        return;
                    }
                    continue;
                }
            };
            let io = match req {
                Request::Submit {
                    tenant,
                    job,
                    priority,
                    fresh,
                    stream,
                } => match self.admit(&tenant, job, priority, fresh) {
                    Admission::Accepted(id) => writeln!(writer, "{}", proto::accepted(id))
                        .and_then(|()| {
                            if stream {
                                self.stream_job(id, true, &mut writer)
                            } else {
                                Ok(())
                            }
                        }),
                    Admission::Rejected { reason, detail } => {
                        writeln!(writer, "{}", proto::rejected(reason, &detail))
                    }
                },
                Request::Wait { job_id, stream } => {
                    let known = job_id >= 1 && (job_id as usize) <= self.jobs.lock().unwrap().len();
                    if known {
                        self.stream_job(job_id, stream, &mut writer)
                    } else {
                        writeln!(
                            writer,
                            "{}",
                            proto::error(&format!("unknown job id {job_id}"))
                        )
                    }
                }
                Request::Stats => writeln!(
                    writer,
                    "{}",
                    proto::stats_reply(&self.stats_with_tenants().to_json(""))
                ),
                Request::Drain => {
                    self.begin_drain();
                    writeln!(writer, "{}", proto::ok())
                }
                Request::Shutdown => {
                    let io = writeln!(writer, "{}", proto::ok());
                    self.shutdown.store(true, Ordering::SeqCst);
                    self.queue_signal.1.notify_all();
                    self.job_cv.notify_all();
                    return io.unwrap_or(());
                }
            };
            if io.is_err() {
                return;
            }
        }
    }
}

/// Final report from a stopped service: the boot-to-shutdown stats and
/// the Chrome trace of every completed job.
pub struct ServiceReport {
    /// `service.*` aggregates at shutdown.
    pub metrics: MetricsSnapshot,
    /// Chrome `trace_event` JSON (one `service.job` span per computed
    /// job, microsecond timestamps).
    pub chrome_trace: String,
}

/// A running job server. Dropping the handle does not stop the server;
/// send a `shutdown` request (e.g. [`crate::Client::shutdown`]) and then
/// call [`Service::wait`].
pub struct Service {
    inner: Arc<ServiceInner>,
    addr: std::net::SocketAddr,
    listener: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Service {
    /// Binds, spawns the worker pool, supervisor, and accept loop, and
    /// returns once the server is reachable.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Service> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers = cfg.workers;

        // Crash recovery, step 1: reload durable state before anything
        // can execute. The cache spill comes back warm; the journal is
        // replayed (torn tail skipped) and compacted down to just the
        // unfinished jobs, renumbered under this boot's ids 1..k.
        let mut journal = None;
        let mut spill = None;
        let mut warm_cache: Vec<(String, Arc<String>)> = Vec::new();
        let mut recovery: Option<crate::journal::Replay> = None;
        let mut loaded_corrupt = 0u64;
        if let Some(dir) = &cfg.data_dir {
            std::fs::create_dir_all(dir)?;
            let journal_path = dir.join("journal.log");
            let spill_path = dir.join("cache.log");
            let load = CacheSpill::load(&spill_path)?;
            loaded_corrupt = load.corrupt_dropped + u64::from(load.torn);
            warm_cache = load.entries;
            let replay = Journal::replay(&journal_path)?;
            let renumbered: Vec<JournalRecord> = replay
                .unfinished
                .iter()
                .enumerate()
                .map(|(i, rec)| match rec {
                    JournalRecord::Accepted {
                        tenant,
                        priority,
                        spec,
                        ..
                    } => JournalRecord::Accepted {
                        id: i as u64 + 1,
                        tenant: tenant.clone(),
                        priority: *priority,
                        spec: spec.clone(),
                    },
                    other => other.clone(),
                })
                .collect();
            Journal::compact(&journal_path, &renumbered)?;
            journal = Some(Mutex::new(Journal::open(&journal_path)?));
            spill = Some(Mutex::new(CacheSpill::open(&spill_path)?));
            recovery = Some(replay);
        }

        let inner = Arc::new(ServiceInner {
            faults: cfg.faults.clone().map(FaultInjector::new),
            queues: std::array::from_fn(|_| BoundedQueue::new(cfg.queue_capacity)),
            queue_signal: (Mutex::new(()), Condvar::new()),
            jobs: Mutex::new(Vec::new()),
            job_cv: Condvar::new(),
            cache: Mutex::new(HashMap::new()),
            tenants: Mutex::new(BTreeMap::new()),
            stats: ServiceStats::default(),
            executor: Executor::new(1),
            journal,
            spill,
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
            started: Instant::now(),
            cfg,
        });

        // Crash recovery, step 2: publish the recovered state. Warm
        // cache entries answer admission hits without re-simulating;
        // unfinished jobs are re-created (under their compacted ids)
        // and re-enqueued so each re-executes exactly once; tenant
        // accounting picks up where the dead process left off.
        for (key, payload) in warm_cache {
            inner.stats.inc(&inner.stats.cache_loaded);
            inner.cache.lock().unwrap().insert(
                key,
                CacheEntry {
                    payload,
                    warm: true,
                },
            );
        }
        for _ in 0..loaded_corrupt {
            inner.stats.inc(&inner.stats.cache_corrupt_dropped);
        }
        if let Some(replay) = recovery {
            inner.stats.inc(&inner.stats.journal_compactions);
            for _ in 0..replay.records {
                inner.stats.inc(&inner.stats.journal_replayed);
            }
            for _ in 0..replay.skipped {
                inner.stats.inc(&inner.stats.journal_torn_skipped);
            }
            for (name, submitted, completed) in replay.tenants {
                inner.stats.inc(&inner.stats.tenants);
                inner.tenants.lock().unwrap().insert(
                    name,
                    Tenant {
                        quota: inner.cfg.default_quota,
                        outstanding: 0,
                        submitted,
                        completed,
                        rejected: 0,
                    },
                );
            }
            for rec in replay.unfinished {
                let JournalRecord::Accepted {
                    tenant,
                    priority,
                    spec,
                    ..
                } = rec
                else {
                    continue;
                };
                let priority = priority.min(PRIORITIES - 1);
                inner.stats.inc(&inner.stats.jobs_submitted);

                // If the job's payload survived in the spilled cache
                // (its `done` journal record was torn but the result
                // store landed), it is born Done from the warm entry —
                // re-simulating would be pure waste. Otherwise it
                // re-enqueues and re-executes exactly once.
                let warm_payload = {
                    let cache = inner.cache.lock().unwrap();
                    cache.get(&spec.to_json()).map(|e| Arc::clone(&e.payload))
                };
                if let Some(payload) = warm_payload {
                    inner.stats.inc(&inner.stats.cache_hits);
                    inner.stats.inc(&inner.stats.cache_warm_hits);
                    inner.stats.inc(&inner.stats.jobs_completed);
                    if let Some(t) = inner.tenants.lock().unwrap().get_mut(&tenant) {
                        t.completed += 1;
                    }
                    let snapshot = inner.rendered_stats();
                    let id = {
                        let mut jobs = inner.jobs.lock().unwrap();
                        let id = jobs.len() as u64 + 1;
                        let mut job = Job {
                            tenant,
                            spec,
                            priority,
                            attempts: 0,
                            state: JobState::Done {
                                payload,
                                cached: true,
                            },
                            events: Vec::new(),
                        };
                        ServiceInner::push_event(&mut job, "done", snapshot);
                        jobs.push(job);
                        id
                    };
                    inner.journal_append(&JournalRecord::Done { id });
                    continue;
                }

                let snapshot = inner.rendered_stats();
                let id = {
                    let mut jobs = inner.jobs.lock().unwrap();
                    let id = jobs.len() as u64 + 1;
                    let mut job = Job {
                        tenant: tenant.clone(),
                        spec,
                        priority,
                        attempts: 0,
                        state: JobState::Queued,
                        events: Vec::new(),
                    };
                    ServiceInner::push_event(&mut job, "queued", snapshot);
                    jobs.push(job);
                    id
                };
                if let Some(t) = inner.tenants.lock().unwrap().get_mut(&tenant) {
                    t.outstanding += 1;
                }
                if inner.queues[priority].push(id).is_err() {
                    inner.fail_job(id, "recovery re-enqueue: queue full".to_string());
                }
            }
        }

        let spawn_worker = |inner: Arc<ServiceInner>, idx: u64| {
            std::thread::Builder::new()
                .name(format!("tmi-service-worker-{idx}"))
                .spawn(move || inner.worker_loop(idx))
                .expect("spawn worker")
        };
        let mut pool: Vec<(u64, JoinHandle<()>)> = (0..workers as u64)
            .map(|i| (i, spawn_worker(Arc::clone(&inner), i)))
            .collect();

        // Supervisor: respawn any worker that died (the worker_kill
        // fault panics the thread) until shutdown, then join the pool.
        let supervisor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("tmi-service-supervisor".to_string())
                .spawn(move || loop {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        for (_, handle) in pool.drain(..) {
                            let _ = handle.join();
                        }
                        return;
                    }
                    // Drain completion: once every admitted job is
                    // terminal, flush durable state and stop cleanly.
                    if inner.draining.load(Ordering::SeqCst) && inner.drained() {
                        inner.flush_durable();
                        inner.shutdown.store(true, Ordering::SeqCst);
                        inner.queue_signal.1.notify_all();
                        inner.job_cv.notify_all();
                        continue;
                    }
                    for (idx, handle) in pool.iter_mut() {
                        if handle.is_finished() {
                            let replacement = spawn_worker(Arc::clone(&inner), *idx);
                            let dead = std::mem::replace(handle, replacement);
                            let _ = dead.join(); // reap the panic
                            inner.stats.inc(&inner.stats.workers_respawned);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                })
                .expect("spawn supervisor")
        };

        // Accept loop: nonblocking so it can notice shutdown promptly.
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("tmi-service-accept".to_string())
                .spawn(move || loop {
                    if inner.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            let inner = Arc::clone(&inner);
                            let _ = std::thread::Builder::new()
                                .name("tmi-service-conn".to_string())
                                .spawn(move || inner.serve_connection(stream));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => return,
                    }
                })
                .expect("spawn accept loop")
        };

        Ok(Service {
            inner,
            addr,
            listener: Some(accept),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (use this when the config asked for port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// A live `service.*` snapshot (aggregates only).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Begins a graceful drain without a client connection (the signal
    /// handlers in `tmi_serve` use this): admission starts refusing
    /// with `draining` replies, in-flight jobs finish, durable state is
    /// flushed, then the server stops and [`Service::wait`] returns.
    pub fn begin_drain(&self) {
        self.inner.begin_drain();
    }

    /// Whether the server has fully stopped (drain finished or
    /// shutdown requested) — pollable without consuming the handle.
    pub fn is_stopped(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without a client connection (tests/embedders).
    pub fn shutdown_now(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_signal.1.notify_all();
        self.inner.job_cv.notify_all();
    }

    /// Blocks until the server has shut down (a client must have sent
    /// `shutdown`, or [`Service::shutdown_now`] was called) and returns
    /// the final report.
    pub fn wait(mut self) -> ServiceReport {
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        let metrics = self.inner.stats.snapshot();
        let events = self.inner.trace.lock().unwrap();
        // clock_hz = 1e6 maps the host-microsecond stamps 1:1 onto the
        // trace format's microsecond timeline.
        let chrome_trace =
            chrome::export_trace(&events, &PhaseProfile::new(), 1_000_000, Some(&metrics));
        ServiceReport {
            metrics,
            chrome_trace,
        }
    }
}
