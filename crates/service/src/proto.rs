//! The wire protocol: newline-delimited JSON over TCP, one request or
//! reply object per line, built on the workspace's hand-rolled
//! [`tmi_telemetry::json`] codec (offline-build clean, no serde).
//!
//! The request vocabulary is the shared [`JobSpec`]: the `job` member of
//! a `submit` line is exactly [`JobSpec::to_json`], so a job submitted
//! over the socket, built with the [`tmi_bench::Experiment`] builder, or
//! replayed from CLI flags is the same job with the same cache identity.
//!
//! ## Requests
//!
//! ```json
//! {"type": "submit", "tenant": "ci", "job": {"workload": "histogramfs", ...},
//!  "priority": 1, "fresh": false, "stream": true}
//! {"type": "wait", "job_id": 3, "stream": true}
//! {"type": "stats"}
//! {"type": "drain"}
//! {"type": "shutdown"}
//! ```
//!
//! ## Replies
//!
//! `submit` answers `accepted` or `rejected` (reasons: `queue_full`,
//! `quota_exceeded`, `bad_request`, `draining`) on the first line. An accepted
//! streaming submission is followed by `progress` events — each carrying
//! the live `service.*` metrics snapshot — and finally one `result` (or
//! `job_error`) line. The `payload` member of a `result` line is the
//! deterministic product of the job alone: it contains no job id, host
//! timing or cache flag, so a cache-served reply is **byte-identical**
//! to the compute that produced it.

use tmi_bench::{JobSpec, RunResult};
use tmi_oracle::CheckReport;
use tmi_telemetry::json::{self, Json};

/// Number of priority classes (0 = highest, `PRIORITIES - 1` = lowest).
pub const PRIORITIES: usize = 3;

/// One parsed request line.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Submit a job for `tenant`.
    Submit {
        /// Tenant name (quota accounting key).
        tenant: String,
        /// The job, in the shared vocabulary.
        job: JobSpec,
        /// Priority class, `0..PRIORITIES` (0 served first).
        priority: usize,
        /// Bypass the result cache read (the job still computes and
        /// stores; used to prove determinism against a cached reply).
        fresh: bool,
        /// Stream progress events and the final result on this
        /// connection.
        stream: bool,
    },
    /// Wait for a previously submitted job, optionally replaying its
    /// progress events.
    Wait {
        /// The id from the `accepted` reply.
        job_id: u64,
        /// Replay progress events before the result line.
        stream: bool,
    },
    /// Fetch the `service.*` metrics (including per-tenant counters).
    Stats,
    /// Begin a graceful drain: refuse new submissions with a
    /// `draining` rejection, finish in-flight jobs, flush durable
    /// state, then stop.
    Drain,
    /// Stop the server after replying.
    Shutdown,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let kind = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or("request needs a string \"type\"")?;
    let flag = |key: &str, default: bool| match v.get(key) {
        None => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("\"{key}\" must be a boolean")),
    };
    match kind {
        "submit" => {
            let tenant = v
                .get("tenant")
                .and_then(Json::as_str)
                .ok_or("submit needs a string \"tenant\"")?
                .to_string();
            if tenant.is_empty() {
                return Err("tenant must be non-empty".into());
            }
            let job = JobSpec::from_json(v.get("job").ok_or("submit needs a \"job\" object")?)?;
            let priority = match v.get("priority") {
                None => 1,
                Some(p) => {
                    let p = p.as_f64().ok_or("\"priority\" must be a number")? as usize;
                    if p >= PRIORITIES {
                        return Err(format!("priority must be 0..{PRIORITIES}"));
                    }
                    p
                }
            };
            Ok(Request::Submit {
                tenant,
                job,
                priority,
                fresh: flag("fresh", false)?,
                stream: flag("stream", true)?,
            })
        }
        "wait" => {
            let job_id = v
                .get("job_id")
                .and_then(Json::as_f64)
                .ok_or("wait needs a numeric \"job_id\"")? as u64;
            Ok(Request::Wait {
                job_id,
                stream: flag("stream", true)?,
            })
        }
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request type {other:?}")),
    }
}

/// Renders a `submit` request line (the client side of
/// [`parse_request`]).
pub fn render_submit(
    tenant: &str,
    job: &JobSpec,
    priority: usize,
    fresh: bool,
    stream: bool,
) -> String {
    format!(
        "{{\"type\": \"submit\", \"tenant\": {}, \"job\": {}, \
         \"priority\": {priority}, \"fresh\": {fresh}, \"stream\": {stream}}}",
        json::string(tenant),
        job.to_json(),
    )
}

/// `accepted` reply line.
pub fn accepted(job_id: u64) -> String {
    format!("{{\"type\": \"accepted\", \"job_id\": {job_id}}}")
}

/// `rejected` reply line (the backpressure/quota/bad-request surface).
pub fn rejected(reason: &str, detail: &str) -> String {
    format!(
        "{{\"type\": \"rejected\", \"reason\": {}, \"detail\": {}}}",
        json::string(reason),
        json::string(detail),
    )
}

/// `progress` event line; `metrics` is a rendered `service.*` snapshot
/// object (the registry is the source of streamed progress).
pub fn progress(job_id: u64, state: &str, attempt: u32, metrics: &str) -> String {
    format!(
        "{{\"type\": \"progress\", \"job_id\": {job_id}, \"state\": {}, \
         \"attempt\": {attempt}, \"metrics\": {metrics}}}",
        json::string(state),
    )
}

/// Final `result` line. `payload` is the deterministic job product —
/// byte-identical whether computed, recomputed after a worker kill, or
/// served from the cache.
pub fn result(job_id: u64, cached: bool, attempts: u32, payload: &str) -> String {
    format!(
        "{{\"type\": \"result\", \"job_id\": {job_id}, \"cached\": {cached}, \
         \"attempts\": {attempts}, \"payload\": {payload}}}"
    )
}

/// Final error line for a failed job.
pub fn job_error(job_id: u64, message: &str) -> String {
    format!(
        "{{\"type\": \"job_error\", \"job_id\": {job_id}, \"message\": {}}}",
        json::string(message),
    )
}

/// Protocol-level error line (malformed request, unknown job id).
pub fn error(message: &str) -> String {
    format!(
        "{{\"type\": \"error\", \"message\": {}}}",
        json::string(message)
    )
}

/// `stats` reply line wrapping a rendered metrics object.
pub fn stats_reply(metrics: &str) -> String {
    format!("{{\"type\": \"stats\", \"metrics\": {metrics}}}")
}

/// Plain acknowledgement (`shutdown`).
pub fn ok() -> String {
    "{\"type\": \"ok\"}".to_string()
}

/// Extracts the exact `payload` bytes from a `result` line — the
/// byte-comparison target for the determinism guarantees. Relies on the
/// renderer above always placing `payload` last.
pub fn extract_payload(result_line: &str) -> Option<&str> {
    let line = result_line.trim_end();
    let start = result_line.find("\"payload\": ")? + "\"payload\": ".len();
    line.ends_with('}').then(|| &line[start..line.len() - 1])
}

/// Renders the deterministic result payload for a harness job: the spec
/// it answers plus every measured field and the full metrics snapshot.
/// Deliberately excludes anything about *how* the service ran it (job
/// id, attempts, host seconds, cache state).
pub fn run_payload(spec: &JobSpec, r: &RunResult) -> String {
    let verified = match &r.verified {
        Ok(()) => "true".to_string(),
        Err(e) => json::string(e),
    };
    format!(
        "{{\"kind\": \"run\", \"spec\": {}, \"halt\": {}, \"cycles\": {}, \
         \"seconds\": {}, \"ops\": {}, \"verified\": {verified}, \
         \"hitm_events\": {}, \"perf_records\": {}, \"perf_events\": {}, \
         \"repaired\": {}, \"commits\": {}, \"t2p_cycles\": {}, \
         \"memory_bytes\": {}, \"app_bytes\": {}, \"faults\": {}, \
         \"metrics\": {}}}",
        spec.to_json(),
        json::string(&format!("{:?}", r.halt)),
        r.cycles,
        json::fmt_f64(r.seconds),
        r.ops,
        r.hitm_events,
        r.perf_records,
        r.perf_events,
        r.repaired,
        r.commits,
        r.t2p_cycles,
        r.memory_bytes,
        r.app_bytes,
        r.faults,
        r.metrics.to_json(""),
    )
}

/// Renders the deterministic result payload for a litmus job checked
/// through the differential oracle.
pub fn litmus_payload(spec: &JobSpec, report: &CheckReport) -> String {
    format!(
        "{{\"kind\": \"litmus\", \"spec\": {}, \"litmus_seed\": {}, \
         \"clean\": {}, \"steps\": {}, \"divergences\": {}, \"report\": {}}}",
        spec.to_json(),
        report.seed,
        report.clean(),
        report.steps,
        report.divergences.len(),
        json::string(&report.render()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_through_parse() {
        let mut job = JobSpec::new("histogramfs");
        job.seed = 9;
        let line = render_submit("ci", &job, 0, true, false);
        let parsed = parse_request(&line).unwrap();
        assert_eq!(
            parsed,
            Request::Submit {
                tenant: "ci".into(),
                job,
                priority: 0,
                fresh: true,
                stream: false,
            }
        );
    }

    #[test]
    fn submit_defaults_and_validation() {
        let line = r#"{"type": "submit", "tenant": "t", "job": {"workload": "histogram"}}"#;
        match parse_request(line).unwrap() {
            Request::Submit {
                priority,
                fresh,
                stream,
                ..
            } => {
                assert_eq!(priority, 1);
                assert!(!fresh);
                assert!(stream);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_request(r#"{"type": "submit", "tenant": "t"}"#).is_err());
        assert!(
            parse_request(r#"{"type": "submit", "tenant": "", "job": {"workload": "x"}}"#).is_err()
        );
        assert!(parse_request(
            r#"{"type": "submit", "tenant": "t", "job": {"workload": "x"}, "priority": 3}"#
        )
        .is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"type": "frobnicate"}"#).is_err());
    }

    #[test]
    fn wait_stats_shutdown_parse() {
        assert_eq!(
            parse_request(r#"{"type": "wait", "job_id": 7, "stream": false}"#).unwrap(),
            Request::Wait {
                job_id: 7,
                stream: false
            }
        );
        assert_eq!(
            parse_request(r#"{"type": "stats"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request(r#"{"type": "drain"}"#).unwrap(),
            Request::Drain
        );
        assert_eq!(
            parse_request(r#"{"type": "shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn payload_extraction_is_byte_exact() {
        let payload = r#"{"kind": "run", "spec": {"workload": "x"}, "ops": 3}"#;
        let line = result(12, true, 1, payload);
        assert_eq!(extract_payload(&line), Some(payload));
        // The reply envelope differs between cached and fresh replies,
        // but the payload bytes must not.
        let fresh = result(99, false, 2, payload);
        assert_ne!(line, fresh);
        assert_eq!(extract_payload(&line), extract_payload(&fresh));
    }

    #[test]
    fn reply_lines_parse_as_json() {
        for line in [
            accepted(3),
            rejected("queue_full", "ring at capacity"),
            progress(1, "running", 2, "{\"service.jobs_submitted\": 1}"),
            result(1, false, 1, "{}"),
            job_error(1, "boom"),
            error("bad line"),
            stats_reply("{}"),
            ok(),
        ] {
            json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }
}
