//! `crash_matrix` — the kill -9 chaos campaign for the job service.
//!
//! ```text
//! crash_matrix [--serve-bin PATH] [--kill-points N] [--data-root DIR]
//! ```
//!
//! Because every reply payload is a deterministic function of its
//! [`JobSpec`], crash recovery has a perfect oracle: a daemon killed at
//! *any* point must, after a restart on the same `--data-dir`, produce
//! byte-identical replies to a never-killed reference run. This driver
//! proves it systematically:
//!
//! 1. **Reference run** — boot a clean daemon, submit the fixed job
//!    list, record every payload, drain.
//! 2. **Kill matrix** — for each kill point `k` (1..=N) × persistence
//!    fault plan (`none`, `journal`, `cache`): boot a daemon on a fresh
//!    data dir, submit jobs until `k` replies have landed, fire one
//!    more submission *without* waiting (in-flight at the kill), then
//!    `kill -9` the daemon. Restart it on the same data dir, wait for
//!    the journal-replayed job to finish (re-executed exactly once),
//!    resubmit everything, and byte-compare all three reply streams:
//!    pre-kill, post-restart, and reference.
//! 3. **Drain check** — boot, submit, SIGTERM, assert exit status 0.
//!
//! The matrix also enforces the warm-restart economics: after every
//! restart `service.persist.cache.warm_hits` must be > 0 (cached
//! replies served from disk without re-simulation), and the warm
//! resubmission pass is timed against the cold reference as an
//! advisory wall-time check.
//!
//! Exits nonzero on the first byte mismatch, lost job, or cold cache.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tmi_service::{client, proto, ClientConfig, JobSpec};
use tmi_telemetry::json::{self, Json};

fn usage() -> ! {
    eprintln!("usage: crash_matrix [--serve-bin PATH] [--kill-points N] [--data-root DIR]");
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("crash_matrix: FAIL: {msg}");
    std::process::exit(1);
}

/// The fixed, deterministic job list the whole matrix replays. Small
/// enough that one pass is fast, varied enough to exercise machine,
/// repair, and litmus paths.
fn job_list() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for seed in 1..=6u64 {
        let mut spec = JobSpec::new("histogramfs");
        spec.cfg.threads = 4;
        spec.cfg.scale = 0.02;
        spec.seed = seed;
        jobs.push(spec);
    }
    jobs.push(JobSpec::litmus(7));
    jobs.push(JobSpec::litmus_vm(11));
    jobs
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Boots `tmi_serve` on a free port and blocks until the port file
    /// appears (the server is accepting by then).
    fn boot(serve_bin: &Path, data_dir: &Path, persist_faults: Option<&str>) -> Daemon {
        let port_file = data_dir.join("port");
        let _ = std::fs::remove_file(&port_file);
        let mut cmd = Command::new(serve_bin);
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg("2")
            .arg("--data-dir")
            .arg(data_dir)
            .arg("--port-file")
            .arg(&port_file)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(kind) = persist_faults {
            cmd.arg("--persist-faults").arg(kind);
        }
        let child = cmd
            .spawn()
            .unwrap_or_else(|e| fail(&format!("spawn {}: {e}", serve_bin.display())));
        let deadline = Instant::now() + Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            if Instant::now() > deadline {
                fail("daemon did not write its port file within 10s");
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        Daemon { child, addr }
    }

    /// SIGKILL — the crash under test. Nothing gets to flush.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// SIGTERM — the graceful path. Returns the exit status.
    fn sigterm_and_wait(&mut self) -> Option<i32> {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        unsafe {
            kill(self.child.id() as i32, 15);
        }
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return status.code(),
                Ok(None) if Instant::now() > deadline => fail("daemon ignored SIGTERM for 20s"),
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => fail(&format!("wait after SIGTERM: {e}")),
            }
        }
    }
}

fn client_cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(60),
        retries: 4,
        backoff_base_ms: 25,
        retry_seed: 9,
    }
}

/// Runs one job to completion, returning its payload bytes.
fn run_job(addr: &str, spec: &JobSpec) -> String {
    client::run_with_retry(addr, &client_cfg(), "chaos", spec, 1, false, |_| {})
        .unwrap_or_else(|e| fail(&format!("job against {addr}: {e}")))
        .payload
}

/// Submits a job and returns as soon as the `accepted` reply lands —
/// the job is in flight (queued or running) when the caller kills the
/// daemon a moment later.
fn submit_no_wait(addr: &str, spec: &JobSpec) {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| fail(&format!("connect for no-wait submit: {e}")));
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(
        writer,
        "{}",
        proto::render_submit("chaos", spec, 1, false, false)
    )
    .unwrap_or_else(|e| fail(&format!("no-wait submit: {e}")));
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .unwrap_or_else(|e| fail(&format!("no-wait accept read: {e}")));
    if !line.contains("\"accepted\"") {
        fail(&format!("no-wait submit not accepted: {}", line.trim()));
    }
}

/// Fetches one numeric metric from a `stats` reply.
fn metric(stats_json: &str, name: &str) -> u64 {
    json::parse(stats_json)
        .ok()
        .and_then(|v| v.get(name).and_then(Json::as_f64))
        .unwrap_or(0.0) as u64
}

fn fetch_stats(addr: &str) -> String {
    let mut c = tmi_service::Client::connect_with(addr, &client_cfg())
        .unwrap_or_else(|e| fail(&format!("stats connect {addr}: {e}")));
    c.stats().unwrap_or_else(|e| fail(&format!("stats: {e}")))
}

/// Waits until every journal-replayed job has reached a terminal state
/// (completed + failed catches up to submitted), so resubmissions below
/// cannot race a replay into double execution.
fn await_replay_settled(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = fetch_stats(addr);
        let submitted = metric(&stats, "service.jobs_submitted");
        let done = metric(&stats, "service.jobs_completed") + metric(&stats, "service.jobs_failed");
        if done >= submitted {
            return;
        }
        if Instant::now() > deadline {
            fail(&format!(
                "replayed jobs did not settle: submitted={submitted} terminal={done}"
            ));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn main() {
    let mut serve_bin: Option<PathBuf> = None;
    let mut kill_points = 8usize;
    let mut data_root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--serve-bin" => serve_bin = Some(value().into()),
            "--kill-points" => kill_points = value().parse().unwrap_or_else(|_| usage()),
            "--data-root" => data_root = Some(value().into()),
            _ => usage(),
        }
    }
    // Default: the tmi_serve sitting next to this binary.
    let serve_bin = serve_bin.unwrap_or_else(|| {
        let mut p = std::env::current_exe().expect("current_exe");
        p.set_file_name("tmi_serve");
        p
    });
    if !serve_bin.exists() {
        fail(&format!("serve binary {} not found", serve_bin.display()));
    }
    let data_root = data_root.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("tmi-crash-matrix-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&data_root);
    std::fs::create_dir_all(&data_root).expect("create data root");

    let jobs = job_list();
    let kill_points = kill_points.min(jobs.len());

    // Phase 1: the unkilled reference run (and the cold wall-time).
    let ref_dir = data_root.join("reference");
    std::fs::create_dir_all(&ref_dir).unwrap();
    let mut daemon = Daemon::boot(&serve_bin, &ref_dir, None);
    let cold_started = Instant::now();
    let reference: Vec<String> = jobs.iter().map(|s| run_job(&daemon.addr, s)).collect();
    let cold_secs = cold_started.elapsed().as_secs_f64();
    let code = daemon.sigterm_and_wait();
    if code != Some(0) {
        fail(&format!("reference daemon drain exited {code:?}, want 0"));
    }
    println!(
        "reference: {} jobs in {cold_secs:.2}s, drained clean (exit 0)",
        jobs.len()
    );

    // Phase 2: the kill matrix.
    let plans: [Option<&str>; 3] = [None, Some("journal"), Some("cache")];
    let mut cells = 0usize;
    for plan in plans {
        let plan_name = plan.unwrap_or("none");
        for k in 1..=kill_points {
            let dir = data_root.join(format!("kill-{plan_name}-{k}"));
            std::fs::create_dir_all(&dir).unwrap();
            let mut daemon = Daemon::boot(&serve_bin, &dir, plan);

            // Submit k jobs to completion, then put one more in flight.
            let pre_kill: Vec<String> =
                jobs[..k].iter().map(|s| run_job(&daemon.addr, s)).collect();
            let in_flight = &jobs[k % jobs.len()];
            submit_no_wait(&daemon.addr, in_flight);
            daemon.kill9();

            // Restart on the same data dir; the journal replays the
            // in-flight job (unless its accepted record was torn — then
            // the resubmission below recomputes it; either way the
            // bytes must match).
            let mut daemon = Daemon::boot(&serve_bin, &dir, plan);
            await_replay_settled(&daemon.addr);

            let warm_started = Instant::now();
            let replies: Vec<String> = jobs.iter().map(|s| run_job(&daemon.addr, s)).collect();
            let warm_secs = warm_started.elapsed().as_secs_f64();

            for (i, reply) in replies.iter().enumerate() {
                if *reply != reference[i] {
                    fail(&format!(
                        "plan={plan_name} k={k} job {i}: post-restart reply differs from reference"
                    ));
                }
            }
            for (i, reply) in pre_kill.iter().enumerate() {
                if *reply != reference[i] {
                    fail(&format!(
                        "plan={plan_name} k={k} job {i}: pre-kill reply differs from reference"
                    ));
                }
            }

            let stats = fetch_stats(&daemon.addr);
            let warm_hits = metric(&stats, "service.persist.cache.warm_hits");
            if warm_hits == 0 {
                fail(&format!(
                    "plan={plan_name} k={k}: no warm cache hits after restart"
                ));
            }
            // A journal-replayed job re-executes exactly once: every
            // submitted job reaches exactly one terminal state.
            let submitted = metric(&stats, "service.jobs_submitted");
            let terminal =
                metric(&stats, "service.jobs_completed") + metric(&stats, "service.jobs_failed");
            if submitted != terminal {
                fail(&format!(
                    "plan={plan_name} k={k}: submitted={submitted} != terminal={terminal}"
                ));
            }

            let code = daemon.sigterm_and_wait();
            if code != Some(0) {
                fail(&format!(
                    "plan={plan_name} k={k}: drain exited {code:?}, want 0"
                ));
            }
            println!(
                "plan={plan_name} k={k}: replies byte-identical, warm_hits={warm_hits}, \
                 warm pass {warm_secs:.2}s vs cold {cold_secs:.2}s"
            );
            cells += 1;
        }
    }

    println!(
        "crash_matrix: PASS — {cells} kill cells × byte-identical replies, \
         graceful drains exit 0"
    );
    let _ = std::fs::remove_dir_all(&data_root);
}
