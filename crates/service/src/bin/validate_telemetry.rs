//! The telemetry export gate (`scripts/check.sh`'s `telemetry` step).
//!
//! ```text
//! validate_telemetry --schema tests/golden/metric_names.txt
//!                    [--report BENCH_harness.json]
//!                    [--trace trace.json [--expect-repair-episode]]
//!                    [--write-schema]
//! ```
//!
//! Lives in `tmi-service` so the gated schema covers the whole deployed
//! surface: the simulation registry
//! ([`tmi_bench::telemetry::registered_metric_names`]) **plus** the job
//! server's `service.*` aggregates
//! ([`tmi_service::service_metric_names`]).
//!
//! Three checks, any failure exits non-zero:
//!
//! 1. **Schema drift** — the merged metric-name list must equal the
//!    checked-in schema file line for line. A renamed or unregistered
//!    metric fails here even before any report is inspected. Regenerate
//!    deliberately with `--write-schema` after an intentional change.
//! 2. **Report names** — with `--report`, every metric name in every cell
//!    of the `BENCH_harness.json` document must be in the schema.
//! 3. **Trace shape** — with `--trace`, the Chrome `trace_event` document
//!    must parse and be structurally sound; `--expect-repair-episode`
//!    additionally requires one full repair episode (trigger → T2P →
//!    twin → commit) in the event stream.

use std::collections::BTreeSet;
use std::process::exit;

use tmi_bench::telemetry::{registered_metric_names, validate_report, validate_trace};
use tmi_service::service_metric_names;

/// Simulation registry names merged with the service aggregates, sorted.
fn schema_metric_names() -> Vec<String> {
    let mut names = registered_metric_names();
    names.extend(service_metric_names());
    names.sort();
    names.dedup();
    names
}

fn main() {
    let mut schema_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut expect_episode = false;
    let mut write_schema = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} expects a path");
                exit(2);
            })
        };
        match arg.as_str() {
            "--schema" => schema_path = Some(path("--schema")),
            "--report" => report_path = Some(path("--report")),
            "--trace" => trace_path = Some(path("--trace")),
            "--expect-repair-episode" => expect_episode = true,
            "--write-schema" => write_schema = true,
            _ => {
                eprintln!(
                    "usage: validate_telemetry --schema FILE [--report FILE] \
                     [--trace FILE [--expect-repair-episode]] [--write-schema]"
                );
                exit(2);
            }
        }
    }
    let Some(schema_path) = schema_path else {
        eprintln!("--schema is required");
        exit(2);
    };

    let current = schema_metric_names();
    if write_schema {
        let mut doc = current.join("\n");
        doc.push('\n');
        if let Err(e) = std::fs::write(&schema_path, doc) {
            eprintln!("failed to write {schema_path}: {e}");
            exit(1);
        }
        println!("wrote {} metric names to {schema_path}", current.len());
        return;
    }

    let checked_in: Vec<String> = match std::fs::read_to_string(&schema_path) {
        Ok(s) => s
            .lines()
            .map(str::to_string)
            .filter(|l| !l.is_empty())
            .collect(),
        Err(e) => {
            eprintln!("failed to read {schema_path}: {e}");
            exit(1);
        }
    };
    if checked_in != current {
        let old: BTreeSet<&String> = checked_in.iter().collect();
        let new: BTreeSet<&String> = current.iter().collect();
        for gone in old.difference(&new) {
            eprintln!("metric removed or renamed: {gone}");
        }
        for added in new.difference(&old) {
            eprintln!("metric not in schema: {added}");
        }
        eprintln!(
            "metric-name schema drifted from {schema_path}; if the change is \
             intentional, regenerate with: validate_telemetry --schema {schema_path} \
             --write-schema"
        );
        exit(1);
    }
    println!("schema: {} metric names stable", current.len());

    let allowed: BTreeSet<String> = current.into_iter().collect();
    if let Some(report) = report_path {
        match std::fs::read_to_string(&report)
            .map_err(|e| format!("failed to read {report}: {e}"))
            .and_then(|doc| validate_report(&doc, &allowed))
        {
            Ok(n) => println!("report: {report} ok ({n} metric values)"),
            Err(e) => {
                eprintln!("report gate failed: {e}");
                exit(1);
            }
        }
    }

    if let Some(trace) = trace_path {
        let summary = match std::fs::read_to_string(&trace)
            .map_err(|e| format!("failed to read {trace}: {e}"))
            .and_then(|doc| validate_trace(&doc))
        {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace gate failed: {e}");
                exit(1);
            }
        };
        if expect_episode && !summary.has_repair_episode() {
            eprintln!(
                "trace gate failed: no full repair episode (trigger/t2p/twin/commit) \
                 in {trace}; event names: {:?}",
                summary.names
            );
            exit(1);
        }
        println!(
            "trace: {trace} ok ({} events, {} distinct names)",
            summary.events,
            summary.names.len()
        );
    }
}
