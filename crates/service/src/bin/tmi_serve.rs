//! `tmi_serve` — boot the multi-tenant simulation job server.
//!
//! ```text
//! tmi_serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!           [--quota N] [--max-attempts N] [--service-faults SEED]
//!           [--chrome-trace PATH] [--port-file PATH]
//! ```
//!
//! Binds (port 0 picks a free port), prints `listening on HOST:PORT`,
//! optionally writes the bound address to `--port-file` (for scripts
//! that need to find the daemon), and serves until a client sends
//! `shutdown`. On shutdown, prints the final `service.*` metrics and —
//! with `--chrome-trace` — writes the per-job span trace.
//!
//! `--service-faults SEED` arms the deterministic service chaos plan
//! ([`tmi_service::chaos_plan`]): seeded `worker_kill` and `cache_drop`
//! firings that the retry and cache layers must absorb without changing
//! a single result byte.

use std::process::exit;

use tmi_service::{chaos_plan, Service, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: tmi_serve [--addr HOST:PORT] [--workers N] [--queue-capacity N] \
         [--quota N] [--max-attempts N] [--service-faults SEED] \
         [--chrome-trace PATH] [--port-file PATH]"
    );
    exit(2);
}

fn main() {
    let mut cfg = ServiceConfig::default();
    let mut chrome_trace: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        let parse = |v: String, what: &str| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{what} expects a number, got {v:?}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value(),
            "--workers" => cfg.workers = parse(value(), "--workers") as usize,
            "--queue-capacity" => cfg.queue_capacity = parse(value(), "--queue-capacity") as usize,
            "--quota" => cfg.default_quota = parse(value(), "--quota") as usize,
            "--max-attempts" => cfg.max_attempts = (parse(value(), "--max-attempts") as u32).max(1),
            "--service-faults" => cfg.faults = chaos_plan(parse(value(), "--service-faults")),
            "--chrome-trace" => chrome_trace = Some(value()),
            "--port-file" => port_file = Some(value()),
            _ => usage(),
        }
    }

    let service = match Service::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tmi_serve: failed to start: {e}");
            exit(1);
        }
    };
    println!("listening on {}", service.addr());
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", service.addr())) {
            eprintln!("tmi_serve: failed to write {path}: {e}");
            exit(1);
        }
    }

    let report = service.wait();
    println!("{}", report.metrics.to_json(""));
    if let Some(path) = chrome_trace {
        if let Err(e) = std::fs::write(&path, &report.chrome_trace) {
            eprintln!("tmi_serve: failed to write {path}: {e}");
            exit(1);
        }
        eprintln!("wrote {path}");
    }
}
