//! `tmi_serve` — boot the multi-tenant simulation job server.
//!
//! ```text
//! tmi_serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!           [--quota N] [--max-attempts N] [--service-faults SEED]
//!           [--persist-faults journal|cache] [--data-dir PATH]
//!           [--chrome-trace PATH] [--port-file PATH]
//! ```
//!
//! Binds (port 0 picks a free port), prints `listening on HOST:PORT`,
//! optionally writes the bound address to `--port-file` (for scripts
//! that need to find the daemon), and serves until a client sends
//! `shutdown` or `drain`. On shutdown, prints the final `service.*`
//! metrics and — with `--chrome-trace` — writes the per-job span trace.
//!
//! `--data-dir` arms the crash-safety layer: accepted jobs are
//! journaled and result payloads spilled under the directory, so a
//! daemon killed with `kill -9` and restarted on the same directory
//! replays its unfinished jobs and serves cached replies warm. SIGTERM
//! and SIGINT trigger a graceful drain: admission refuses with a
//! `draining` reply, in-flight jobs finish, durable state is flushed,
//! and the process exits 0.
//!
//! `--service-faults SEED` arms the deterministic service chaos plan
//! ([`tmi_service::chaos_plan`]): seeded `worker_kill` and `cache_drop`
//! firings that the retry and cache layers must absorb without changing
//! a single result byte. `--persist-faults journal|cache` layers the
//! at-rest IO faults (`journal_tear`/`cache_corrupt`/`flush_fail`) on
//! top ([`tmi_service::persist_chaos_plan`]).

use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};

use tmi_service::{chaos_plan, persist_chaos_plan, Service, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: tmi_serve [--addr HOST:PORT] [--workers N] [--queue-capacity N] \
         [--quota N] [--max-attempts N] [--service-faults SEED] \
         [--persist-faults journal|cache] [--data-dir PATH] \
         [--chrome-trace PATH] [--port-file PATH]"
    );
    exit(2);
}

/// Set by the signal handler; the main loop turns it into a drain.
static DRAIN_SIGNAL: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    DRAIN_SIGNAL.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGINT (2) and SIGTERM (15) via the libc
/// `signal` symbol (always linked on the platforms we run on), keeping
/// the workspace dependency-free.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(2, handler);
        signal(15, handler);
    }
}

fn main() {
    let mut cfg = ServiceConfig::default();
    let mut persist_faults: Option<String> = None;
    let mut chrome_trace: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        let parse = |v: String, what: &str| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{what} expects a number, got {v:?}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value(),
            "--workers" => cfg.workers = parse(value(), "--workers") as usize,
            "--queue-capacity" => cfg.queue_capacity = parse(value(), "--queue-capacity") as usize,
            "--quota" => cfg.default_quota = parse(value(), "--quota") as usize,
            "--max-attempts" => cfg.max_attempts = (parse(value(), "--max-attempts") as u32).max(1),
            "--service-faults" => cfg.faults = chaos_plan(parse(value(), "--service-faults")),
            "--persist-faults" => persist_faults = Some(value()),
            "--data-dir" => cfg.data_dir = Some(value().into()),
            "--chrome-trace" => chrome_trace = Some(value()),
            "--port-file" => port_file = Some(value()),
            _ => usage(),
        }
    }
    if let Some(kind) = &persist_faults {
        cfg.faults = persist_chaos_plan(kind, cfg.faults.take());
    }

    install_signal_handlers();
    let service = match Service::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tmi_serve: failed to start: {e}");
            exit(1);
        }
    };
    println!("listening on {}", service.addr());
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", service.addr())) {
            eprintln!("tmi_serve: failed to write {path}: {e}");
            exit(1);
        }
    }

    // Poll rather than block so a signal can start the drain: once the
    // service reports stopped, wait() returns promptly.
    while !service.is_stopped() {
        if DRAIN_SIGNAL.swap(false, Ordering::SeqCst) {
            eprintln!("tmi_serve: draining (signal)");
            service.begin_drain();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let report = service.wait();
    println!("{}", report.metrics.to_json(""));
    if let Some(path) = chrome_trace {
        if let Err(e) = std::fs::write(&path, &report.chrome_trace) {
            eprintln!("tmi_serve: failed to write {path}: {e}");
            exit(1);
        }
        eprintln!("wrote {path}");
    }
}
