//! `tmi_client` — submit jobs to a running `tmi_serve` daemon.
//!
//! ```text
//! tmi_client (--addr HOST:PORT | --port-file PATH)
//!            [--timeout SECS] [--retries N]
//!            run [SPEC FLAGS] [--tenant NAME] [--priority N] [--fresh] [--no-stream]
//! tmi_client (--addr ... | --port-file ...) stats
//! tmi_client (--addr ... | --port-file ...) drain
//! tmi_client (--addr ... | --port-file ...) shutdown
//! ```
//!
//! `run` takes the shared [`JobSpec`] flags (`--workload`, `--runtime`,
//! `--threads`, `--scale`, `--seed`, ... — the same vocabulary as
//! `probe` and the library's `Experiment` builder), streams progress to
//! **stderr**, and prints exactly the result payload to **stdout** — so
//! two invocations can be compared with `cmp` to prove the service's
//! byte-determinism (cold vs cached vs fault-retried).
//!
//! Every connection carries connect and read deadlines, so a daemon
//! that vanishes mid-reply yields a nonzero exit and a one-line error
//! naming the address, elapsed time, and attempts — never a hang. `run`
//! retries transient failures (refused/dropped connections, timeouts,
//! `draining` rejections) with seeded-jitter backoff; resubmission is
//! idempotent because replies are deterministic functions of the spec.

use std::io::Write;
use std::process::exit;
use std::time::Duration;

use tmi_service::{client, Client, ClientConfig, JobSpec};

fn usage() -> ! {
    eprintln!(
        "usage: tmi_client (--addr HOST:PORT | --port-file PATH) \
         [--timeout SECS] [--retries N] COMMAND\n\
         commands:\n  \
         run [SPEC FLAGS] [--tenant NAME] [--priority N] [--fresh] [--no-stream]\n  \
         stats\n  \
         drain\n  \
         shutdown\n\
         spec flags:\n{}",
        JobSpec::cli_usage()
    );
    exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("tmi_client: {msg}");
    exit(1);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut command: Option<String> = None;
    let mut cfg = ClientConfig::default();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(args.next().unwrap_or_else(|| usage())),
            "--port-file" => {
                let path = args.next().unwrap_or_else(|| usage());
                match std::fs::read_to_string(&path) {
                    Ok(s) => addr = Some(s.trim().to_string()),
                    Err(e) => fail(&format!("failed to read {path}: {e}")),
                }
            }
            "--timeout" => {
                let secs: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.read_timeout = Duration::from_secs_f64(secs.max(0.001));
            }
            "--retries" => {
                cfg.retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "run" | "stats" | "drain" | "shutdown" => {
                command = Some(arg);
                break;
            }
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let Some(command) = command else { usage() };

    // `run` opens its own (retried) connections; the control commands
    // share one deadline-armed connection.
    if command == "run" {
        let mut spec = JobSpec::new("histogramfs");
        let mut tenant = "cli".to_string();
        let mut priority = 1usize;
        let mut fresh = false;
        let mut quiet = false;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--tenant" => tenant = args.next().unwrap_or_else(|| usage()),
                "--priority" => {
                    priority = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage())
                }
                "--fresh" => fresh = true,
                "--no-stream" => quiet = true,
                other => {
                    let mut next = || args.next();
                    match spec.apply_cli_arg(other, &mut next) {
                        Ok(true) => {}
                        Ok(false) => usage(),
                        Err(e) => fail(&e),
                    }
                }
            }
        }
        let outcome = client::run_with_retry(&addr, &cfg, &tenant, &spec, priority, fresh, |p| {
            if !quiet {
                eprintln!(
                    "progress: job {} {} (attempt {})",
                    p.job_id, p.state, p.attempt
                );
            }
        });
        match outcome {
            Ok(out) => {
                eprintln!(
                    "job {} done: cached={} attempts={}",
                    out.job_id, out.cached, out.attempts
                );
                let mut stdout = std::io::stdout().lock();
                let _ = writeln!(stdout, "{}", out.payload);
            }
            Err(e) => fail(&e),
        }
        return;
    }

    let mut client = match Client::connect_with(addr.as_str(), &cfg) {
        Ok(c) => c,
        Err(e) => fail(&format!("failed to connect to {addr}: {e}")),
    };
    match command.as_str() {
        "stats" => match client.stats() {
            Ok(metrics) => println!("{metrics}"),
            Err(e) => fail(&e),
        },
        "drain" => match client.drain() {
            Ok(()) => eprintln!("server draining"),
            Err(e) => fail(&e),
        },
        "shutdown" => match client.shutdown() {
            Ok(()) => eprintln!("server shut down"),
            Err(e) => fail(&e),
        },
        _ => usage(),
    }
}
