//! `tmi_client` — submit jobs to a running `tmi_serve` daemon.
//!
//! ```text
//! tmi_client (--addr HOST:PORT | --port-file PATH) run [SPEC FLAGS]
//!            [--tenant NAME] [--priority N] [--fresh] [--no-stream]
//! tmi_client (--addr ... | --port-file ...) stats
//! tmi_client (--addr ... | --port-file ...) shutdown
//! ```
//!
//! `run` takes the shared [`JobSpec`] flags (`--workload`, `--runtime`,
//! `--threads`, `--scale`, `--seed`, ... — the same vocabulary as
//! `probe` and the library's `Experiment` builder), streams progress to
//! **stderr**, and prints exactly the result payload to **stdout** — so
//! two invocations can be compared with `cmp` to prove the service's
//! byte-determinism (cold vs cached vs fault-retried).

use std::io::Write;
use std::process::exit;

use tmi_service::{Client, JobSpec};

fn usage() -> ! {
    eprintln!(
        "usage: tmi_client (--addr HOST:PORT | --port-file PATH) COMMAND\n\
         commands:\n  \
         run [SPEC FLAGS] [--tenant NAME] [--priority N] [--fresh] [--no-stream]\n  \
         stats\n  \
         shutdown\n\
         spec flags:\n{}",
        JobSpec::cli_usage()
    );
    exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("tmi_client: {msg}");
    exit(1);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut command: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(args.next().unwrap_or_else(|| usage())),
            "--port-file" => {
                let path = args.next().unwrap_or_else(|| usage());
                match std::fs::read_to_string(&path) {
                    Ok(s) => addr = Some(s.trim().to_string()),
                    Err(e) => fail(&format!("failed to read {path}: {e}")),
                }
            }
            "run" | "stats" | "shutdown" => {
                command = Some(arg);
                break;
            }
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    let Some(command) = command else { usage() };

    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => fail(&format!("failed to connect to {addr}: {e}")),
    };

    match command.as_str() {
        "stats" => match client.stats() {
            Ok(metrics) => println!("{metrics}"),
            Err(e) => fail(&e),
        },
        "shutdown" => match client.shutdown() {
            Ok(()) => eprintln!("server shut down"),
            Err(e) => fail(&e),
        },
        "run" => {
            let mut spec = JobSpec::new("histogramfs");
            let mut tenant = "cli".to_string();
            let mut priority = 1usize;
            let mut fresh = false;
            let mut quiet = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--tenant" => tenant = args.next().unwrap_or_else(|| usage()),
                    "--priority" => {
                        priority = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--fresh" => fresh = true,
                    "--no-stream" => quiet = true,
                    other => {
                        let mut next = || args.next();
                        match spec.apply_cli_arg(other, &mut next) {
                            Ok(true) => {}
                            Ok(false) => usage(),
                            Err(e) => fail(&e),
                        }
                    }
                }
            }
            let outcome = client.run(&tenant, &spec, priority, fresh, |p| {
                if !quiet {
                    eprintln!(
                        "progress: job {} {} (attempt {})",
                        p.job_id, p.state, p.attempt
                    );
                }
            });
            match outcome {
                Ok(out) => {
                    eprintln!(
                        "job {} done: cached={} attempts={}",
                        out.job_id, out.cached, out.attempts
                    );
                    let mut stdout = std::io::stdout().lock();
                    let _ = writeln!(stdout, "{}", out.payload);
                }
                Err(e) => fail(&e),
            }
        }
        _ => usage(),
    }
}
