//! The write-ahead job journal: the record of every accepted job and
//! its terminal outcome, durable across `kill -9`.
//!
//! ## Protocol
//!
//! Admission appends [`JournalRecord::Accepted`] *before* the job enters
//! a ring; completion appends [`JournalRecord::Done`] (or `Failed`). A
//! restarting daemon replays the file ([`Journal::replay`]): any
//! accepted record without a matching terminal marker is an *unfinished*
//! job the crash orphaned — the server re-enqueues it (it re-executes
//! exactly once) and rebuilds the tenant's quota accounting from the
//! same records.
//!
//! Job ids restart from 1 on every boot, so replay renumbers: recovery
//! compacts the journal ([`Journal::compact`]) down to fresh `Accepted`
//! records for just the unfinished jobs under their new ids, via the
//! atomic tmp-file+rename rotation in [`crate::persist::FrameLog`].
//!
//! Records ride the CRC framing of [`crate::persist`]; a torn tail
//! (crash mid-append) is skipped cleanly — the torn record's job never
//! got its `accepted` reply flushed to the client either, so the client
//! resubmits and nothing is lost.

use std::path::{Path, PathBuf};

use tmi_bench::JobSpec;
use tmi_faultpoint::FaultInjector;
use tmi_telemetry::json::{self, Json};

use crate::persist::{AppendOutcome, FrameLog};

/// One journal record.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    /// A job passed admission and is owed a result.
    Accepted {
        /// Server-assigned job id (unique within one daemon lifetime).
        id: u64,
        /// Tenant the job counts against.
        tenant: String,
        /// Priority ring it was queued on.
        priority: usize,
        /// The full job identity.
        spec: JobSpec,
    },
    /// The job completed with a payload (which the cache spill holds).
    Done {
        /// Id of the completed job.
        id: u64,
    },
    /// The job reached a terminal failure (no retry owed).
    Failed {
        /// Id of the failed job.
        id: u64,
    },
}

impl JournalRecord {
    /// Renders the canonical JSON payload for one record.
    pub fn encode(&self) -> String {
        match self {
            JournalRecord::Accepted {
                id,
                tenant,
                priority,
                spec,
            } => format!(
                "{{\"rec\": \"accepted\", \"id\": {id}, \"tenant\": {}, \
                 \"priority\": {priority}, \"job\": {}}}",
                json::string(tenant),
                spec.to_json(),
            ),
            JournalRecord::Done { id } => format!("{{\"rec\": \"done\", \"id\": {id}}}"),
            JournalRecord::Failed { id } => format!("{{\"rec\": \"failed\", \"id\": {id}}}"),
        }
    }

    /// Parses one record payload.
    pub fn decode(payload: &str) -> Result<JournalRecord, String> {
        let v = json::parse(payload).map_err(|e| format!("bad journal JSON: {e}"))?;
        let id = v
            .get("id")
            .and_then(Json::as_f64)
            .ok_or("journal record needs a numeric \"id\"")? as u64;
        match v.get("rec").and_then(Json::as_str) {
            Some("accepted") => {
                let tenant = v
                    .get("tenant")
                    .and_then(Json::as_str)
                    .ok_or("accepted record needs a string \"tenant\"")?
                    .to_string();
                let priority = v
                    .get("priority")
                    .and_then(Json::as_f64)
                    .ok_or("accepted record needs a numeric \"priority\"")?
                    as usize;
                let spec =
                    JobSpec::from_json(v.get("job").ok_or("accepted record needs a \"job\"")?)?;
                Ok(JournalRecord::Accepted {
                    id,
                    tenant,
                    priority,
                    spec,
                })
            }
            Some("done") => Ok(JournalRecord::Done { id }),
            Some("failed") => Ok(JournalRecord::Failed { id }),
            other => Err(format!("unknown journal record kind {other:?}")),
        }
    }
}

/// What a journal replay recovered.
#[derive(Debug, Default)]
pub struct Replay {
    /// Accepted-but-unfinished jobs, in original admission order.
    pub unfinished: Vec<JournalRecord>,
    /// Per-tenant `(submitted, completed)` counts across the whole
    /// journal — the quota bookkeeping a restart resumes from.
    pub tenants: Vec<(String, u64, u64)>,
    /// Intact records seen (any kind).
    pub records: u64,
    /// Records dropped: torn-tail bytes skipped plus undecodable frames.
    pub skipped: u64,
}

/// The append handle for a live daemon's journal.
#[derive(Debug)]
pub struct Journal {
    log: FrameLog,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        Ok(Journal {
            log: FrameLog::open(path)?,
        })
    }

    /// Forces a durability flush of the journal file.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.log.sync()
    }

    /// Appends one record (write-ahead: call before acting on it).
    pub fn append(
        &mut self,
        record: &JournalRecord,
        faults: Option<&FaultInjector>,
    ) -> AppendOutcome {
        self.log.append(record.encode().as_bytes(), faults, false)
    }

    /// Replays the journal at `path`, tolerating a torn/corrupt tail.
    pub fn replay(path: &Path) -> std::io::Result<Replay> {
        let scan = FrameLog::scan_file(path)?;
        let mut out = Replay {
            skipped: u64::from(scan.torn),
            ..Replay::default()
        };
        let mut open: Vec<JournalRecord> = Vec::new();
        let mut tenants: std::collections::BTreeMap<String, (u64, u64)> = Default::default();
        for frame in &scan.payloads {
            let rec = std::str::from_utf8(frame)
                .map_err(|e| e.to_string())
                .and_then(JournalRecord::decode);
            let rec = match rec {
                Ok(rec) => rec,
                Err(_) => {
                    out.skipped += 1;
                    continue;
                }
            };
            out.records += 1;
            match rec {
                JournalRecord::Accepted { ref tenant, .. } => {
                    tenants.entry(tenant.clone()).or_default().0 += 1;
                    open.push(rec);
                }
                JournalRecord::Done { id } => {
                    if let Some(at) = open.iter().position(
                        |r| matches!(r, JournalRecord::Accepted { id: a, .. } if *a == id),
                    ) {
                        if let JournalRecord::Accepted { tenant, .. } = &open[at] {
                            tenants.entry(tenant.clone()).or_default().1 += 1;
                        }
                        open.remove(at);
                    }
                }
                JournalRecord::Failed { id } => {
                    open.retain(
                        |r| !matches!(r, JournalRecord::Accepted { id: a, .. } if *a == id),
                    );
                }
            }
        }
        out.unfinished = open;
        out.tenants = tenants.into_iter().map(|(t, (s, c))| (t, s, c)).collect();
        Ok(out)
    }

    /// Atomically rewrites the journal at `path` to exactly `records`
    /// (recovery compaction: finished jobs drop out, unfinished jobs are
    /// renumbered under the fresh boot's ids).
    pub fn compact(path: &Path, records: &[JournalRecord]) -> std::io::Result<()> {
        let payloads: Vec<Vec<u8>> = records.iter().map(|r| r.encode().into_bytes()).collect();
        FrameLog::rewrite(path, &payloads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tmi-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    fn accepted(id: u64, tenant: &str) -> JournalRecord {
        let mut spec = JobSpec::new("histogramfs");
        spec.cfg.scale = 0.02;
        spec.seed = id;
        JournalRecord::Accepted {
            id,
            tenant: tenant.to_string(),
            priority: 1,
            spec,
        }
    }

    #[test]
    fn records_round_trip_through_the_codec() {
        for rec in [
            accepted(3, "ci"),
            JournalRecord::Done { id: 3 },
            JournalRecord::Failed { id: 9 },
        ] {
            assert_eq!(JournalRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }

    #[test]
    fn replay_separates_finished_from_unfinished() {
        let path = tmp("replay");
        let mut j = Journal::open(&path).unwrap();
        j.append(&accepted(1, "ci"), None);
        j.append(&accepted(2, "ci"), None);
        j.append(&accepted(3, "other"), None);
        j.append(&JournalRecord::Done { id: 1 }, None);
        j.append(&JournalRecord::Failed { id: 3 }, None);
        let replay = Journal::replay(&path).unwrap();
        assert_eq!(replay.records, 5);
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.unfinished, vec![accepted(2, "ci")]);
        assert_eq!(
            replay.tenants,
            vec![("ci".to_string(), 2, 1), ("other".to_string(), 1, 0)]
        );
    }

    #[test]
    fn torn_tail_is_skipped_cleanly_at_every_truncation_point() {
        let path = tmp("torn");
        let mut j = Journal::open(&path).unwrap();
        j.append(&accepted(1, "ci"), None);
        j.append(&JournalRecord::Done { id: 1 }, None);
        let intact = std::fs::read(&path).unwrap();
        j.append(&accepted(2, "ci"), None);
        let full = std::fs::read(&path).unwrap();
        for cut in intact.len()..full.len() {
            std::fs::File::create(&path)
                .unwrap()
                .write_all(&full[..cut])
                .unwrap();
            let replay = Journal::replay(&path).unwrap();
            assert_eq!(replay.records, 2, "cut at {cut}");
            assert!(replay.unfinished.is_empty(), "cut at {cut}");
            assert_eq!(
                replay.skipped,
                u64::from(cut > intact.len()),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn compact_renumbers_down_to_the_survivors() {
        let path = tmp("compact");
        let mut j = Journal::open(&path).unwrap();
        j.append(&accepted(1, "ci"), None);
        j.append(&accepted(2, "ci"), None);
        j.append(&JournalRecord::Done { id: 1 }, None);
        drop(j);
        let replay = Journal::replay(&path).unwrap();
        let renumbered: Vec<JournalRecord> = replay
            .unfinished
            .iter()
            .enumerate()
            .map(|(i, r)| match r {
                JournalRecord::Accepted {
                    tenant,
                    priority,
                    spec,
                    ..
                } => JournalRecord::Accepted {
                    id: i as u64 + 1,
                    tenant: tenant.clone(),
                    priority: *priority,
                    spec: spec.clone(),
                },
                other => other.clone(),
            })
            .collect();
        Journal::compact(&path, &renumbered).unwrap();
        let after = Journal::replay(&path).unwrap();
        assert_eq!(after.records, 1);
        assert_eq!(
            after.unfinished,
            vec![accepted(2, "ci")]
                .into_iter()
                .map(|r| match r {
                    JournalRecord::Accepted {
                        tenant,
                        priority,
                        spec,
                        ..
                    } => JournalRecord::Accepted {
                        id: 1,
                        tenant,
                        priority,
                        spec
                    },
                    other => other,
                })
                .collect::<Vec<_>>()
        );
    }
}
