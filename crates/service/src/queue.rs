//! A bounded lock-free MPMC ring buffer (Vyukov's algorithm) — the
//! admission queue underneath the job server.
//!
//! Why lock-free in a repo about false sharing: the queue is the one
//! structure every connection thread and every worker hammers
//! concurrently, and it doubles as a worked example of the layout
//! discipline the paper is about — the producer and consumer cursors
//! live on separate cache lines ([`CachePadded`]) precisely so the
//! enqueue and dequeue sides do not falsely share, and each slot carries
//! its own sequence word instead of a shared flag array.
//!
//! Capacity is rounded up to a power of two. `push` never blocks: a full
//! ring returns the item back to the caller, which the server turns into
//! an explicit backpressure reply — admission pressure must surface to
//! the client, never stall a connection thread.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads a hot cursor to its own cache line so the producer and consumer
/// sides of the ring never contend on one.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// Vyukov sequence word: `pos` when free for lap `pos / cap`,
    /// `pos + 1` when holding the value enqueued at `pos`.
    sequence: AtomicUsize,
    value: UnsafeCell<Option<T>>,
}

/// Bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// Safety: values move through the queue whole (a slot is published by its
// sequence word with release/acquire ordering), so sending `T` between
// threads is the only capability required.
unsafe impl<T: Send> Send for BoundedQueue<T> {}
unsafe impl<T: Send> Sync for BoundedQueue<T> {}

impl<T> BoundedQueue<T> {
    /// A queue holding at least `capacity` items (rounded up to a power
    /// of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(None),
            })
            .collect();
        BoundedQueue {
            slots,
            mask: cap - 1,
            enqueue_pos: CachePadded(AtomicUsize::new(0)),
            dequeue_pos: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Usable capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enqueues `item`, or returns it if the ring is full. Never blocks.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: winning the CAS grants exclusive write
                        // access to this slot until the sequence store.
                        unsafe { *slot.value.get() = Some(item) };
                        slot.sequence.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return Err(item); // a full lap behind: ring is full
            } else {
                pos = self.enqueue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest item, or `None` if the ring is empty. Never
    /// blocks.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                match self.dequeue_pos.0.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: winning the CAS grants exclusive read
                        // access to this slot until the sequence store.
                        let item = unsafe { (*slot.value.get()).take() };
                        slot.sequence.store(pos + self.mask + 1, Ordering::Release);
                        return item;
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate occupancy (exact when quiescent).
    pub fn len(&self) -> usize {
        let head = self.enqueue_pos.0.load(Ordering::Relaxed);
        let tail = self.dequeue_pos.0.load(Ordering::Relaxed);
        head.saturating_sub(tail)
    }

    /// True if the ring holds nothing (approximate under contention).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.capacity(), 4);
        for i in 0..4 {
            assert!(q.push(i).is_ok());
        }
        assert_eq!(q.push(99), Err(99), "full ring hands the item back");
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(BoundedQueue::<u8>::new(0).capacity(), 2);
        assert_eq!(BoundedQueue::<u8>::new(3).capacity(), 4);
        assert_eq!(BoundedQueue::<u8>::new(64).capacity(), 64);
    }

    #[test]
    fn wraps_across_many_laps() {
        let q = BoundedQueue::new(2);
        for lap in 0u64..1000 {
            assert!(q.push(lap).is_ok());
            assert_eq!(q.pop(), Some(lap));
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PER_PRODUCER: u64 = 2000;
        let q = BoundedQueue::new(8);
        let sum = AtomicU64::new(0);
        let taken = AtomicU64::new(0);
        let total = 4 * PER_PRODUCER;
        std::thread::scope(|s| {
            for p in 0..4u64 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut item = p * PER_PRODUCER + i;
                        loop {
                            match q.push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..4 {
                let (q, sum, taken) = (&q, &sum, &taken);
                s.spawn(move || loop {
                    if taken.load(Ordering::Relaxed) >= total {
                        break;
                    }
                    match q.pop() {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), total);
        assert_eq!(sum.load(Ordering::Relaxed), (0..total).sum::<u64>());
    }
}
