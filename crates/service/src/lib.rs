//! # tmi-service — the multi-tenant simulation job server
//!
//! Long-running service wrapping the deterministic simulation stack: a
//! TCP listener speaking newline-delimited JSON, a bounded admission
//! queue per priority class, per-tenant quotas, a worker pool layered
//! on the [`tmi_bench::Executor`], a memoized result cache keyed on the
//! full [`JobSpec`] identity, and streaming progress sourced from the
//! `service.*` metrics registry.
//!
//! The request-facing vocabulary is the same [`JobSpec`] used by the
//! [`tmi_bench::Experiment`] builder, the fuzz campaign, and the CLI
//! flags — one job description across library, wire, and command line.
//!
//! ```no_run
//! use tmi_service::{Client, Service, ServiceConfig};
//! use tmi_bench::JobSpec;
//!
//! let service = Service::start(ServiceConfig::default()).unwrap();
//! let mut client = Client::connect(service.addr()).unwrap();
//! let mut spec = JobSpec::new("histogramfs");
//! spec.cfg.scale = 0.05;
//! let out = client.run("ci", &spec, 1, false, |_| {}).unwrap();
//! assert!(!out.cached);
//! // Identical spec → byte-identical payload, served from the cache.
//! let again = client.run("ci", &spec, 1, false, |_| {}).unwrap();
//! assert!(again.cached);
//! assert_eq!(out.payload, again.payload);
//! client.shutdown().unwrap();
//! service.wait();
//! ```
//!
//! Fault points (`worker_kill`, `queue_full`, `cache_drop` from
//! [`tmi_faultpoint`]) are wired through the admission and worker
//! paths; [`chaos_plan`] is the deterministic plan CI boots the daemon
//! with to prove retried results stay byte-identical.

pub mod client;
pub mod journal;
pub mod persist;
pub mod proto;
pub mod queue;
pub mod server;
pub mod stats;

pub use client::{run_with_retry, Client, ClientConfig, Progress, RunOutcome};
pub use journal::{Journal, JournalRecord};
pub use persist::{CacheSpill, FrameLog};
pub use proto::Request;
pub use queue::BoundedQueue;
pub use server::{chaos_plan, persist_chaos_plan, Service, ServiceConfig, ServiceReport};
pub use stats::{service_metric_names, ServiceStats};

// The spec type is re-exported so service users need not also depend on
// tmi-bench for the common case.
pub use tmi_bench::JobSpec;
