//! A blocking NDJSON client for the job server — the library behind
//! `tmi_client` and the integration suite.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use tmi_bench::JobSpec;
use tmi_telemetry::json::{self, Json};

use crate::proto;

/// The terminal outcome of one submitted job.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Server-assigned job id.
    pub job_id: u64,
    /// Whether the reply was served from the result cache.
    pub cached: bool,
    /// Attempts the job took (> 1 means a worker died and the job was
    /// retried).
    pub attempts: u32,
    /// The deterministic result payload, byte-exact as sent on the wire
    /// (extracted with [`proto::extract_payload`]).
    pub payload: String,
}

/// One streamed progress event.
#[derive(Clone, Debug)]
pub struct Progress {
    /// Job the event belongs to.
    pub job_id: u64,
    /// `queued`, `running`, `retrying`, `done`, or `failed`.
    pub state: String,
    /// Attempt the event happened on (0 before first pickup).
    pub attempt: u32,
    /// Rendered `service.*` snapshot at event time.
    pub metrics: String,
}

/// A connected client. One request/reply conversation at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send failed: {e}"))
    }

    fn recv(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".to_string()),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(format!("receive failed: {e}")),
        }
    }

    /// Submits a job and blocks to its terminal reply, feeding each
    /// progress event to `on_progress`. `fresh` bypasses the cache read.
    pub fn run(
        &mut self,
        tenant: &str,
        spec: &JobSpec,
        priority: usize,
        fresh: bool,
        mut on_progress: impl FnMut(&Progress),
    ) -> Result<RunOutcome, String> {
        self.send(&proto::render_submit(tenant, spec, priority, fresh, true))?;
        loop {
            let line = self.recv()?;
            let v = json::parse(&line).map_err(|e| format!("bad reply {line:?}: {e}"))?;
            let num = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
            match v.get("type").and_then(Json::as_str).unwrap_or("") {
                "accepted" => {}
                "progress" => on_progress(&Progress {
                    job_id: num("job_id"),
                    state: v
                        .get("state")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    attempt: num("attempt") as u32,
                    metrics: v
                        .get("metrics")
                        .map(|_| extract_object(&line, "\"metrics\": "))
                        .unwrap_or_default(),
                }),
                "result" => {
                    let payload = proto::extract_payload(&line)
                        .ok_or_else(|| format!("result line without payload: {line:?}"))?
                        .to_string();
                    return Ok(RunOutcome {
                        job_id: num("job_id"),
                        cached: matches!(v.get("cached"), Some(Json::Bool(true))),
                        attempts: num("attempts") as u32,
                        payload,
                    });
                }
                "rejected" => {
                    return Err(format!(
                        "rejected ({}): {}",
                        v.get("reason").and_then(Json::as_str).unwrap_or("?"),
                        v.get("detail").and_then(Json::as_str).unwrap_or(""),
                    ))
                }
                "job_error" => {
                    return Err(format!(
                        "job failed: {}",
                        v.get("message").and_then(Json::as_str).unwrap_or("?"),
                    ))
                }
                "error" => {
                    return Err(format!(
                        "protocol error: {}",
                        v.get("message").and_then(Json::as_str).unwrap_or("?"),
                    ))
                }
                other => return Err(format!("unexpected reply type {other:?}")),
            }
        }
    }

    /// Fetches the server's metrics document (rendered JSON object).
    pub fn stats(&mut self) -> Result<String, String> {
        self.send("{\"type\": \"stats\"}")?;
        let line = self.recv()?;
        let v = json::parse(&line).map_err(|e| format!("bad reply {line:?}: {e}"))?;
        match v.get("type").and_then(Json::as_str) {
            Some("stats") => Ok(extract_object(&line, "\"metrics\": ")),
            _ => Err(format!("unexpected reply {line:?}")),
        }
    }

    /// Asks the server to shut down; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send("{\"type\": \"shutdown\"}")?;
        let line = self.recv()?;
        match json::parse(&line)
            .ok()
            .as_ref()
            .and_then(|v| v.get("type"))
            .and_then(Json::as_str)
        {
            Some("ok") => Ok(()),
            _ => Err(format!("unexpected reply {line:?}")),
        }
    }
}

/// Pulls the raw bytes of a trailing JSON object member out of a reply
/// line (reply renderers always place the object member last).
fn extract_object(line: &str, marker: &str) -> String {
    match line.find(marker) {
        Some(at) => {
            let line = line.trim_end();
            line[at + marker.len()..line.len() - 1].to_string()
        }
        None => String::new(),
    }
}
