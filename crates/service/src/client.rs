//! A blocking NDJSON client for the job server — the library behind
//! `tmi_client` and the integration suite.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use tmi_bench::JobSpec;
use tmi_telemetry::json::{self, Json};

use crate::proto;

/// Deadlines and retry policy for a hardened client.
///
/// Every field has a bounded default so a vanished daemon turns into an
/// error the caller can act on instead of a read that blocks forever.
/// Retried submissions are safe because replies are deterministic
/// functions of the [`JobSpec`]: a resubmission either hits the result
/// cache or recomputes the identical payload.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Deadline for each blocking read (accept/progress/result lines).
    pub read_timeout: Duration,
    /// Additional attempts after the first (0 = single shot).
    pub retries: u32,
    /// Base backoff between attempts; doubles per attempt plus jitter.
    pub backoff_base_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub retry_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(30),
            retries: 3,
            backoff_base_ms: 50,
            retry_seed: 1,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether a `run` error is transient — worth a fresh connection —
/// rather than a server verdict on the job itself.
fn is_transient(err: &str) -> bool {
    err.starts_with("connect failed")
        || err.starts_with("send failed")
        || err.starts_with("receive failed")
        || err.starts_with("server closed")
        || err.starts_with("rejected (draining)")
}

/// Submits `spec` with bounded retries: each attempt opens a fresh
/// connection under `cfg`'s deadlines, and transient failures (refused
/// or dropped connections, read timeouts, `draining` rejections) back
/// off with seeded jitter before resubmitting. Non-transient verdicts
/// (quota, bad request, job failure) surface immediately. The terminal
/// error is a single actionable line carrying the address, elapsed
/// time, and attempt count.
pub fn run_with_retry(
    addr: &str,
    cfg: &ClientConfig,
    tenant: &str,
    spec: &JobSpec,
    priority: usize,
    fresh: bool,
    mut on_progress: impl FnMut(&Progress),
) -> Result<RunOutcome, String> {
    let started = Instant::now();
    let attempts = cfg.retries + 1;
    let mut last = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            let base = cfg.backoff_base_ms << (attempt - 1).min(6);
            let jitter = splitmix64(cfg.retry_seed.wrapping_add(u64::from(attempt)))
                % cfg.backoff_base_ms.max(1);
            std::thread::sleep(Duration::from_millis(base + jitter));
        }
        let result = Client::connect_with(addr, cfg)
            .map_err(|e| format!("connect failed: {e}"))
            .and_then(|mut c| c.run(tenant, spec, priority, fresh, &mut on_progress));
        match result {
            Ok(out) => return Ok(out),
            Err(e) if is_transient(&e) => last = e,
            Err(e) => return Err(e),
        }
    }
    Err(format!(
        "run failed after {attempts} attempts over {:.1}s against {addr}: {last}",
        started.elapsed().as_secs_f64(),
    ))
}

/// The terminal outcome of one submitted job.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Server-assigned job id.
    pub job_id: u64,
    /// Whether the reply was served from the result cache.
    pub cached: bool,
    /// Attempts the job took (> 1 means a worker died and the job was
    /// retried).
    pub attempts: u32,
    /// The deterministic result payload, byte-exact as sent on the wire
    /// (extracted with [`proto::extract_payload`]).
    pub payload: String,
}

/// One streamed progress event.
#[derive(Clone, Debug)]
pub struct Progress {
    /// Job the event belongs to.
    pub job_id: u64,
    /// `queued`, `running`, `retrying`, `done`, or `failed`.
    pub state: String,
    /// Attempt the event happened on (0 before first pickup).
    pub attempt: u32,
    /// Rendered `service.*` snapshot at event time.
    pub metrics: String,
}

/// A connected client. One request/reply conversation at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server (no deadlines — test/library use).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connects under `cfg`'s connect deadline and arms its read
    /// deadline on the stream, so a daemon that vanishes mid-reply
    /// yields a timeout error instead of blocking forever.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: &ClientConfig) -> std::io::Result<Client> {
        let mut last = std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address");
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, cfg.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(cfg.read_timeout))?;
                    return Client::from_stream(stream);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send failed: {e}"))
    }

    fn recv(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".to_string()),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(format!("receive failed: {e}")),
        }
    }

    /// Submits a job and blocks to its terminal reply, feeding each
    /// progress event to `on_progress`. `fresh` bypasses the cache read.
    pub fn run(
        &mut self,
        tenant: &str,
        spec: &JobSpec,
        priority: usize,
        fresh: bool,
        mut on_progress: impl FnMut(&Progress),
    ) -> Result<RunOutcome, String> {
        self.send(&proto::render_submit(tenant, spec, priority, fresh, true))?;
        loop {
            let line = self.recv()?;
            let v = json::parse(&line).map_err(|e| format!("bad reply {line:?}: {e}"))?;
            let num = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
            match v.get("type").and_then(Json::as_str).unwrap_or("") {
                "accepted" => {}
                "progress" => on_progress(&Progress {
                    job_id: num("job_id"),
                    state: v
                        .get("state")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    attempt: num("attempt") as u32,
                    metrics: v
                        .get("metrics")
                        .map(|_| extract_object(&line, "\"metrics\": "))
                        .unwrap_or_default(),
                }),
                "result" => {
                    let payload = proto::extract_payload(&line)
                        .ok_or_else(|| format!("result line without payload: {line:?}"))?
                        .to_string();
                    return Ok(RunOutcome {
                        job_id: num("job_id"),
                        cached: matches!(v.get("cached"), Some(Json::Bool(true))),
                        attempts: num("attempts") as u32,
                        payload,
                    });
                }
                "rejected" => {
                    return Err(format!(
                        "rejected ({}): {}",
                        v.get("reason").and_then(Json::as_str).unwrap_or("?"),
                        v.get("detail").and_then(Json::as_str).unwrap_or(""),
                    ))
                }
                "job_error" => {
                    return Err(format!(
                        "job failed: {}",
                        v.get("message").and_then(Json::as_str).unwrap_or("?"),
                    ))
                }
                "error" => {
                    return Err(format!(
                        "protocol error: {}",
                        v.get("message").and_then(Json::as_str).unwrap_or("?"),
                    ))
                }
                other => return Err(format!("unexpected reply type {other:?}")),
            }
        }
    }

    /// Fetches the server's metrics document (rendered JSON object).
    pub fn stats(&mut self) -> Result<String, String> {
        self.send("{\"type\": \"stats\"}")?;
        let line = self.recv()?;
        let v = json::parse(&line).map_err(|e| format!("bad reply {line:?}: {e}"))?;
        match v.get("type").and_then(Json::as_str) {
            Some("stats") => Ok(extract_object(&line, "\"metrics\": ")),
            _ => Err(format!("unexpected reply {line:?}")),
        }
    }

    /// Asks the server to drain gracefully (finish in-flight jobs,
    /// flush durable state, exit); returns once acknowledged.
    pub fn drain(&mut self) -> Result<(), String> {
        self.send("{\"type\": \"drain\"}")?;
        let line = self.recv()?;
        match json::parse(&line)
            .ok()
            .as_ref()
            .and_then(|v| v.get("type"))
            .and_then(Json::as_str)
        {
            Some("ok") => Ok(()),
            _ => Err(format!("unexpected reply {line:?}")),
        }
    }

    /// Asks the server to shut down; returns once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send("{\"type\": \"shutdown\"}")?;
        let line = self.recv()?;
        match json::parse(&line)
            .ok()
            .as_ref()
            .and_then(|v| v.get("type"))
            .and_then(Json::as_str)
        {
            Some("ok") => Ok(()),
            _ => Err(format!("unexpected reply {line:?}")),
        }
    }
}

/// Pulls the raw bytes of a trailing JSON object member out of a reply
/// line (reply renderers always place the object member last).
fn extract_object(line: &str, marker: &str) -> String {
    match line.find(marker) {
        Some(at) => {
            let line = line.trim_end();
            line[at + marker.len()..line.len() - 1].to_string()
        }
        None => String::new(),
    }
}
