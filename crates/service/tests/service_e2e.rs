//! End-to-end tests for the job server: real TCP connections against a
//! real daemon, covering admission edge cases (backpressure, quotas,
//! malformed lines) and the service's central determinism claim — a
//! job's payload bytes are identical whether computed cold, served from
//! the result cache, or recomputed after fault injection kills a worker
//! mid-job.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use tmi_faultpoint::{FaultPlan, FaultPoint, PointPlan};
use tmi_service::{proto, Client, JobSpec, Service, ServiceConfig};
use tmi_telemetry::json::{self, Json};

/// A cheap deterministic spec the suite reuses (sized like the
/// `run_all --quick` cells).
fn small_spec() -> JobSpec {
    let mut spec = JobSpec::new("histogramfs");
    spec.cfg.threads = 4;
    spec.cfg.scale = 0.02;
    spec
}

/// Sends raw request lines on one connection and returns one reply line
/// per request (requests must be non-streaming).
fn raw_roundtrip(addr: std::net::SocketAddr, requests: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut replies = Vec::new();
    for req in requests {
        writeln!(writer, "{req}").expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        replies.push(line.trim_end().to_string());
    }
    replies
}

fn reply_field<'a>(reply: &'a Json, key: &str) -> &'a str {
    reply.get(key).and_then(Json::as_str).unwrap_or("")
}

#[test]
fn queue_full_submissions_get_backpressure_replies() {
    // No workers: nothing drains, so the ring (capacity 2) fills
    // deterministically and the third submission must be shed with an
    // explicit queue_full reply, not a hang.
    let service = Service::start(ServiceConfig {
        workers: 0,
        queue_capacity: 2,
        default_quota: 100,
        ..ServiceConfig::default()
    })
    .unwrap();
    let submits: Vec<String> = (0..3)
        .map(|_| proto::render_submit("flood", &small_spec(), 1, true, false))
        .collect();
    let replies = raw_roundtrip(service.addr(), &submits);
    for reply in &replies[..2] {
        let v = json::parse(reply).unwrap();
        assert_eq!(reply_field(&v, "type"), "accepted", "reply: {reply}");
    }
    let v = json::parse(&replies[2]).unwrap();
    assert_eq!(reply_field(&v, "type"), "rejected");
    assert_eq!(reply_field(&v, "reason"), "queue_full");
    let m = service.metrics();
    assert_eq!(m.u64("service.reject_queue_full"), 1);
    assert_eq!(m.u64("service.jobs_submitted"), 2);
    service.shutdown_now();
    service.wait();
}

#[test]
fn tenant_quota_exhaustion_rejects_but_only_for_that_tenant() {
    let service = Service::start(ServiceConfig {
        workers: 0,
        queue_capacity: 64,
        default_quota: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    let submit = |tenant: &str| proto::render_submit(tenant, &small_spec(), 1, true, false);
    let replies = raw_roundtrip(
        service.addr(),
        &[
            submit("greedy"),
            submit("greedy"),
            submit("greedy"),
            submit("modest"),
        ],
    );
    let kinds: Vec<String> = replies
        .iter()
        .map(|r| reply_field(&json::parse(r).unwrap(), "type").to_string())
        .collect();
    assert_eq!(kinds, ["accepted", "accepted", "rejected", "accepted"]);
    let v = json::parse(&replies[2]).unwrap();
    assert_eq!(reply_field(&v, "reason"), "quota_exceeded");
    assert!(reply_field(&v, "detail").contains("quota 2"), "{replies:?}");
    let m = service.metrics();
    assert_eq!(m.u64("service.reject_quota"), 1);
    assert_eq!(m.u64("service.tenants"), 2);
    service.shutdown_now();
    service.wait();
}

#[test]
fn queue_full_fault_point_sheds_admissions() {
    // Every roll of the queue_full point fires: admission sheds the
    // request even though the ring is empty.
    let service = Service::start(ServiceConfig {
        workers: 0,
        faults: Some(FaultPlan::quiet().with(FaultPoint::QueueFull, PointPlan::transient(1, 1))),
        ..ServiceConfig::default()
    })
    .unwrap();
    let replies = raw_roundtrip(
        service.addr(),
        &[proto::render_submit("chaos", &small_spec(), 1, true, false)],
    );
    let v = json::parse(&replies[0]).unwrap();
    assert_eq!(reply_field(&v, "type"), "rejected");
    assert_eq!(reply_field(&v, "reason"), "queue_full");
    assert!(reply_field(&v, "detail").contains("fault point"));
    let m = service.metrics();
    assert_eq!(m.u64("service.reject_queue_full"), 1);
    // The shed request released its quota slot: the tenant can submit
    // again once the fault stops firing (quota not leaked).
    service.shutdown_now();
    service.wait();
}

#[test]
fn malformed_lines_get_error_replies_and_the_connection_survives() {
    let service = Service::start(ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    })
    .unwrap();
    let replies = raw_roundtrip(
        service.addr(),
        &[
            "this is not json".to_string(),
            r#"{"type": "submit", "tenant": "t"}"#.to_string(),
            r#"{"type": "wait", "job_id": 99}"#.to_string(),
            r#"{"type": "stats"}"#.to_string(),
        ],
    );
    for reply in &replies[..3] {
        let v = json::parse(reply).unwrap();
        assert_eq!(reply_field(&v, "type"), "error", "reply: {reply}");
    }
    let v = json::parse(&replies[3]).unwrap();
    assert_eq!(reply_field(&v, "type"), "stats");
    // The unparseable line and the invalid submit both count as
    // malformed; the unknown job id is a protocol error, not a
    // malformed request.
    assert_eq!(service.metrics().u64("service.malformed_requests"), 2);
    service.shutdown_now();
    service.wait();
}

#[test]
fn unknown_workloads_are_rejected_as_bad_requests() {
    let service = Service::start(ServiceConfig {
        workers: 0,
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut spec = small_spec();
    spec.workload = "no-such-workload".to_string();
    let replies = raw_roundtrip(
        service.addr(),
        &[proto::render_submit("t", &spec, 1, false, false)],
    );
    let v = json::parse(&replies[0]).unwrap();
    assert_eq!(reply_field(&v, "type"), "rejected");
    assert_eq!(reply_field(&v, "reason"), "bad_request");
    assert_eq!(service.metrics().u64("service.reject_bad_request"), 1);
    service.shutdown_now();
    service.wait();
}

#[test]
fn duplicate_requests_hit_the_cache_with_byte_identical_payloads() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(service.addr()).unwrap();
    let spec = small_spec();

    let mut states = Vec::new();
    let cold = client
        .run("ci", &spec, 1, false, |p| states.push(p.state.clone()))
        .unwrap();
    assert!(!cold.cached);
    assert_eq!(cold.attempts, 1);
    assert_eq!(states, ["queued", "running", "done"], "streamed lifecycle");

    let cached = client.run("ci", &spec, 1, false, |_| {}).unwrap();
    assert!(
        cached.cached,
        "second identical submit must be cache-served"
    );
    assert_eq!(
        cold.payload, cached.payload,
        "cache hit must be byte-identical to the compute that filled it"
    );
    // The payload is the deterministic product of the spec alone.
    let v = json::parse(&cold.payload).unwrap();
    assert_eq!(reply_field(&v, "kind"), "run");
    assert!(v.get("metrics").is_some());

    let m = service.metrics();
    assert_eq!(m.u64("service.cache_hits"), 1);
    assert_eq!(m.u64("service.cache_misses"), 1);
    assert_eq!(m.u64("service.jobs_completed"), 2);

    client.shutdown().unwrap();
    service.wait();
}

#[test]
fn priorities_and_litmus_jobs_flow_through_the_service() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(service.addr()).unwrap();
    let litmus = JobSpec::litmus(7);
    let out = client.run("oracle", &litmus, 0, false, |_| {}).unwrap();
    let v = json::parse(&out.payload).unwrap();
    assert_eq!(reply_field(&v, "kind"), "litmus");
    assert_eq!(v.get("litmus_seed").and_then(Json::as_f64), Some(7.0));
    assert!(matches!(v.get("clean"), Some(Json::Bool(_))));

    // Transistency (VM-op) litmus jobs are first-class service workloads
    // too: same payload shape, routed through the transistency checker.
    let vm = JobSpec::litmus_vm(7);
    let out = client.run("oracle", &vm, 0, false, |_| {}).unwrap();
    let v = json::parse(&out.payload).unwrap();
    assert_eq!(reply_field(&v, "kind"), "litmus");
    assert_eq!(v.get("litmus_seed").and_then(Json::as_f64), Some(7.0));
    assert_eq!(
        v.get("clean"),
        Some(&Json::Bool(true)),
        "vm litmus seed 7 must check clean through the service"
    );

    // Stats carry both the schema-stable aggregates and the dynamic
    // per-tenant counters.
    let stats = client.stats().unwrap();
    let sv = json::parse(&stats).unwrap();
    assert!(sv.get("service.jobs_completed").is_some());
    assert_eq!(
        sv.get("service.tenant.oracle.submitted")
            .and_then(Json::as_f64),
        Some(2.0)
    );
    client.shutdown().unwrap();
    service.wait();
}

/// The central claim: worker death mid-job does not change a single
/// result byte. Chaos plan `worker_kill` period 2 means the second
/// pickup dies; the respawned worker's retry must reproduce the cold
/// run's payload exactly — and a second clean server computing the same
/// spec from scratch must agree too.
#[test]
fn worker_kill_campaign_retries_to_byte_identical_results() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        faults: Some(FaultPlan::quiet().with(FaultPoint::WorkerKill, PointPlan::transient(2, 1))),
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(service.addr()).unwrap();
    let spec = small_spec();

    // Pickup #1: the kill point rolls 1 (1 % 2 != 0) — survives.
    let cold = client.run("chaos", &spec, 1, false, |_| {}).unwrap();
    assert!(!cold.cached);
    assert_eq!(cold.attempts, 1);

    // Cache-served: no pickup, no roll.
    let cached = client.run("chaos", &spec, 1, false, |_| {}).unwrap();
    assert!(cached.cached);

    // `fresh` forces recompute. Pickup #2 rolls 2 — the worker dies
    // after requeueing the job; pickup #3 (respawned worker) survives
    // and recomputes.
    let mut states = Vec::new();
    let retried = client
        .run("chaos", &spec, 1, true, |p| states.push(p.state.clone()))
        .unwrap();
    assert!(!retried.cached);
    assert_eq!(retried.attempts, 2, "exactly one kill and one retry");
    assert!(
        states.iter().any(|s| s == "retrying"),
        "retry must be visible in the progress stream: {states:?}"
    );

    assert_eq!(cold.payload, cached.payload, "cold vs cached");
    assert_eq!(cold.payload, retried.payload, "cold vs fault-retried");

    let m = service.metrics();
    assert_eq!(m.u64("service.worker_kills"), 1);
    assert_eq!(m.u64("service.jobs_retried"), 1);
    assert!(m.u64("service.workers_respawned") >= 1);
    assert_eq!(m.u64("service.jobs_failed"), 0);

    client.shutdown().unwrap();
    let report = service.wait();
    // Every computed job left a span in the Chrome trace.
    assert!(report.chrome_trace.contains("\"service.job\""));

    // Cross-server determinism: a clean daemon with a fresh executor
    // must compute the same bytes from scratch.
    let clean = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut client2 = Client::connect(clean.addr()).unwrap();
    let independent = client2
        .run("other-tenant", &spec, 2, false, |_| {})
        .unwrap();
    assert_eq!(
        cold.payload, independent.payload,
        "two independent servers must agree byte-for-byte"
    );
    client2.shutdown().unwrap();
    clean.wait();
}

/// A dropped cache store (`cache_drop` fault) must not change reply
/// bytes — the recompute on the next submit agrees with the original.
#[test]
fn cache_drop_fault_forces_recompute_with_identical_bytes() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        faults: Some(FaultPlan::quiet().with(FaultPoint::CacheDrop, PointPlan::transient(1, 1))),
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(service.addr()).unwrap();
    let spec = small_spec();
    let first = client.run("ci", &spec, 1, false, |_| {}).unwrap();
    let second = client.run("ci", &spec, 1, false, |_| {}).unwrap();
    assert!(!first.cached);
    assert!(
        !second.cached,
        "every store is dropped, so the resubmit must recompute"
    );
    assert_eq!(first.payload, second.payload);
    let m = service.metrics();
    assert_eq!(m.u64("service.cache_drops"), 2);
    assert_eq!(m.u64("service.cache_hits"), 0);
    client.shutdown().unwrap();
    service.wait();
}
