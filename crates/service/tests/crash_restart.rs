//! End-to-end crash-recovery test: a real `tmi_serve` daemon, killed
//! with SIGKILL mid-job, must after a warm restart on the same data
//! directory produce byte-identical replies to a cold run — with the
//! cached ones served from the spilled result cache, not re-simulated.
//! A single cell of the `crash_matrix` campaign, small enough for the
//! regular test suite.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use tmi_service::{client, proto, ClientConfig, JobSpec};
use tmi_telemetry::json::{self, Json};

fn serve_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_tmi_serve"))
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn boot(data_dir: &Path) -> Daemon {
        let port_file = data_dir.join("port");
        let _ = std::fs::remove_file(&port_file);
        let child = Command::new(serve_bin())
            .args(["--addr", "127.0.0.1:0", "--workers", "1"])
            .arg("--data-dir")
            .arg(data_dir)
            .arg("--port-file")
            .arg(&port_file)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn tmi_serve");
        let deadline = Instant::now() + Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&port_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(Instant::now() < deadline, "daemon never wrote its port");
            std::thread::sleep(Duration::from_millis(10));
        };
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn cfg() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(2),
        read_timeout: Duration::from_secs(60),
        retries: 4,
        backoff_base_ms: 25,
        retry_seed: 1,
    }
}

fn job(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new("histogramfs");
    spec.cfg.threads = 4;
    spec.cfg.scale = 0.02;
    spec.seed = seed;
    spec
}

fn run_job(addr: &str, spec: &JobSpec) -> String {
    client::run_with_retry(addr, &cfg(), "e2e", spec, 1, false, |_| {})
        .expect("job run")
        .payload
}

fn metric(addr: &str, name: &str) -> u64 {
    let mut c = tmi_service::Client::connect_with(addr, &cfg()).expect("stats connect");
    let stats = c.stats().expect("stats");
    json::parse(&stats)
        .ok()
        .and_then(|v| v.get(name).and_then(Json::as_f64))
        .unwrap_or(0.0) as u64
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmi-crash-restart-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn kill9_then_warm_restart_serves_byte_identical_replies() {
    let jobs: Vec<JobSpec> = (1..=3).map(job).collect();

    // Cold reference: a daemon that is never killed.
    let ref_dir = tmp_dir("ref");
    let daemon = Daemon::boot(&ref_dir);
    let reference: Vec<String> = jobs.iter().map(|s| run_job(&daemon.addr, s)).collect();
    drop(daemon);

    // Crash run: complete the first job, put a second in flight, and
    // SIGKILL the daemon — nothing gets a chance to flush gracefully.
    let dir = tmp_dir("kill");
    let mut daemon = Daemon::boot(&dir);
    let pre_kill = run_job(&daemon.addr, &jobs[0]);
    {
        let stream = TcpStream::connect(&daemon.addr).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writeln!(
            writer,
            "{}",
            proto::render_submit("e2e", &jobs[1], 1, false, false)
        )
        .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"accepted\""), "in-flight submit: {line}");
    }
    let _ = daemon.child.kill();
    let _ = daemon.child.wait();

    // Warm restart on the same data dir: the journal re-enqueues the
    // in-flight job; wait for it to settle before resubmitting.
    let daemon = Daemon::boot(&dir);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let submitted = metric(&daemon.addr, "service.jobs_submitted");
        let terminal = metric(&daemon.addr, "service.jobs_completed")
            + metric(&daemon.addr, "service.jobs_failed");
        if terminal >= submitted {
            break;
        }
        assert!(Instant::now() < deadline, "replayed job never settled");
        std::thread::sleep(Duration::from_millis(25));
    }

    let warm: Vec<String> = jobs.iter().map(|s| run_job(&daemon.addr, s)).collect();
    assert_eq!(
        warm, reference,
        "post-restart replies must be byte-identical"
    );
    assert_eq!(
        pre_kill, reference[0],
        "pre-kill reply must match reference"
    );

    // The completed pre-kill job must come back from the spilled cache,
    // not a fresh simulation.
    assert!(
        metric(&daemon.addr, "service.persist.cache.warm_hits") > 0,
        "warm restart must serve spilled cache entries"
    );
    // Exactly-once: every submitted job reached exactly one terminal
    // state, no lost or doubled work.
    assert_eq!(
        metric(&daemon.addr, "service.jobs_submitted"),
        metric(&daemon.addr, "service.jobs_completed")
            + metric(&daemon.addr, "service.jobs_failed"),
    );

    drop(daemon);
    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_drains_gracefully_with_exit_zero() {
    let dir = tmp_dir("drain");
    let mut daemon = Daemon::boot(&dir);
    run_job(&daemon.addr, &job(9));

    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(daemon.child.id() as i32, 15);
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(status) = daemon.child.try_wait().expect("wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "graceful drain must exit 0");
    let _ = std::fs::remove_dir_all(&dir);
}
