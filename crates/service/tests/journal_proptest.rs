//! Property tests for the job-journal codec and replay
//! (`crates/service/src/journal.rs`).
//!
//! The journal is the service's crash-recovery ground truth, so its
//! codec must round-trip *every* representable record — including
//! tenants and workload names with quotes, backslashes, control
//! characters and non-ASCII text — and replay must recover exactly the
//! intact record prefix from any torn file.

use proptest::prelude::*;
use tmi_bench::{JobSpec, RuntimeKind};
use tmi_service::journal::{Journal, JournalRecord};

/// Integers that survive the codec's f64 number path exactly.
const MAX_EXACT: u64 = 1 << 53;

/// Characters the string strategy draws from — biased toward everything
/// the JSON escaper has to work for: quotes, backslashes, control
/// characters, multi-byte UTF-8.
const ALPHABET: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', '_', '-', ' ', '"', '\\', '/', '\n', '\r', '\t', '\x01',
    '\x1f', 'é', 'ß', '漢', '🦀', '{', '}', ':', ',',
];

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..ALPHABET.len(), 0..20)
        .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        (arb_string(), 0..RuntimeKind::ALL.len(), 1usize..64),
        (0u64..4_000, any::<bool>(), any::<bool>()),
        (any::<bool>(), 1u64..1_000, 1u64..1_000),
        (0u64..MAX_EXACT, 0u64..MAX_EXACT, any::<bool>()),
    )
        .prop_map(
            |(
                (workload, rt, threads),
                (scale_millis, fixed, misaligned),
                (huge_pages, period, tick_interval),
                (max_ops, seed, trace),
            )| {
                let mut spec = JobSpec::new(workload);
                spec.cfg.runtime = RuntimeKind::ALL[rt];
                spec.cfg.threads = threads;
                spec.cfg.scale = scale_millis as f64 / 1_000.0;
                spec.cfg.fixed = fixed;
                spec.cfg.misaligned = misaligned;
                spec.cfg.huge_pages = huge_pages;
                spec.cfg.period = period;
                spec.cfg.tick_interval = tick_interval;
                spec.cfg.max_ops = max_ops;
                spec.seed = seed;
                spec.trace = trace;
                spec
            },
        )
}

fn arb_record() -> impl Strategy<Value = JournalRecord> {
    prop_oneof![
        (0u64..MAX_EXACT, arb_string(), 0usize..4, arb_spec()).prop_map(
            |(id, tenant, priority, spec)| JournalRecord::Accepted {
                id,
                tenant,
                priority,
                spec,
            }
        ),
        (0u64..MAX_EXACT).prop_map(|id| JournalRecord::Done { id }),
        (0u64..MAX_EXACT).prop_map(|id| JournalRecord::Failed { id }),
    ]
}

proptest! {
    /// Every representable record decodes back to itself.
    #[test]
    fn record_codec_round_trips(rec in arb_record()) {
        let encoded = rec.encode();
        let decoded = JournalRecord::decode(&encoded)
            .expect("canonical encoding must decode");
        prop_assert_eq!(decoded, rec);
    }

    /// A journal truncated at an arbitrary byte offset replays exactly
    /// the records whose frames survived intact — never an error, never
    /// a phantom record.
    #[test]
    fn truncated_journal_replays_the_intact_prefix(
        recs in proptest::collection::vec(arb_record(), 1..8),
        cut_permille in 0u64..1_001,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tmi-journal-prop-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.log");
        let _ = std::fs::remove_file(&path);

        // Record the file length after each append so every possible
        // "intact prefix count" is known exactly.
        let mut j = Journal::open(&path).unwrap();
        let mut ends = vec![0u64];
        for rec in &recs {
            j.append(rec, None);
            j.sync().unwrap();
            ends.push(std::fs::metadata(&path).unwrap().len());
        }
        drop(j);

        let full = std::fs::read(&path).unwrap();
        let cut = (full.len() as u64 * cut_permille / 1_000) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        let intact = ends.iter().filter(|&&e| e <= cut as u64).count() - 1;
        let replay = Journal::replay(&path).unwrap();
        prop_assert_eq!(replay.records, intact as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
