//! Property tests for PEBS sampling: record counts follow the per-kind
//! periods exactly, buffers bound memory, and draining is lossless modulo
//! the documented overflow policy.

use proptest::prelude::*;
use tmi_machine::hitm::HitmKind;
use tmi_machine::VAddr;
use tmi_os::Tid;
use tmi_perf::{PerfConfig, PerfMonitor};
use tmi_program::Pc;

proptest! {
    /// For any event mix, each thread's record count is exactly
    /// floor(loads/period) + floor(stores/(period*divisor)).
    #[test]
    fn record_counts_follow_periods_exactly(
        period in 1..64u64,
        divisor in 1..8u64,
        events in proptest::collection::vec((0..4u32, any::<bool>()), 1..500),
    ) {
        let mut m = PerfMonitor::new(PerfConfig {
            period,
            store_divisor: divisor,
            skid_every: 0,
            ..Default::default()
        });
        let mut loads = [0u64; 4];
        let mut stores = [0u64; 4];
        for &(t, is_store) in &events {
            let kind = if is_store { HitmKind::Store } else { HitmKind::Load };
            m.on_hitm(Tid(t), Pc(0x400000), VAddr::new(0x1000), kind);
            if is_store {
                stores[t as usize] += 1;
            } else {
                loads[t as usize] += 1;
            }
        }
        let expected: u64 = (0..4)
            .map(|t| loads[t] / period + stores[t] / (period * divisor))
            .sum();
        prop_assert_eq!(m.records_taken(), expected);
        prop_assert_eq!(m.events_seen(), events.len() as u64);
    }

    /// Draining returns everything captured (minus documented overflow
    /// drops) and leaves the buffers empty.
    #[test]
    fn drain_is_lossless_and_emptying(
        cap in 1..64usize,
        n in 1..300u64,
    ) {
        let mut m = PerfMonitor::new(PerfConfig {
            period: 1,
            skid_every: 0,
            buffer_capacity: cap,
            ..Default::default()
        });
        for i in 0..n {
            m.on_hitm(Tid(0), Pc(0x400000), VAddr::new(i * 64), HitmKind::Load);
        }
        let drained = m.drain();
        prop_assert_eq!(drained.len() as u64 + m.records_dropped(), n);
        prop_assert!(drained.len() <= cap);
        prop_assert!(m.drain().is_empty(), "second drain must be empty");
        // The survivors are the newest records, in order.
        let first_kept = n - drained.len() as u64;
        for (i, rec) in drained.iter().enumerate() {
            prop_assert_eq!(rec.vaddr, VAddr::new((first_kept + i as u64) * 64));
        }
    }

    /// Capture cost is charged exactly when a record is taken.
    #[test]
    fn capture_cost_accounting(period in 1..32u64, n in 1..200u64) {
        let cfg = PerfConfig { period, skid_every: 0, ..Default::default() };
        let mut m = PerfMonitor::new(cfg);
        let mut total = 0u64;
        for i in 0..n {
            total += m.on_hitm(Tid(0), Pc(0x400000), VAddr::new(i), HitmKind::Load);
        }
        prop_assert_eq!(total, (n / period) * cfg.capture_cycles);
    }
}
