#![warn(missing_docs)]

//! # tmi-perf — PEBS-style HITM sampling
//!
//! Models the Linux `perf_event_open` interface TMI uses for detection
//! (§2.1, §3.1): per-thread event buffers accumulating records of the
//! `MEM_LOAD_UOPS_LLC_HIT_RETIRED.XSNP_HITM` event, governed by a sampling
//! *period* — one record per *n* HITM events. Like the real PEBS hardware:
//!
//! * records carry the **virtual** data address and the PC, but *not*
//!   whether the access was a load or a store (the detector recovers that
//!   by disassembling the PC);
//! * store-triggered HITM events produce records at a lower rate than
//!   load-triggered ones;
//! * the data address is occasionally imprecise ("the PC in a PEBS record
//!   is more accurate than the data address"), modeled as a deterministic
//!   skid on every k-th record;
//! * capturing a record costs time on the triggering core, which is what
//!   makes small periods slow (Fig. 4).

use std::collections::HashMap;

use tmi_faultpoint::{FaultInjector, FaultPoint};
use tmi_machine::hitm::HitmKind;
use tmi_machine::VAddr;
use tmi_os::Tid;
use tmi_program::Pc;

/// Sampling configuration (the `perf_event_attr` of the simulator).
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Sampling period: one record per `period` HITM events. The paper's
    /// experiments use 100 (§4.1); Fig. 4 sweeps {1, 5, 10, 50, 100, 1000}.
    pub period: u64,
    /// Extra period multiplier for store-triggered events.
    pub store_divisor: u64,
    /// Cycles charged to the triggering core per record captured (the PEBS
    /// microcode assist plus buffer write).
    pub capture_cycles: u64,
    /// Every `skid_every`-th record gets its data address perturbed by one
    /// word, modeling PEBS data-address imprecision. `0` disables skid.
    pub skid_every: u64,
    /// Per-thread ring-buffer capacity in records; the oldest records are
    /// dropped on overflow (the real buffer signals an interrupt; TMI's
    /// detection thread drains it, so overflow means lost records).
    pub buffer_capacity: usize,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            period: 100,
            store_divisor: 4,
            capture_cycles: 350,
            skid_every: 64,
            buffer_capacity: 1 << 16,
        }
    }
}

impl PerfConfig {
    /// A config with the given sampling period and defaults elsewhere.
    pub fn with_period(period: u64) -> Self {
        PerfConfig {
            period: period.max(1),
            ..Default::default()
        }
    }
}

/// One PEBS record, as delivered to the detection thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PebsRecord {
    /// Thread whose access triggered the event.
    pub tid: Tid,
    /// PC of the triggering instruction (accurate).
    pub pc: Pc,
    /// Virtual data address (occasionally skidded).
    pub vaddr: VAddr,
}

#[derive(Debug, Default)]
struct ThreadCounter {
    loads_seen: u64,
    stores_seen: u64,
    /// (global capture sequence, record): the sequence restores true
    /// temporal order when buffers from many threads are drained together,
    /// which the detector's pairwise classification depends on.
    records: Vec<(u64, PebsRecord)>,
    dropped: u64,
}

/// The perf monitor: one HITM counter and ring buffer per thread.
///
/// ```
/// use tmi_perf::{PerfConfig, PerfMonitor};
/// use tmi_machine::{hitm::HitmKind, VAddr};
/// use tmi_os::Tid;
/// use tmi_program::Pc;
///
/// let mut m = PerfMonitor::new(PerfConfig { period: 10, skid_every: 0, ..Default::default() });
/// m.open_thread(Tid(0));
/// for _ in 0..100 {
///     m.on_hitm(Tid(0), Pc(0x400000), VAddr::new(0x1000), HitmKind::Load);
/// }
/// assert_eq!(m.records_taken(), 10); // 1-in-10 sampling
/// assert_eq!(m.events_seen(), 100);  // but every event counted
/// ```
#[derive(Debug)]
pub struct PerfMonitor {
    config: PerfConfig,
    threads: HashMap<Tid, ThreadCounter>,
    records_taken: u64,
    events_seen: u64,
    faults: Option<FaultInjector>,
    records_injected_dropped: u64,
}

impl PerfMonitor {
    /// Creates a monitor with the given sampling configuration.
    pub fn new(config: PerfConfig) -> Self {
        PerfMonitor {
            config,
            threads: HashMap::new(),
            records_taken: 0,
            events_seen: 0,
            faults: None,
            records_injected_dropped: 0,
        }
    }

    /// Installs a seeded fault schedule: each captured record rolls
    /// [`FaultPoint::PebsDrop`], and a firing roll loses the record at
    /// capture time (the microcode assist still runs — and still costs
    /// [`PerfConfig::capture_cycles`] — but the buffer write is lost).
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// The sampling configuration.
    pub fn config(&self) -> &PerfConfig {
        &self.config
    }

    /// Opens the per-thread event buffer (TMI's interposed
    /// `pthread_create`, §3.1).
    pub fn open_thread(&mut self, tid: Tid) {
        self.threads.entry(tid).or_default();
    }

    /// Reports one HITM event from `tid`. Returns the cycles the record
    /// capture cost (0 if the event was merely counted).
    pub fn on_hitm(&mut self, tid: Tid, pc: Pc, vaddr: VAddr, kind: HitmKind) -> u64 {
        self.events_seen += 1;
        let cfg = self.config;
        let t = self.threads.entry(tid).or_default();
        let effective_period = match kind {
            HitmKind::Load => cfg.period,
            HitmKind::Store => cfg.period * cfg.store_divisor,
        };
        let count = match kind {
            HitmKind::Load => {
                t.loads_seen += 1;
                t.loads_seen
            }
            HitmKind::Store => {
                t.stores_seen += 1;
                t.stores_seen
            }
        };
        if count % effective_period != 0 {
            return 0;
        }
        self.records_taken += 1;
        if let Some(inj) = &self.faults {
            if inj.should_fail(FaultPoint::PebsDrop) {
                self.records_injected_dropped += 1;
                return cfg.capture_cycles;
            }
        }
        let vaddr = if cfg.skid_every > 0 && self.records_taken.is_multiple_of(cfg.skid_every) {
            vaddr.offset(8)
        } else {
            vaddr
        };
        if t.records.len() >= cfg.buffer_capacity {
            t.records.remove(0);
            t.dropped += 1;
        }
        t.records
            .push((self.records_taken, PebsRecord { tid, pc, vaddr }));
        cfg.capture_cycles
    }

    /// Drains all buffered records (the detection thread's consume pass),
    /// in capture order across threads — deterministic, and temporally
    /// faithful for the detector's consecutive-record classification.
    pub fn drain(&mut self) -> Vec<PebsRecord> {
        let mut tagged: Vec<(u64, PebsRecord)> = Vec::new();
        for t in self.threads.values_mut() {
            tagged.append(&mut t.records);
        }
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Total HITM events observed (recorded or not).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Total records captured.
    pub fn records_taken(&self) -> u64 {
        self.records_taken
    }

    /// Records dropped to buffer overflow.
    pub fn records_dropped(&self) -> u64 {
        self.threads.values().map(|t| t.dropped).sum()
    }

    /// Records lost to injected PEBS faults (capture-time drops).
    pub fn records_injected_dropped(&self) -> u64 {
        self.records_injected_dropped
    }

    /// Approximate memory footprint of the perf buffers in bytes
    /// (capacity × record size per opened thread), for Fig. 8.
    pub fn buffer_bytes(&self) -> u64 {
        (self.threads.len() * self.config.buffer_capacity * std::mem::size_of::<PebsRecord>())
            as u64
    }
}

impl tmi_telemetry::MetricSource for PerfMonitor {
    fn metrics(&self, out: &mut tmi_telemetry::MetricSink) {
        out.u64("events_seen", self.events_seen());
        out.u64("records_taken", self.records_taken());
        out.u64("records_dropped", self.records_dropped());
        out.u64("records_injected_dropped", self.records_injected_dropped());
        out.u64("buffer_bytes", self.buffer_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec_inputs() -> (Tid, Pc, VAddr) {
        (Tid(1), Pc(0x400010), VAddr::new(0x7000))
    }

    #[test]
    fn period_one_records_every_load_event() {
        let mut m = PerfMonitor::new(PerfConfig {
            period: 1,
            skid_every: 0,
            ..Default::default()
        });
        let (tid, pc, va) = rec_inputs();
        m.open_thread(tid);
        for _ in 0..10 {
            let cost = m.on_hitm(tid, pc, va, HitmKind::Load);
            assert!(cost > 0);
        }
        assert_eq!(m.records_taken(), 10);
        assert_eq!(m.drain().len(), 10);
    }

    #[test]
    fn period_n_records_one_in_n() {
        let mut m = PerfMonitor::new(PerfConfig {
            period: 10,
            skid_every: 0,
            ..Default::default()
        });
        let (tid, pc, va) = rec_inputs();
        for _ in 0..100 {
            m.on_hitm(tid, pc, va, HitmKind::Load);
        }
        assert_eq!(m.records_taken(), 10);
        assert_eq!(m.events_seen(), 100);
    }

    #[test]
    fn stores_record_at_lower_rate() {
        let cfg = PerfConfig {
            period: 10,
            store_divisor: 4,
            skid_every: 0,
            ..Default::default()
        };
        let mut m = PerfMonitor::new(cfg);
        let (tid, pc, va) = rec_inputs();
        for _ in 0..400 {
            m.on_hitm(tid, pc, va, HitmKind::Store);
        }
        assert_eq!(m.records_taken(), 10, "400 stores / (10*4) = 10 records");
    }

    #[test]
    fn skid_perturbs_every_kth_record() {
        let mut m = PerfMonitor::new(PerfConfig {
            period: 1,
            skid_every: 3,
            ..Default::default()
        });
        let (tid, pc, va) = rec_inputs();
        for _ in 0..6 {
            m.on_hitm(tid, pc, va, HitmKind::Load);
        }
        let recs = m.drain();
        let skidded = recs.iter().filter(|r| r.vaddr != va).count();
        assert_eq!(skidded, 2);
    }

    #[test]
    fn buffer_overflow_drops_oldest() {
        let mut m = PerfMonitor::new(PerfConfig {
            period: 1,
            skid_every: 0,
            buffer_capacity: 4,
            ..Default::default()
        });
        let (tid, pc, _) = rec_inputs();
        for i in 0..10u64 {
            m.on_hitm(tid, pc, VAddr::new(0x1000 + i * 64), HitmKind::Load);
        }
        let recs = m.drain();
        assert_eq!(recs.len(), 4);
        assert_eq!(m.records_dropped(), 6);
        assert_eq!(recs[0].vaddr, VAddr::new(0x1000 + 6 * 64), "oldest dropped");
        // Drained records arrive in capture order.
        for w in recs.windows(2) {
            assert!(w[0].vaddr < w[1].vaddr);
        }
    }

    #[test]
    fn per_thread_counters_are_independent() {
        let mut m = PerfMonitor::new(PerfConfig {
            period: 10,
            skid_every: 0,
            ..Default::default()
        });
        let pc = Pc(0x400000);
        let va = VAddr::new(0x9000);
        for _ in 0..9 {
            m.on_hitm(Tid(0), pc, va, HitmKind::Load);
            m.on_hitm(Tid(1), pc, va, HitmKind::Load);
        }
        assert_eq!(m.records_taken(), 0, "neither thread reached its period");
        m.on_hitm(Tid(0), pc, va, HitmKind::Load);
        assert_eq!(m.records_taken(), 1);
    }

    #[test]
    fn injected_pebs_drops_lose_records_but_still_cost_cycles() {
        use tmi_faultpoint::{FaultPlan, PointPlan};
        let mut m = PerfMonitor::new(PerfConfig {
            period: 1,
            skid_every: 0,
            ..Default::default()
        });
        // Every other captured record is dropped at capture time.
        m.set_fault_injector(FaultInjector::new(
            FaultPlan::quiet().with(FaultPoint::PebsDrop, PointPlan::transient(2, 1)),
        ));
        let (tid, pc, va) = rec_inputs();
        for _ in 0..10 {
            let cost = m.on_hitm(tid, pc, va, HitmKind::Load);
            assert!(cost > 0, "the assist runs whether or not the record lands");
        }
        assert_eq!(m.records_taken(), 10);
        assert_eq!(m.records_injected_dropped(), 5);
        assert_eq!(m.drain().len(), 5);
    }

    #[test]
    fn buffer_bytes_scales_with_threads() {
        let mut m = PerfMonitor::new(PerfConfig::default());
        assert_eq!(m.buffer_bytes(), 0);
        m.open_thread(Tid(0));
        m.open_thread(Tid(1));
        let per_thread =
            (PerfConfig::default().buffer_capacity * std::mem::size_of::<PebsRecord>()) as u64;
        assert_eq!(m.buffer_bytes(), 2 * per_thread);
    }
}
