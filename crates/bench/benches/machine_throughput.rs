//! Criterion benchmarks for the coherence simulator's hot paths: these
//! bound how large a workload the experiment binaries can afford, and
//! catch performance regressions in the per-access machinery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tmi_machine::{AccessKind, Machine, MachineConfig, PhysAddr, Width};

fn bench_local_hits(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("local_hit", |b| {
        let mut m = Machine::new(MachineConfig::with_cores(4));
        m.access(0, PhysAddr::new(0x1000), AccessKind::Store, Width::W8);
        b.iter(|| m.access(0, PhysAddr::new(0x1000), AccessKind::Load, Width::W8));
    });
    g.bench_function("hitm_ping_pong", |b| {
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let mut side = 0usize;
        b.iter(|| {
            side ^= 1;
            m.access(side, PhysAddr::new(0x2000), AccessKind::Store, Width::W8)
        });
    });
    g.bench_function("streaming_misses", |b| {
        b.iter_batched(
            || (Machine::new(MachineConfig::with_cores(4)), 0u64),
            |(mut m, _)| {
                for i in 0..512u64 {
                    m.access(
                        (i % 4) as usize,
                        PhysAddr::new(i * 64),
                        AccessKind::Load,
                        Width::W8,
                    );
                }
                m
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

/// The sharer/owner directory against the reference broadcast snoop, on
/// the workload shapes where they diverge most: a many-core streaming mix
/// (fills and invalidations probe all siblings on the reference path) and
/// a two-core HITM ping-pong (where the directory's bookkeeping is all
/// overhead). Both variants are simulated-cycle identical; only host
/// throughput differs.
fn bench_directory(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.throughput(Throughput::Elements(1));
    for (name, directory) in [
        ("snoop_storm_32c_directory", true),
        ("snoop_storm_32c_reference", false),
    ] {
        g.bench_function(name, |b| {
            const CORES: usize = 32;
            let mut m = Machine::new(MachineConfig {
                directory,
                ..MachineConfig::with_cores(CORES)
            });
            let mut x = 0x9E37_79B9u64;
            let mut i = 0usize;
            b.iter(|| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let kind = if x & 3 == 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                i = (i + 1) % CORES;
                m.access(i, PhysAddr::new((x % 4096) * 64), kind, Width::W8)
            });
        });
    }
    for (name, directory) in [("pingpong_directory", true), ("pingpong_reference", false)] {
        g.bench_function(name, |b| {
            let mut m = Machine::new(MachineConfig {
                directory,
                ..MachineConfig::with_cores(2)
            });
            let mut side = 0usize;
            b.iter(|| {
                side ^= 1;
                m.access(side, PhysAddr::new(0x2000), AccessKind::Store, Width::W8)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_local_hits, bench_directory);
criterion_main!(benches);
