//! Criterion benchmarks for the coherence simulator's hot paths: these
//! bound how large a workload the experiment binaries can afford, and
//! catch performance regressions in the per-access machinery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tmi_machine::{AccessKind, Machine, MachineConfig, PhysAddr, Width};

fn bench_local_hits(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("local_hit", |b| {
        let mut m = Machine::new(MachineConfig::with_cores(4));
        m.access(0, PhysAddr::new(0x1000), AccessKind::Store, Width::W8);
        b.iter(|| m.access(0, PhysAddr::new(0x1000), AccessKind::Load, Width::W8));
    });
    g.bench_function("hitm_ping_pong", |b| {
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let mut side = 0usize;
        b.iter(|| {
            side ^= 1;
            m.access(side, PhysAddr::new(0x2000), AccessKind::Store, Width::W8)
        });
    });
    g.bench_function("streaming_misses", |b| {
        b.iter_batched(
            || (Machine::new(MachineConfig::with_cores(4)), 0u64),
            |(mut m, _)| {
                for i in 0..512u64 {
                    m.access(
                        (i % 4) as usize,
                        PhysAddr::new(i * 64),
                        AccessKind::Load,
                        Width::W8,
                    );
                }
                m
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_local_hits);
criterion_main!(benches);
