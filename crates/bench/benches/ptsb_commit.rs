//! Criterion benchmarks for the PTSB machinery: COW breaks and the
//! diff-and-merge commit — the operations whose (simulated) cost model
//! §4.4 discusses, measured here in *host* time to keep the simulator
//! usable at suite scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tmi::{CommitCostModel, TwinStore};
use tmi_machine::{VAddr, Width, FRAME_SIZE};
use tmi_os::{AsId, Kernel, MapRequest};

const BASE: u64 = 0x10000;

fn armed_dirty_page() -> (Kernel, AsId, TwinStore) {
    let mut k = Kernel::new();
    let obj = k.create_object(4 * FRAME_SIZE);
    let a = k.create_aspace();
    k.map(
        a,
        MapRequest::object(VAddr::new(BASE), 4 * FRAME_SIZE, obj, 0),
    )
    .unwrap();
    k.force_write(a, VAddr::new(BASE), Width::W8, 1).unwrap();
    k.protect_page_cow(a, VAddr::new(BASE).vpn()).unwrap();
    k.handle_fault(a, VAddr::new(BASE), true).unwrap();
    let mut tw = TwinStore::new();
    tw.snapshot(&k, a, VAddr::new(BASE).vpn());
    k.force_write(a, VAddr::new(BASE), Width::W8, 2).unwrap();
    (k, a, tw)
}

fn bench_ptsb(c: &mut Criterion) {
    let mut g = c.benchmark_group("ptsb");
    g.bench_function("cow_break", |b| {
        b.iter_batched(
            || {
                let mut k = Kernel::new();
                let obj = k.create_object(FRAME_SIZE);
                let a = k.create_aspace();
                k.map(a, MapRequest::object(VAddr::new(BASE), FRAME_SIZE, obj, 0))
                    .unwrap();
                k.force_write(a, VAddr::new(BASE), Width::W8, 1).unwrap();
                k.protect_page_cow(a, VAddr::new(BASE).vpn()).unwrap();
                (k, a)
            },
            |(mut k, a)| {
                k.handle_fault(a, VAddr::new(BASE), true).unwrap();
                k
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("commit_one_dirty_page", |b| {
        b.iter_batched(
            armed_dirty_page,
            |(mut k, a, mut tw)| {
                tw.commit_page(
                    &mut k,
                    a,
                    VAddr::new(BASE).vpn(),
                    &CommitCostModel::standard(),
                    false,
                )
                .unwrap();
                k
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("twin_snapshot", |b| {
        b.iter_batched(
            || {
                let mut k = Kernel::new();
                let obj = k.create_object(FRAME_SIZE);
                let a = k.create_aspace();
                k.map(a, MapRequest::object(VAddr::new(BASE), FRAME_SIZE, obj, 0))
                    .unwrap();
                k.protect_page_cow(a, VAddr::new(BASE).vpn()).unwrap();
                k.handle_fault(a, VAddr::new(BASE), true).unwrap();
                (k, a)
            },
            |(k, a)| {
                let mut tw = TwinStore::new();
                tw.snapshot(&k, a, VAddr::new(BASE).vpn());
                tw
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_ptsb);
criterion_main!(benches);
