//! Criterion benchmarks of full end-to-end simulation: dynamic-ops-per-
//! host-second for representative workload/runtime pairs. These are the
//! numbers that size the experiment binaries' scale factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tmi_bench::{Experiment, RuntimeKind};

fn bench_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for (name, rt) in [
        ("histogram", RuntimeKind::Pthreads),
        ("histogram", RuntimeKind::TmiProtect),
        ("lreg", RuntimeKind::TmiProtect),
        ("leveldb", RuntimeKind::TmiDetect),
        ("canneal", RuntimeKind::Pthreads),
    ] {
        g.bench_with_input(
            BenchmarkId::new(rt.label(), name),
            &(name, rt),
            |b, &(name, rt)| {
                let e = Experiment::repair(name)
                    .runtime(rt)
                    .scale(0.05)
                    .misaligned();
                b.iter(|| e.clone().run());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
