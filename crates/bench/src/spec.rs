//! The shared job-specification vocabulary.
//!
//! [`JobSpec`] is the one config type every way of running a simulation
//! speaks: the [`crate::Experiment`] builder lowers into it, the
//! [`crate::Executor`] memoizes on it, the fuzz driver
//! ([`crate::fuzz::check_spec`]) consumes it for litmus jobs, and the
//! `tmi-service` wire protocol serializes it as the request body. One
//! vocabulary end to end means a job submitted over the socket, replayed
//! from a CLI flag set, or built in a test is *the same job* — same
//! memoization key, same deterministic result bytes.
//!
//! Two codecs live here so every entry point agrees on spelling:
//!
//! * **JSON** ([`JobSpec::to_json`] / [`JobSpec::from_json`]) — the wire
//!   form, built on the workspace's hand-rolled [`tmi_telemetry::json`]
//!   (offline-build clean, no serde).
//! * **CLI** ([`JobSpec::apply_cli_arg`] / [`JobSpec::cli_usage`]) — the
//!   flag set shared by `tmi_client`, `probe` and friends, replacing the
//!   per-bin ad-hoc parsers.

use tmi_telemetry::json::{self, Json};

use crate::harness::{RunConfig, RuntimeKind};

/// One cell of the experiment matrix: a workload under a configuration,
/// plus the fault-schedule seed and telemetry flags that complete a job's
/// identity.
///
/// `workload` is either a suite workload name (`tmi_workloads::SUITE`) or
/// a pseudo-workload: `litmus:<seed>` runs the seeded litmus program
/// through the differential oracle instead of the harness (the job shape
/// schedule-exploration clients submit), and `litmus+vm:<seed>` runs the
/// seed's *transistency* program (VM operations interleaved with the
/// consistency vocabulary) the same way.
#[derive(Clone, PartialEq, Debug)]
pub struct JobSpec {
    /// Workload name (see `tmi_workloads::SUITE`), `litmus:<seed>`, or
    /// `litmus+vm:<seed>`.
    pub workload: String,
    /// Full run configuration.
    pub cfg: RunConfig,
    /// Fault-schedule seed. `0` disables injection; any other value runs
    /// the job under the seeded [`tmi_faultpoint::FaultPlan`] (for litmus
    /// jobs, the campaign base seed that
    /// [`tmi_oracle::derive_fault_seed`] mixes per program). Part of the
    /// memoization key: the same `(workload, config, seed)` always
    /// returns the same bytes.
    pub seed: u64,
    /// Collect a Chrome `trace_event` timeline alongside the result
    /// (ignored by runtimes without tracer support).
    pub trace: bool,
}

impl JobSpec {
    /// A spec on `workload` with the detection-machine defaults
    /// ([`RunConfig::new`], pthreads, no faults, no trace).
    pub fn new(workload: impl Into<String>) -> Self {
        JobSpec {
            workload: workload.into(),
            cfg: RunConfig::new(RuntimeKind::Pthreads),
            seed: 0,
            trace: false,
        }
    }

    /// A litmus-check job on the given program seed under full TMI
    /// repair — the unit of work of the differential fuzz campaign and
    /// of schedule-exploration service clients.
    pub fn litmus(program_seed: u64) -> Self {
        JobSpec {
            workload: format!("litmus:{program_seed}"),
            cfg: RunConfig::repair(RuntimeKind::TmiProtect),
            seed: 0,
            trace: false,
        }
    }

    /// A *transistency* litmus-check job: the seeded VM-op program
    /// ([`tmi_oracle::Litmus::generate_vm`] — `mprotect`, COW breaks, T2P
    /// conversions, twin commits, TLB shootdowns interleaved with the
    /// consistency vocabulary) through the differential oracle.
    pub fn litmus_vm(program_seed: u64) -> Self {
        JobSpec {
            workload: format!("litmus+vm:{program_seed}"),
            ..JobSpec::litmus(program_seed)
        }
    }

    /// The litmus program seed, if this is a plain litmus job.
    pub fn litmus_seed(&self) -> Option<u64> {
        self.workload.strip_prefix("litmus:")?.parse().ok()
    }

    /// The litmus program seed, if this is a transistency (VM-op) litmus
    /// job.
    pub fn litmus_vm_seed(&self) -> Option<u64> {
        self.workload.strip_prefix("litmus+vm:")?.parse().ok()
    }

    /// True if this job runs through the differential oracle rather than
    /// the workload harness.
    pub fn is_litmus(&self) -> bool {
        self.litmus_seed().is_some() || self.litmus_vm_seed().is_some()
    }

    /// Renders the canonical wire form: a JSON object with every field
    /// spelled out in stable order. Byte-stable for equal specs, so it
    /// doubles as a cache key.
    pub fn to_json(&self) -> String {
        let c = &self.cfg;
        format!(
            "{{\"workload\": {}, \"runtime\": {}, \"threads\": {}, \
             \"scale\": {}, \"fixed\": {}, \"misaligned\": {}, \
             \"huge_pages\": {}, \"period\": {}, \"tick_interval\": {}, \
             \"max_ops\": {}, \"fastpath_tlb\": {}, \"fastpath_dir\": {}, \
             \"sim_threads\": {}, \"seed\": {}, \"trace\": {}}}",
            json::string(&self.workload),
            json::string(c.runtime.label()),
            c.threads,
            json::fmt_f64(c.scale),
            c.fixed,
            c.misaligned,
            c.huge_pages,
            c.period,
            c.tick_interval,
            c.max_ops,
            c.fast_path.tlb,
            c.fast_path.directory,
            c.sim_threads,
            self.seed,
            self.trace,
        )
    }

    /// Decodes the wire form. Only `workload` is required; every other
    /// member defaults from [`RunConfig::new`] under the requested (or
    /// pthreads) runtime, so minimal requests stay minimal.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let obj = v.as_obj().ok_or("job spec must be a JSON object")?;
        let workload = v
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("job spec needs a string \"workload\"")?
            .to_string();
        let runtime = match v.get("runtime") {
            None => RuntimeKind::Pthreads,
            Some(r) => {
                let label = r.as_str().ok_or("\"runtime\" must be a string label")?;
                RuntimeKind::from_label(label)
                    .ok_or_else(|| format!("unknown runtime {label:?}"))?
            }
        };
        let mut cfg = RunConfig::new(runtime);
        let num = |key: &str| -> Result<Option<f64>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(j) => j
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("\"{key}\" must be a number")),
            }
        };
        let flag = |key: &str| -> Result<Option<bool>, String> {
            match obj.get(key) {
                None => Ok(None),
                Some(Json::Bool(b)) => Ok(Some(*b)),
                Some(_) => Err(format!("\"{key}\" must be a boolean")),
            }
        };
        if let Some(t) = num("threads")? {
            cfg.threads = t as usize;
        }
        if let Some(s) = num("scale")? {
            cfg.scale = s;
        }
        if let Some(p) = num("period")? {
            cfg.period = p as u64;
        }
        if let Some(t) = num("tick_interval")? {
            cfg.tick_interval = t as u64;
        }
        if let Some(m) = num("max_ops")? {
            cfg.max_ops = m as u64;
        }
        cfg.fixed = flag("fixed")?.unwrap_or(false);
        cfg.misaligned = flag("misaligned")?.unwrap_or(false);
        cfg.huge_pages = flag("huge_pages")?.unwrap_or(false);
        // Absent fast-path / shard members keep the RunConfig::new
        // defaults (the once-per-process env snapshot), so minimal
        // requests behave exactly like a fresh CLI run.
        if let Some(b) = flag("fastpath_tlb")? {
            cfg.fast_path.tlb = b;
        }
        if let Some(b) = flag("fastpath_dir")? {
            cfg.fast_path.directory = b;
        }
        if let Some(n) = num("sim_threads")? {
            cfg.sim_threads = (n as usize).max(1);
        }
        Ok(JobSpec {
            workload,
            cfg,
            seed: num("seed")?.map(|s| s as u64).unwrap_or(0),
            trace: flag("trace")?.unwrap_or(false),
        })
    }

    /// Parses one CLI argument against this spec, pulling flag values
    /// from `next`. Returns `Ok(true)` if consumed, `Ok(false)` if the
    /// argument is not a spec flag (the caller's to handle).
    pub fn apply_cli_arg(
        &mut self,
        arg: &str,
        next: &mut dyn FnMut() -> Option<String>,
    ) -> Result<bool, String> {
        let mut value = |name: &str| next().ok_or_else(|| format!("{name} expects a value"));
        let parse_u64 = |name: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| format!("{name} expects a number, got {v:?}"))
        };
        let parse_bool = |name: &str, v: String| match v.as_str() {
            "true" | "on" | "1" => Ok(true),
            "false" | "off" | "0" => Ok(false),
            _ => Err(format!("{name} expects true|false, got {v:?}")),
        };
        match arg {
            "--workload" => self.workload = value("--workload")?,
            "--runtime" => {
                let label = value("--runtime")?;
                self.cfg.runtime = RuntimeKind::from_label(&label)
                    .ok_or_else(|| format!("unknown runtime {label:?}"))?;
            }
            "--threads" => self.cfg.threads = parse_u64("--threads", value("--threads")?)? as usize,
            "--scale" => {
                let v = value("--scale")?;
                self.cfg.scale = v
                    .parse::<f64>()
                    .map_err(|_| format!("--scale expects a number, got {v:?}"))?;
            }
            "--period" => self.cfg.period = parse_u64("--period", value("--period")?)?,
            "--tick-interval" => {
                self.cfg.tick_interval = parse_u64("--tick-interval", value("--tick-interval")?)?
            }
            "--max-ops" => self.cfg.max_ops = parse_u64("--max-ops", value("--max-ops")?)?,
            "--fastpath-tlb" => {
                self.cfg.fast_path.tlb = parse_bool("--fastpath-tlb", value("--fastpath-tlb")?)?
            }
            "--fastpath-dir" => {
                self.cfg.fast_path.directory =
                    parse_bool("--fastpath-dir", value("--fastpath-dir")?)?
            }
            "--sim-threads" => {
                self.cfg.sim_threads =
                    (parse_u64("--sim-threads", value("--sim-threads")?)? as usize).max(1)
            }
            "--seed" => self.seed = parse_u64("--seed", value("--seed")?)?,
            "--fixed" => self.cfg.fixed = true,
            "--misaligned" => self.cfg.misaligned = true,
            "--huge-pages" => self.cfg.huge_pages = true,
            "--spec-trace" => self.trace = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// The usage string for the shared CLI flags, for bins to append to
    /// their own usage lines.
    pub fn cli_usage() -> &'static str {
        "--workload NAME|litmus:<seed>|litmus+vm:<seed> [--runtime LABEL] [--threads N] \
         [--scale F] [--period N] [--tick-interval N] [--max-ops N] \
         [--fastpath-tlb BOOL] [--fastpath-dir BOOL] [--sim-threads N] \
         [--seed N] [--fixed] [--misaligned] [--huge-pages] [--spec-trace]"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut spec = JobSpec::new("histogramfs");
        spec.cfg = RunConfig::repair(RuntimeKind::TmiProtect)
            .scale(0.25)
            .misaligned()
            .period(10);
        spec.seed = 42;
        spec.trace = true;
        let doc = spec.to_json();
        let parsed = JobSpec::from_json(&json::parse(&doc).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        // The canonical form is byte-stable: encode → decode → encode.
        assert_eq!(parsed.to_json(), doc);
    }

    #[test]
    fn minimal_request_defaults_like_run_config_new() {
        let v = json::parse(r#"{"workload": "histogram"}"#).unwrap();
        let spec = JobSpec::from_json(&v).unwrap();
        assert_eq!(spec, JobSpec::new("histogram"));
        assert_eq!(spec.cfg, RunConfig::new(RuntimeKind::Pthreads));
    }

    #[test]
    fn decode_rejects_unknown_runtime_and_bad_types() {
        let bad_rt = json::parse(r#"{"workload": "x", "runtime": "gpu"}"#).unwrap();
        assert!(JobSpec::from_json(&bad_rt).unwrap_err().contains("gpu"));
        let bad_threads = json::parse(r#"{"workload": "x", "threads": "four"}"#).unwrap();
        assert!(JobSpec::from_json(&bad_threads).is_err());
        let no_workload = json::parse(r#"{"threads": 4}"#).unwrap();
        assert!(JobSpec::from_json(&no_workload).is_err());
    }

    #[test]
    fn litmus_jobs_parse_their_seed() {
        let spec = JobSpec::litmus(97);
        assert_eq!(spec.litmus_seed(), Some(97));
        assert!(spec.is_litmus());
        assert!(!JobSpec::new("histogram").is_litmus());
        assert!(!JobSpec::new("litmus:notanumber").is_litmus());
    }

    #[test]
    fn transistency_jobs_parse_their_seed_and_stay_disjoint() {
        let spec = JobSpec::litmus_vm(31);
        assert_eq!(spec.workload, "litmus+vm:31");
        assert_eq!(spec.litmus_vm_seed(), Some(31));
        assert_eq!(spec.litmus_seed(), None, "vm jobs are not plain litmus");
        assert!(spec.is_litmus());
        assert_eq!(spec.cfg, JobSpec::litmus(31).cfg);
        assert_eq!(JobSpec::litmus(31).litmus_vm_seed(), None);
        // The pseudo-workload survives the wire codec like any other name.
        let parsed = JobSpec::from_json(&json::parse(&spec.to_json()).unwrap()).unwrap();
        assert_eq!(parsed.litmus_vm_seed(), Some(31));
    }

    fn spec_strategy() -> impl Strategy<Value = JobSpec> {
        let workload = prop_oneof![
            Just("histogram".to_string()),
            Just("lreg".to_string()),
            (0u64..10_000).prop_map(|s| format!("litmus:{s}")),
            (0u64..10_000).prop_map(|s| format!("litmus+vm:{s}")),
        ];
        let runtime = (0usize..RuntimeKind::ALL.len()).prop_map(|i| RuntimeKind::ALL[i]);
        (
            (workload, runtime, 1usize..16, 1u32..64),
            (any::<bool>(), any::<bool>(), any::<bool>(), 1u64..1000),
            // Seeds stay below 2^32: the JSON codec routes numbers through
            // f64, which is exact only up to 2^53.
            (
                1u64..10_000_000,
                1u64..100_000_000,
                0u64..1 << 32,
                any::<bool>(),
            ),
            (any::<bool>(), any::<bool>(), 1usize..16),
        )
            .prop_map(
                |(
                    (workload, runtime, threads, scale16),
                    (fixed, misaligned, huge_pages, period),
                    (tick_interval, max_ops, seed, trace),
                    (fp_tlb, fp_dir, sim_threads),
                )| {
                    let mut cfg = RunConfig::new(runtime);
                    cfg.threads = threads;
                    // Sixteenths are exact in f64 and print/parse exactly.
                    cfg.scale = f64::from(scale16) / 16.0;
                    cfg.fixed = fixed;
                    cfg.misaligned = misaligned;
                    cfg.huge_pages = huge_pages;
                    cfg.period = period;
                    cfg.tick_interval = tick_interval;
                    cfg.max_ops = max_ops;
                    cfg.fast_path.tlb = fp_tlb;
                    cfg.fast_path.directory = fp_dir;
                    cfg.sim_threads = sim_threads;
                    JobSpec {
                        workload,
                        cfg,
                        seed,
                        trace,
                    }
                },
            )
    }

    proptest! {
        /// JSON codec: decode(encode(spec)) == spec for every reachable
        /// spec, and the canonical form is byte-stable (it doubles as the
        /// executor's memoization key).
        #[test]
        fn json_codec_round_trips(spec in spec_strategy()) {
            let doc = spec.to_json();
            let parsed = JobSpec::from_json(&json::parse(&doc).unwrap()).unwrap();
            prop_assert_eq!(&parsed, &spec);
            prop_assert_eq!(parsed.to_json(), doc);
        }

        /// CLI codec: rendering a spec to its flag vector and re-applying
        /// the flags to a default spec reproduces it exactly.
        #[test]
        fn cli_codec_round_trips(spec in spec_strategy()) {
            let mut args = vec![
                "--workload".to_string(), spec.workload.clone(),
                "--runtime".to_string(), spec.cfg.runtime.label().to_string(),
                "--threads".to_string(), spec.cfg.threads.to_string(),
                "--scale".to_string(), format!("{}", spec.cfg.scale),
                "--period".to_string(), spec.cfg.period.to_string(),
                "--tick-interval".to_string(), spec.cfg.tick_interval.to_string(),
                "--max-ops".to_string(), spec.cfg.max_ops.to_string(),
                "--fastpath-tlb".to_string(), spec.cfg.fast_path.tlb.to_string(),
                "--fastpath-dir".to_string(), spec.cfg.fast_path.directory.to_string(),
                "--sim-threads".to_string(), spec.cfg.sim_threads.to_string(),
                "--seed".to_string(), spec.seed.to_string(),
            ];
            if spec.cfg.fixed { args.push("--fixed".into()); }
            if spec.cfg.misaligned { args.push("--misaligned".into()); }
            if spec.cfg.huge_pages { args.push("--huge-pages".into()); }
            if spec.trace { args.push("--spec-trace".into()); }
            let mut rebuilt = JobSpec::new("placeholder");
            let mut it = args.into_iter();
            while let Some(arg) = it.next() {
                prop_assert!(
                    rebuilt.apply_cli_arg(&arg, &mut || it.next()).unwrap(),
                    "flag {} not consumed", arg
                );
            }
            prop_assert_eq!(rebuilt, spec);
        }
    }

    #[test]
    fn cli_flags_compose_with_caller_flags() {
        let args = [
            "--workload",
            "lreg",
            "--runtime",
            "tmi-protect",
            "--threads",
            "2",
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--misaligned",
            "--not-ours",
        ];
        let mut spec = JobSpec::new("histogram");
        let mut it = args.iter().map(|s| s.to_string());
        let mut leftover = Vec::new();
        while let Some(arg) = it.next() {
            if !spec.apply_cli_arg(&arg, &mut || it.next()).unwrap() {
                leftover.push(arg);
            }
        }
        assert_eq!(spec.workload, "lreg");
        assert_eq!(spec.cfg.runtime, RuntimeKind::TmiProtect);
        assert_eq!(spec.cfg.threads, 2);
        assert_eq!(spec.cfg.scale, 0.5);
        assert_eq!(spec.seed, 7);
        assert!(spec.cfg.misaligned);
        assert_eq!(leftover, ["--not-ours"]);
    }
}
