//! Rendered reproductions of every table and figure of the paper's
//! evaluation (§4).
//!
//! Each function submits its (workload × runtime) matrix through an
//! [`Executor`] and returns the finished report as a `String` — the
//! experiment binaries are one-line wrappers that print it, and `run_all`
//! renders every section in-process on one shared executor so repeated
//! cells (most prominently the pthreads baselines) are simulated once.
//!
//! Determinism contract: a figure's string depends only on its inputs,
//! never on the executor's pool size — cells are consumed by submission
//! index and every simulation is deterministic. A cell whose simulation
//! panicked renders as `failed` instead of aborting the whole figure,
//! except where the old binaries asserted success (baselines), where the
//! panic message is propagated.

use std::fmt::Write as _;

use crate::exec::{Executor, Experiment, ExperimentSet, JobResult};
use crate::report::{mean, pct, SpeedupTable, Table};
use crate::{RunResult, RuntimeKind};

/// The run behind a non-asserted cell, if it neither panicked nor ran
/// afoul of the harness.
fn completed(jr: &JobResult) -> Option<&RunResult> {
    jr.outcome.as_ref().ok()
}

/// Fig. 3 — the AMBSA word-tearing litmus.
///
/// Unlike the other figures this one drives a two-thread litmus engine
/// directly (no workload suite, so no [`Executor`]): two threads store
/// `0xAB00` and `0x00CD` to the same aligned 2-byte location. Aligned
/// multi-byte store atomicity means the final value is one of the two
/// stored values natively; a guard-less PTSB merges at byte granularity
/// and fabricates `0xABCD`.
pub fn fig3() -> String {
    use tmi::{AppLayout, TmiConfig, TmiRuntime};
    use tmi_baselines::{SheriffConfig, SheriffRuntime};
    use tmi_machine::{VAddr, Width, FRAME_SIZE};
    use tmi_os::MapRequest;
    use tmi_program::{InstrKind, Op, SequenceProgram};
    use tmi_sim::{Engine, EngineConfig, NullRuntime, RuntimeHooks};

    const APP: u64 = 0x10_0000;
    const INTERNAL: u64 = 0x80_0000;

    fn litmus<R: RuntimeHooks>(runtime: R, in_asm_region: bool) -> u64 {
        let mut e = Engine::new(EngineConfig::with_cores(2), runtime);
        let app_obj = e.core_mut().kernel.create_object(16 * FRAME_SIZE);
        let int_obj = e.core_mut().kernel.create_object(4 * FRAME_SIZE);
        let aspace = e.core_mut().kernel.create_aspace();
        e.core_mut()
            .kernel
            .map(
                aspace,
                MapRequest::object(VAddr::new(APP), 16 * FRAME_SIZE, app_obj, 0),
            )
            .unwrap();
        e.core_mut()
            .kernel
            .map(
                aspace,
                MapRequest::object(VAddr::new(INTERNAL), 4 * FRAME_SIZE, int_obj, 0),
            )
            .unwrap();
        e.create_root_process(aspace);

        let x = VAddr::new(APP + 0x100); // 2-byte aligned
        let st = e
            .core_mut()
            .code
            .asm_instr("litmus::store_x", InstrKind::Store, Width::W2);
        for value in [0xAB00u64, 0x00CD] {
            let mut ops = Vec::new();
            if in_asm_region {
                ops.push(Op::AsmEnter);
            }
            ops.push(Op::Store {
                pc: st,
                addr: x,
                width: Width::W2,
                value,
            });
            if in_asm_region {
                ops.push(Op::AsmExit);
            }
            e.add_thread(Box::new(SequenceProgram::new(ops)));
        }
        let r = e.run();
        assert!(r.completed(), "litmus must complete: {:?}", r.halt);
        let pa = e.core_mut().kernel.object_paddr(aspace, x).unwrap();
        e.core_mut().kernel.physmem().read(pa, Width::W2)
    }

    fn layout() -> AppLayout {
        AppLayout {
            app_obj: tmi_os::ObjId(0),
            app_start: VAddr::new(APP),
            app_len: 16 * FRAME_SIZE,
            internal_obj: tmi_os::ObjId(1),
            internal_start: VAddr::new(INTERNAL),
            internal_len: 4 * FRAME_SIZE,
            huge_pages: false,
        }
    }

    let mut table = Table::new(&["execution", "final x", "AMBSA"]);
    let verdict = |x: u64| {
        if x == 0xAB00 || x == 0x00CD {
            "preserved".to_string()
        } else {
            format!("VIOLATED (x = {x:#06x}, written by no thread)")
        }
    };

    let native = litmus(NullRuntime, true);
    table.row(vec![
        "native (pthreads)".into(),
        format!("{native:#06x}"),
        verdict(native),
    ]);

    // Sheriff: whole-heap PTSB, no consistency guard → word tearing.
    let sheriff = litmus(
        SheriffRuntime::new(SheriffConfig::protect(), layout()),
        true,
    );
    table.row(vec![
        "sheriff-protect".into(),
        format!("{sheriff:#06x}"),
        verdict(sheriff),
    ]);

    // TMI with code-centric consistency, PTSB-everywhere armed via the
    // ablation config plus a pre-triggered repair: asm-region stores are
    // routed to shared memory, so AMBSA holds even with the page armed.
    let tmi = litmus(TmiRuntime::new(TmiConfig::protect(), layout()), true);
    table.row(vec![
        "tmi-protect".into(),
        format!("{tmi:#06x}"),
        verdict(tmi),
    ]);

    let mut out = String::new();
    let _ = writeln!(out, "Fig. 3: the AMBSA word-tearing litmus\n");
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nThe merge interleaving (Fig. 2/3): each thread's diff sees only its one\n\
         changed byte, so both bytes land in shared memory: 0xABCD.\n\
         (tmi-sim's twin-store unit tests exercise the same tearing deterministically:\n\
         crates/core/src/twins.rs::word_tearing_is_reproducible_at_byte_granularity)"
    );
    out
}

/// Fig. 4 — runtime and HITM records vs perf sampling period on leveldb.
pub fn fig4(exec: &Executor, scale: f64) -> String {
    const PERIODS: [u64; 6] = [1, 5, 10, 50, 100, 1000];
    let mut set = ExperimentSet::new();
    let jobs: Vec<usize> = PERIODS
        .iter()
        .map(|&p| {
            set.push(
                Experiment::new("leveldb")
                    .runtime(RuntimeKind::TmiDetect)
                    .scale(scale)
                    .period(p),
            )
        })
        .collect();
    let results = set.run_on(exec);

    let mut table = SpeedupTable::new(
        "period",
        &["runtime (ms sim)", "HITM records", "scaled estimate"],
    );
    let mut total_events = 0u64;
    for (&period, &job) in PERIODS.iter().zip(&jobs) {
        let r = results[job].result();
        assert!(r.ok(), "leveldb @ period {period}: {:?}", r.verified);
        total_events = r.perf_events;
        let row = period.to_string();
        table.set(&row, "runtime (ms sim)", format!("{:.2}", r.seconds * 1e3));
        table.count(&row, "HITM records", r.perf_records);
        table.set(
            &row,
            "scaled estimate",
            format!("{:.0}", r.perf_records as f64 * period as f64),
        );
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 4: runtime and HITM records vs perf sampling period (leveldb, scale {scale})\n"
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nTotal HITM events generated by the hardware: {total_events}"
    );
    let _ = writeln!(
        out,
        "(paper: runtime inflates at small periods; record counts fall roughly as 1/period,\n\
         so TMI scales each record by the period to estimate true event counts, §3.1)"
    );
    out
}

/// Fig. 7 — detection overhead across the suite, normalized to pthreads.
pub fn fig7(exec: &Executor, scale: f64) -> String {
    struct Row {
        name: &'static str,
        base: usize,
        sheriff: Option<usize>,
        alloc: usize,
        detect: usize,
    }
    let mut set = ExperimentSet::new();
    let mut rows = Vec::new();
    let mut sheriff_compat = 0usize;
    for name in tmi_workloads::SUITE {
        let spec = tmi_workloads::by_name(name).unwrap().spec();
        let base = set.push(Experiment::new(name).scale(scale));
        let sheriff = spec.sheriff_compatible.then(|| {
            sheriff_compat += 1;
            set.push(
                Experiment::new(name)
                    .runtime(RuntimeKind::SheriffDetect)
                    .scale(scale),
            )
        });
        let alloc = set.push(
            Experiment::new(name)
                .runtime(RuntimeKind::TmiAlloc)
                .scale(scale),
        );
        let detect = set.push(
            Experiment::new(name)
                .runtime(RuntimeKind::TmiDetect)
                .scale(scale),
        );
        rows.push(Row {
            name,
            base,
            sheriff,
            alloc,
            detect,
        });
    }
    let results = set.run_on(exec);

    let mut table = SpeedupTable::new("workload", &["sheriff-detect", "tmi-alloc", "tmi-detect"]);
    let mut detect_over = Vec::new();
    for row in &rows {
        let name = row.name;
        let base = results[row.base].result();
        assert!(base.ok(), "{name} baseline: {:?}", base.verified);
        let norm = |r: &RunResult| r.cycles as f64 / base.cycles as f64;

        match row.sheriff {
            Some(job) => match completed(&results[job]) {
                Some(r) if r.ok() => table.norm(name, "sheriff-detect", norm(r)),
                Some(_) => table.set(name, "sheriff-detect", "broken"),
                None => table.set(name, "sheriff-detect", "failed"),
            },
            None => table.set(name, "sheriff-detect", "x"),
        }
        match completed(&results[row.alloc]) {
            Some(r) => table.norm(name, "tmi-alloc", norm(r)),
            None => table.set(name, "tmi-alloc", "failed"),
        }
        let detect = results[row.detect].result();
        assert!(detect.ok(), "{name} tmi-detect: {:?}", detect.verified);
        detect_over.push(norm(detect));
        table.norm(name, "tmi-detect", norm(detect));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 7: detection overhead, normalized to pthreads (8 threads, scale {scale})\n"
    );
    out.push_str(&table.render());
    out.push('\n');
    let _ = writeln!(
        out,
        "tmi-detect mean overhead: {:+.1}%   (paper: +2% mean, +17% max)",
        (mean(&detect_over) - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "tmi-detect max overhead:  {:+.1}%",
        (detect_over.iter().cloned().fold(f64::MIN, f64::max) - 1.0) * 100.0
    );
    let _ = writeln!(
        out,
        "sheriff-compatible workloads: {sheriff_compat} of {}   (paper: 11 of 35)",
        tmi_workloads::SUITE.len()
    );
    out
}

/// Fig. 8 — peak memory usage, pthreads vs TMI-full.
pub fn fig8(exec: &Executor, scale: f64) -> String {
    let mut set = ExperimentSet::new();
    let jobs: Vec<(&str, usize, usize)> = tmi_workloads::SUITE
        .iter()
        .map(|&name| {
            let base = set.push(Experiment::new(name).scale(scale));
            let tmi = set.push(
                Experiment::new(name)
                    .runtime(RuntimeKind::TmiProtect)
                    .scale(scale),
            );
            (name, base, tmi)
        })
        .collect();
    let results = set.run_on(exec);

    let mut table = SpeedupTable::new("workload", &["pthreads MB", "TMI-full MB", "overhead MB"]);
    let mut ratios = Vec::new();
    for &(name, base_job, tmi_job) in &jobs {
        match (completed(&results[base_job]), completed(&results[tmi_job])) {
            (Some(base), Some(tmi)) => {
                let over = tmi.memory_bytes.saturating_sub(base.memory_bytes);
                if base.memory_bytes > 32 << 20 {
                    ratios.push(tmi.memory_bytes as f64 / base.memory_bytes as f64);
                }
                table.mb(name, "pthreads MB", base.memory_bytes);
                table.mb(name, "TMI-full MB", tmi.memory_bytes);
                table.mb(name, "overhead MB", over);
            }
            _ => {
                table.set(name, "pthreads MB", "failed");
                table.set(name, "TMI-full MB", "failed");
                table.set(name, "overhead MB", "failed");
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 8: peak memory usage in MB (8 threads, scale {scale})\n"
    );
    out.push_str(&table.render());
    out.push('\n');
    let _ = writeln!(
        out,
        "Small-footprint workloads carry a fixed ~90 MB of perf buffers and detector\n\
         structures (paper: \"about 90MB of memory overhead\"); for larger workloads the\n\
         relative overhead is modest (paper: 19% beyond the small-memory cases)."
    );
    if !ratios.is_empty() {
        let gm = crate::report::geomean(&ratios);
        let _ = writeln!(out, "geomean TMI/pthreads over larger workloads: {gm:.2}x");
    }
    out
}

/// Fig. 9 — repair speedups over the buggy pthreads baseline.
pub fn fig9(exec: &Executor, scale: f64) -> String {
    struct Row {
        name: &'static str,
        base: usize,
        manual: usize,
        sheriff: Option<usize>,
        laser: usize,
        tmi: usize,
    }
    let mut set = ExperimentSet::new();
    let mut rows = Vec::new();
    for name in tmi_workloads::REPAIR_SUITE {
        let spec = tmi_workloads::by_name(name).unwrap().spec();
        let cfg = |rt| {
            Experiment::repair(name)
                .runtime(rt)
                .scale(scale)
                .misaligned()
        };
        rows.push(Row {
            name,
            base: set.push(cfg(RuntimeKind::Pthreads)),
            manual: set.push(Experiment::repair(name).scale(scale).fixed()),
            sheriff: spec
                .sheriff_compatible
                .then(|| set.push(cfg(RuntimeKind::SheriffProtect))),
            laser: set.push(cfg(RuntimeKind::Laser)),
            tmi: set.push(cfg(RuntimeKind::TmiProtect)),
        });
    }
    let results = set.run_on(exec);

    let mut table = SpeedupTable::new(
        "workload",
        &["manual", "sheriff-protect", "LASER", "TMI-protect"],
    );
    let mut tmi_speedups = Vec::new();
    let mut manual_fracs = Vec::new();
    for row in &rows {
        let name = row.name;
        let base = results[row.base].result();
        assert!(base.ok(), "{name} baseline failed: {:?}", base.verified);
        let speedup = |r: &RunResult| {
            if r.ok() {
                base.cycles as f64 / r.cycles as f64
            } else {
                f64::NAN
            }
        };

        match (
            completed(&results[row.manual]),
            completed(&results[row.tmi]),
        ) {
            (Some(manual), Some(tmi)) => {
                let s_manual = speedup(manual);
                let s_tmi = speedup(tmi);
                tmi_speedups.push(s_tmi);
                manual_fracs.push(s_tmi / s_manual);
                table.ratio(name, "manual", s_manual);
                table.ratio(name, "TMI-protect", s_tmi);
            }
            (manual, tmi) => {
                match manual {
                    Some(r) => table.ratio(name, "manual", speedup(r)),
                    None => table.set(name, "manual", "failed"),
                }
                match tmi {
                    Some(r) => table.ratio(name, "TMI-protect", speedup(r)),
                    None => table.set(name, "TMI-protect", "failed"),
                }
            }
        }
        match row.sheriff {
            Some(job) => match completed(&results[job]) {
                Some(r) if r.ok() => table.ratio(name, "sheriff-protect", speedup(r)),
                Some(_) => table.set(name, "sheriff-protect", "broken"),
                None => table.set(name, "sheriff-protect", "failed"),
            },
            None => table.set(name, "sheriff-protect", "incompatible"),
        }
        match completed(&results[row.laser]) {
            Some(r) => table.ratio(name, "LASER", speedup(r)),
            None => table.set(name, "LASER", "failed"),
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 9: repair speedups over pthreads (4 threads, scale {scale})\n"
    );
    out.push_str(&table.render());
    out.push('\n');
    let _ = writeln!(
        out,
        "TMI mean speedup: {:.2}x   (paper: 5.2x mean across the repaired programs)",
        mean(&tmi_speedups)
    );
    let _ = writeln!(
        out,
        "TMI fraction of manual speedup: {:.0}%   (paper: 88%)",
        mean(&manual_fracs) * 100.0
    );
    out
}

/// Table 3 — repair characterization: detection latency, T2P cost,
/// commit rate.
pub fn table3(exec: &Executor, scale: f64) -> String {
    let mut set = ExperimentSet::new();
    let jobs: Vec<(&str, usize)> = tmi_workloads::REPAIR_SUITE
        .iter()
        .map(|&name| {
            let job = set.push(
                Experiment::repair(name)
                    .runtime(RuntimeKind::TmiProtect)
                    .scale(scale)
                    .misaligned(),
            );
            (name, job)
        })
        .collect();
    let results = set.run_on(exec);

    let mut table = SpeedupTable::new("app", &["unrepaired (ms sim)", "T2P (us)", "commits/s"]);
    for &(name, job) in &jobs {
        let r = results[job].result();
        assert!(r.ok(), "{name}: {:?}", r.verified);
        let unrepaired_ms = r.converted_at.map(|c| c as f64 / 3.4e6).unwrap_or(f64::NAN);
        table.set(
            name,
            "unrepaired (ms sim)",
            if unrepaired_ms.is_nan() {
                "no T2P (allocator/lock repair)".to_string()
            } else {
                format!("{unrepaired_ms:.2}")
            },
        );
        table.set(name, "T2P (us)", format!("{:.0}", r.t2p_micros()));
        table.set(name, "commits/s", format!("{:.2}", r.commits_per_sec()));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: TMI repair characterization (4 threads, scale {scale})\n"
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\n(paper: detection within 1-2 s of its 1 Hz analysis — here scaled to the\n\
         simulator's tick; T2P under 200 us for all applications; commit rates span\n\
         0.38-34 per second across the suite)"
    );
    out
}

/// Fig. 10 — 4 KiB vs 2 MiB huge pages for the shared app memory.
pub fn fig10(exec: &Executor, scale: f64) -> String {
    let mut set = ExperimentSet::new();
    let jobs: Vec<(&str, usize, usize)> = tmi_workloads::SUITE
        .iter()
        .map(|&name| {
            let small = set.push(
                Experiment::new(name)
                    .runtime(RuntimeKind::TmiDetect)
                    .scale(scale),
            );
            let huge = set.push(
                Experiment::new(name)
                    .runtime(RuntimeKind::TmiDetect)
                    .scale(scale)
                    .huge_pages(),
            );
            (name, small, huge)
        })
        .collect();
    let results = set.run_on(exec);

    let mut table = SpeedupTable::new("workload", &["4KB faults", "2MB faults", "4KB overhead"]);
    let mut overheads = Vec::new();
    for &(name, small_job, huge_job) in &jobs {
        let small = results[small_job].result();
        let huge = results[huge_job].result();
        assert!(small.ok() && huge.ok(), "{name}");
        let over = small.cycles as f64 / huge.cycles as f64 - 1.0;
        overheads.push(over);
        table.count(name, "4KB faults", small.faults);
        table.count(name, "2MB faults", huge.faults);
        table.pct(name, "4KB overhead", over);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 10: 4 KiB vs 2 MiB huge pages for the shared file-backed app memory\n"
    );
    out.push_str(&table.render());
    out.push('\n');
    let _ = writeln!(
        out,
        "mean 4KB overhead vs huge pages: {}   (paper: huge pages a 6% overall win,\n\
         dominated by canneal/reverse/fft/fmm/ocean-ncp/radix class workloads)",
        pct(mean(&overheads))
    );
    out
}

/// Fig. 11 — canneal's atomic element swaps under different runtimes.
pub fn fig11(exec: &Executor, scale: f64) -> String {
    const RUNTIMES: [RuntimeKind; 4] = [
        RuntimeKind::Pthreads,
        RuntimeKind::TmiProtect,
        RuntimeKind::SheriffProtect,
        RuntimeKind::SheriffDetect,
    ];
    let mut set = ExperimentSet::new();
    let jobs: Vec<usize> = RUNTIMES
        .iter()
        .map(|&rt| {
            set.push(
                Experiment::repair("canneal")
                    .runtime(rt)
                    .scale(scale)
                    .max_ops(30_000_000), // bound broken runs
            )
        })
        .collect();
    let results = set.run_on(exec);

    let mut table = Table::new(&["runtime", "completed", "result"]);
    for (&rt, &job) in RUNTIMES.iter().zip(&jobs) {
        match completed(&results[job]) {
            Some(r) => table.row(vec![
                rt.label().to_string(),
                format!("{:?}", r.halt),
                match &r.verified {
                    Ok(()) => "correct (all elements present exactly once)".to_string(),
                    Err(e) => format!("CORRUPTED: {e}"),
                },
            ]),
            None => table.row(vec![
                rt.label().to_string(),
                "failed".to_string(),
                "failed".to_string(),
            ]),
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 11: canneal's atomic swaps under different runtimes (scale {scale})\n"
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\n(paper: Sheriff corrupts canneal because its PTSB has no consistency guard;\n\
         TMI routes the atomic/assembly swap code to shared memory and stays correct)"
    );
    out
}

/// Fig. 12 — cholesky's volatile-flag synchronization under different
/// runtimes.
pub fn fig12(exec: &Executor) -> String {
    const RUNTIMES: [RuntimeKind; 5] = [
        RuntimeKind::Pthreads,
        RuntimeKind::TmiDetect,
        RuntimeKind::TmiProtect,
        RuntimeKind::SheriffProtect,
        RuntimeKind::SheriffDetect,
    ];
    let mut set = ExperimentSet::new();
    let jobs: Vec<usize> = RUNTIMES
        .iter()
        .map(|&rt| {
            set.push(
                Experiment::repair("cholesky")
                    .runtime(rt)
                    .max_ops(8_000_000), // bound the hang
            )
        })
        .collect();
    let results = set.run_on(exec);

    let mut table = Table::new(&["runtime", "outcome", "flag visible"]);
    for (&rt, &job) in RUNTIMES.iter().zip(&jobs) {
        match completed(&results[job]) {
            Some(r) => {
                let outcome = match r.halt {
                    tmi_sim::Halt::Completed => "completed".to_string(),
                    tmi_sim::Halt::Hang => "HANGS (stale private flag)".to_string(),
                    tmi_sim::Halt::Fault(ref e) => format!("fault: {e}"),
                };
                table.row(vec![
                    rt.label().to_string(),
                    outcome,
                    match &r.verified {
                        Ok(()) => "yes".to_string(),
                        Err(e) => e.clone(),
                    },
                ]);
            }
            None => table.row(vec![
                rt.label().to_string(),
                "failed".to_string(),
                "failed".to_string(),
            ]),
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 12: cholesky's volatile-flag synchronization under different runtimes\n"
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\n(paper: Sheriff hangs on cholesky; TMI performs detection on all of these\n\
         benchmarks without causing incorrect results, §4.5)"
    );
    out
}

/// §4.3 ablation — targeted page protection vs PTSB-everywhere.
pub fn ablate_ptsb_everywhere(exec: &Executor, scale: f64) -> String {
    const WORKLOADS: [&str; 5] = [
        "histogram",
        "histogramfs",
        "lreg",
        "stringmatch",
        "shptr-relaxed",
    ];
    let mut set = ExperimentSet::new();
    let jobs: Vec<(&str, usize, usize, usize)> = WORKLOADS
        .iter()
        .map(|&name| {
            let cfg = |rt| {
                Experiment::repair(name)
                    .runtime(rt)
                    .scale(scale)
                    .misaligned()
            };
            (
                name,
                set.push(cfg(RuntimeKind::Pthreads)),
                set.push(cfg(RuntimeKind::TmiProtect)),
                set.push(cfg(RuntimeKind::TmiPtsbEverywhere)),
            )
        })
        .collect();
    let results = set.run_on(exec);

    let mut table = SpeedupTable::new("workload", &["TMI (targeted)", "PTSB-everywhere"]);
    for &(name, base_job, targeted_job, everywhere_job) in &jobs {
        let base = results[base_job].result();
        let targeted = results[targeted_job].result();
        let everywhere = results[everywhere_job].result();
        assert!(base.ok() && targeted.ok() && everywhere.ok(), "{name}");
        table.ratio(
            name,
            "TMI (targeted)",
            base.cycles as f64 / targeted.cycles as f64,
        );
        table.ratio(
            name,
            "PTSB-everywhere",
            base.cycles as f64 / everywhere.cycles as f64,
        );
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "PTSB-everywhere ablation: speedup over pthreads (4 threads, scale {scale})\n"
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\n(paper: indiscriminate PTSB use turns histogram's 1.29x speedup into a 0.74x\n\
         slowdown and halves histogramfs's benefit — motivating targeted repair, §4.3)"
    );
    out
}

/// Extension sweep — false-sharing penalty and repair quality vs thread
/// count.
pub fn sweep_threads(exec: &Executor, name: &str, scale: f64) -> String {
    const THREADS: [usize; 4] = [2, 4, 8, 16];
    let mut set = ExperimentSet::new();
    let jobs: Vec<(usize, usize, usize, usize)> = THREADS
        .iter()
        .map(|&threads| {
            let cfg = |rt| {
                Experiment::repair(name)
                    .runtime(rt)
                    .scale(scale)
                    .misaligned()
                    .threads(threads)
            };
            (
                threads,
                set.push(cfg(RuntimeKind::Pthreads)),
                set.push(
                    Experiment::repair(name)
                        .scale(scale)
                        .fixed()
                        .threads(threads),
                ),
                set.push(cfg(RuntimeKind::TmiProtect)),
            )
        })
        .collect();
    let results = set.run_on(exec);

    let mut table = SpeedupTable::new(
        "threads",
        &[
            "FS slowdown (buggy/fixed)",
            "TMI speedup",
            "TMI % of manual",
        ],
    );
    for &(threads, base_job, fixed_job, tmi_job) in &jobs {
        let base = results[base_job].result();
        let fixed = results[fixed_job].result();
        let tmi = results[tmi_job].result();
        assert!(base.ok() && fixed.ok() && tmi.ok(), "{name} @ {threads}");
        let manual = base.cycles as f64 / fixed.cycles as f64;
        let s_tmi = base.cycles as f64 / tmi.cycles as f64;
        let row = threads.to_string();
        table.ratio(&row, "FS slowdown (buggy/fixed)", manual);
        table.ratio(&row, "TMI speedup", s_tmi);
        table.set(
            &row,
            "TMI % of manual",
            format!("{:.0}%", 100.0 * s_tmi / manual),
        );
    }

    let mut out = String::new();
    let _ = writeln!(out, "Thread-count sweep on {name} (scale {scale})\n");
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\n(extension: more sharers per line → more invalidation traffic per write →"
    );
    let _ = writeln!(
        out,
        " larger false-sharing penalty; TMI's repair tracks the manual fix throughout)"
    );
    out
}

/// Table 1 — the requirements matrix, every cell measured.
pub fn table1(exec: &Executor, scale: f64) -> String {
    const QUIET: [&str; 5] = [
        "blackscholes",
        "swaptions",
        "matrix",
        "pca",
        "streamcluster",
    ];
    const DETECTORS: [RuntimeKind; 4] = [
        RuntimeKind::SheriffDetect,
        RuntimeKind::Plastic,
        RuntimeKind::Laser,
        RuntimeKind::TmiDetect,
    ];
    const PROTECTORS: [RuntimeKind; 4] = [
        RuntimeKind::SheriffProtect,
        RuntimeKind::Plastic,
        RuntimeKind::Laser,
        RuntimeKind::TmiProtect,
    ];

    let mut set = ExperimentSet::new();

    // compatible (suite coverage): every workload the system claims to
    // run, bounded against livelock.
    let compat_jobs: Vec<Vec<usize>> = DETECTORS
        .iter()
        .map(|&rt| {
            tmi_workloads::SUITE
                .iter()
                .filter(|name| {
                    let spec = tmi_workloads::by_name(name).unwrap().spec();
                    spec.sheriff_compatible
                        || !matches!(rt, RuntimeKind::SheriffDetect | RuntimeKind::SheriffProtect)
                })
                .map(|&name| {
                    set.push(
                        Experiment::new(name)
                            .runtime(rt)
                            .scale(scale)
                            .max_ops(40_000_000),
                    )
                })
                .collect()
        })
        .collect();

    // memory consistency: canneal (atomics) + cholesky (racy flag).
    let cons_jobs: Vec<(usize, usize)> = PROTECTORS
        .iter()
        .map(|&rt| {
            (
                set.push(
                    Experiment::repair("canneal")
                        .runtime(rt)
                        .scale(0.5)
                        .max_ops(20_000_000),
                ),
                set.push(
                    Experiment::repair("cholesky")
                        .runtime(rt)
                        .max_ops(6_000_000),
                ),
            )
        })
        .collect();

    // overhead w/o contention: fixed stop-the-world costs amortize over
    // realistic run lengths, so measure at full benchmark scale.
    let oscale = scale.max(2.0);
    let over_jobs: Vec<Vec<(usize, usize)>> = DETECTORS
        .iter()
        .map(|&rt| {
            QUIET
                .iter()
                .map(|&name| {
                    (
                        set.push(Experiment::new(name).scale(oscale)),
                        set.push(Experiment::new(name).runtime(rt).scale(oscale)),
                    )
                })
                .collect()
        })
        .collect();

    // % of manual speedup: the fig9 metric, at fig9's scale.
    let fscale = scale.max(2.0);
    enum FracJob {
        Incompatible,
        Runs {
            base: usize,
            manual: usize,
            r: usize,
        },
    }
    let frac_jobs: Vec<Vec<FracJob>> = PROTECTORS
        .iter()
        .map(|&rt| {
            tmi_workloads::REPAIR_SUITE
                .iter()
                .map(|&name| {
                    let spec = tmi_workloads::by_name(name).unwrap().spec();
                    if rt == RuntimeKind::SheriffProtect && !spec.sheriff_compatible {
                        return FracJob::Incompatible;
                    }
                    let cfg = |k| {
                        Experiment::repair(name)
                            .runtime(k)
                            .scale(fscale)
                            .misaligned()
                    };
                    FracJob::Runs {
                        base: set.push(cfg(RuntimeKind::Pthreads)),
                        manual: set.push(Experiment::repair(name).scale(fscale).fixed()),
                        r: set.push(cfg(rt).max_ops(60_000_000)),
                    }
                })
                .collect()
        })
        .collect();

    let results = set.run_on(exec);
    let n = tmi_workloads::SUITE.len();

    let mut table = Table::new(&["requirement", "Sheriff", "Plastic", "LASER", "TMI"]);

    table.row({
        let mut v = vec!["compatible (suite coverage)".to_string()];
        v.extend(compat_jobs.iter().map(|jobs| {
            let compat = jobs.iter().filter(|&&j| results[j].ok()).count();
            format!("{compat}/{n}")
        }));
        v
    });

    table.row({
        let mut v = vec!["memory consistency preserved".to_string()];
        v.extend(cons_jobs.iter().map(|&(canneal, cholesky)| {
            if results[canneal].ok() && results[cholesky].ok() {
                "yes".to_string()
            } else {
                "NO".to_string()
            }
        }));
        v
    });

    table.row({
        let mut v = vec!["overhead w/o contention".to_string()];
        v.extend(over_jobs.iter().map(|jobs| {
            let mut overs = Vec::new();
            for &(base_job, r_job) in jobs {
                if let (Some(base), Some(r)) =
                    (completed(&results[base_job]), completed(&results[r_job]))
                {
                    if r.ok() && base.ok() {
                        overs.push(r.cycles as f64 / base.cycles as f64 - 1.0);
                    }
                }
            }
            format!("{:+.0}%", mean(&overs) * 100.0)
        }));
        v
    });

    table.row({
        let mut v = vec!["% of manual speedup".to_string()];
        v.extend(frac_jobs.iter().map(|jobs| {
            let mut fracs = Vec::new();
            let mut skipped = 0usize;
            for job in jobs {
                match job {
                    FracJob::Incompatible => skipped += 1,
                    FracJob::Runs { base, manual, r } => match completed(&results[*r]) {
                        Some(r) if r.ok() => {
                            let base = results[*base].result();
                            let manual = results[*manual].result();
                            let manual_speedup = base.cycles as f64 / manual.cycles as f64;
                            let speedup = base.cycles as f64 / r.cycles as f64;
                            fracs.push(speedup / manual_speedup);
                        }
                        _ => skipped += 1,
                    },
                }
            }
            let f = mean(&fracs);
            if skipped > 0 {
                format!("{:.0}% ({skipped} n/a)", f * 100.0)
            } else {
                format!("{:.0}%", f * 100.0)
            }
        }));
        v
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: requirements matrix, measured from this reproduction (scale {scale})\n"
    );
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\n(paper: Sheriff 27% overhead / 92% of manual / consistency broken;\n\
         Plastic 6% / ~30%; LASER 2% / 24%; TMI 2% / 88%)"
    );
    out
}
