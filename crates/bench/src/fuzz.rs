//! The differential fuzz campaign driver (`fuzz_consistency` binary).
//!
//! Checks a contiguous seed range of [`tmi_oracle`] litmus programs —
//! each one executed through the full TMI repair path and replayed
//! through the sequentially consistent oracle — fanning the seeds out
//! over the deterministic [`crate::exec::pool_map`] pool. Results are
//! aggregated in seed order, so the campaign report is byte-identical
//! for any worker count.
//!
//! Two campaign modes mirror the paper's evaluation:
//!
//! * **code-centric ON** (default) — the shipping configuration; every
//!   seed must check clean (§3.4 correctness argument).
//! * **`--ablate-code-centric`** — atomics and asm regions lose their
//!   shared-object routing, so the campaign *must* find divergences
//!   (stale atomic reads, lost RMW updates, torn words — the Figs. 11–12
//!   failure modes). A clean ablated campaign means the fuzzer lost its
//!   teeth.
//!
//! `--transistency` switches both modes to VM-op litmus programs
//! (`mprotect`, COW breaks, T2P conversions, twin commits, TLB
//! shootdowns interleaved with loads and stores), `--enumerate N` adds
//! the bounded DPOR-lite sweep over deterministic VM-op placements, and
//! `--ablate-shootdown` is the transistency counterpart of the
//! code-centric ablation: precise per-PTE shootdowns stop landing, stale
//! translations survive, and the campaign must find divergences.

use tmi::GovernorState;
use tmi_faultpoint::{FaultPoint, FaultStats};
use tmi_oracle::{
    check_seed, check_transistency_seed, check_transistency_variants, CheckConfig, CheckReport,
    Coverage,
};

use crate::exec::pool_map;
use crate::harness::{RunConfig, RuntimeKind};
use crate::spec::JobSpec;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of consecutive seeds to check.
    pub seeds: u64,
    /// First seed of the range.
    pub start_seed: u64,
    /// Disable code-centric consistency in the repaired run (the
    /// divergence-expecting ablation).
    pub ablate_code_centric: bool,
    /// Worker threads (`None` = [`std::thread::available_parallelism`]).
    pub workers: Option<usize>,
    /// Full reports kept for at most this many divergent seeds.
    pub max_reports: usize,
    /// Base fault seed: run every checked seed under a seeded fault
    /// schedule (per-program seed derived via
    /// [`tmi_oracle::derive_fault_seed`]). Repair may retry, degrade,
    /// abort or revert — the campaign must still find zero divergences.
    pub faults: Option<u64>,
    /// Transistency mode: check each seed's *VM-op* litmus program
    /// ([`tmi_oracle::Litmus::generate_vm`] — `mprotect`, COW breaks, T2P
    /// conversions, twin commits, TLB shootdowns interleaved with the
    /// consistency vocabulary) instead of the plain one.
    pub transistency: bool,
    /// Bounded schedule enumeration (DPOR-lite): additionally check up to
    /// this many deterministic VM-op *placements* of each seed's small
    /// base program ([`tmi_oracle::Litmus::vm_variants`]). `0` disables;
    /// requires [`FuzzConfig::transistency`].
    pub enumerate: u64,
    /// Disable precise per-PTE TLB shootdowns in the repaired runs — the
    /// transistency ablation that *must* diverge (stale translations
    /// serve dead frames and bypass COW tracking). Requires
    /// [`FuzzConfig::transistency`]; not representable as a [`JobSpec`],
    /// so ablated campaigns check directly rather than via the service
    /// job vocabulary.
    pub ablate_shootdown: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seeds: 1000,
            start_seed: 0,
            ablate_code_centric: false,
            workers: None,
            max_reports: 5,
            faults: None,
            transistency: false,
            enumerate: 0,
            ablate_shootdown: false,
        }
    }
}

/// Fault-campaign aggregates across every checked seed.
#[derive(Clone, Debug, Default)]
pub struct CampaignFaults {
    /// Per-point roll/fire counts summed over all runs.
    pub stats: FaultStats,
    /// Governor retries of transiently-failed operations.
    pub retries: u64,
    /// Operations that succeeded after at least one retry.
    pub recoveries: u64,
    /// Full rollbacks after persistent conversion failure.
    pub rollbacks: u64,
    /// Pages degraded to shared mode after persistent per-page failure.
    pub degraded: u64,
    /// Efficacy-monitor reverts.
    pub reverts: u64,
    /// Runs ending with the governor in `Aborted` state.
    pub aborted_runs: u64,
    /// Runs ending with the governor in `Reverted` state.
    pub reverted_runs: u64,
}

impl CampaignFaults {
    /// True if the campaign exercised the whole governor: every
    /// simulator-level fault point fired at least once, and retry,
    /// rollback and efficacy-revert each happened in at least one run.
    /// (The service points — worker kill, queue full, cache drop — belong
    /// to `tmi-service`'s own chaos campaign, not the litmus matrix.)
    pub fn coverage_ok(&self) -> bool {
        FaultPoint::SIM.iter().all(|&p| self.stats.get(p).fired > 0)
            && self.retries > 0
            && self.recoveries > 0
            && self.rollbacks > 0
            && self.reverts > 0
    }

    /// Simulator fault points that never fired.
    fn unfired(&self) -> Vec<&'static str> {
        FaultPoint::SIM
            .iter()
            .filter(|&&p| self.stats.get(p).fired == 0)
            .map(|p| p.name())
            .collect()
    }
}

/// Aggregated campaign outcome.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The configuration that ran.
    pub cfg: FuzzConfig,
    /// Programs checked: one per seed, plus every enumerated VM-op
    /// variant in `--enumerate` mode.
    pub checked: u64,
    /// Seeds with at least one divergence, in seed order.
    pub divergent_seeds: Vec<u64>,
    /// Total trace steps executed across all repaired runs.
    pub total_steps: u64,
    /// Static coverage summed over every checked program.
    pub coverage: Coverage,
    /// Full reports for the first [`FuzzConfig::max_reports`] divergent
    /// seeds.
    pub reports: Vec<CheckReport>,
    /// Fault-campaign aggregates (present iff [`FuzzConfig::faults`]).
    pub faults: Option<CampaignFaults>,
}

impl CampaignResult {
    /// True if the campaign outcome matches its mode: clean under the
    /// shipping configuration, divergent under either ablation.
    pub fn ok(&self) -> bool {
        if self.cfg.ablate_code_centric || self.cfg.ablate_shootdown {
            !self.divergent_seeds.is_empty()
        } else {
            self.divergent_seeds.is_empty()
        }
    }

    /// Renders the campaign summary (plus full reports for the first
    /// divergent seeds).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut mode = String::from(if self.cfg.ablate_code_centric {
            "code-centric OFF (ablation)"
        } else {
            "code-centric on"
        });
        if self.cfg.ablate_shootdown {
            mode.push_str(", TLB shootdowns OFF (ablation)");
        }
        let kind = if self.cfg.transistency {
            "transistency seeds"
        } else {
            "seeds"
        };
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fuzz_consistency: {} {kind} [{}, {}) under {mode}",
            self.cfg.seeds,
            self.cfg.start_seed,
            self.cfg.start_seed + self.cfg.seeds
        );
        if self.cfg.enumerate > 0 {
            let _ = writeln!(
                s,
                "  schedule enumeration: up to {} VM-op placements per seed; \
                 {} programs checked",
                self.cfg.enumerate, self.checked
            );
        }
        let _ = writeln!(
            s,
            "  trace steps: {} total; coverage: {}",
            self.total_steps, self.coverage
        );
        let _ = writeln!(
            s,
            "  divergent seeds: {} / {}",
            self.divergent_seeds.len(),
            self.checked
        );
        if !self.divergent_seeds.is_empty() {
            let shown: Vec<String> = self
                .divergent_seeds
                .iter()
                .take(32)
                .map(|s| s.to_string())
                .collect();
            let _ = writeln!(
                s,
                "    [{}{}]",
                shown.join(", "),
                if self.divergent_seeds.len() > 32 {
                    ", ..."
                } else {
                    ""
                }
            );
        }
        if let (Some(f), Some(base)) = (&self.faults, self.cfg.faults) {
            let _ = writeln!(s, "  fault campaign (base seed {base}): {}", f.stats);
            let _ = writeln!(
                s,
                "    governor: retries={} recoveries={} rollbacks={} degraded={} \
                 reverts={} aborted-runs={} reverted-runs={}",
                f.retries,
                f.recoveries,
                f.rollbacks,
                f.degraded,
                f.reverts,
                f.aborted_runs,
                f.reverted_runs
            );
            let _ = writeln!(
                s,
                "    fault coverage: {}",
                if f.coverage_ok() {
                    "OK (every point fired; retry, rollback and efficacy-revert all exercised)"
                        .to_string()
                } else {
                    format!(
                        "INCOMPLETE (unfired points: [{}]; retries={} recoveries={} \
                         rollbacks={} reverts={})",
                        f.unfired().join(", "),
                        f.retries,
                        f.recoveries,
                        f.rollbacks,
                        f.reverts
                    )
                }
            );
        }
        for r in &self.reports {
            let _ = writeln!(s, "---");
            s.push_str(&r.render());
        }
        let ablated = self.cfg.ablate_code_centric || self.cfg.ablate_shootdown;
        let verdict = if self.ok() {
            if ablated {
                "OK (ablation diverges as the paper predicts)"
            } else {
                "OK (repaired runs are indistinguishable from the oracle)"
            }
        } else if ablated {
            "FAIL (ablated campaign found no divergence — fuzzer has no teeth)"
        } else {
            "FAIL (repair path diverged from the sequential oracle)"
        };
        let _ = writeln!(s, "verdict: {verdict}");
        s
    }
}

/// Checks one litmus job through the differential oracle — the litmus
/// half of the shared-[`JobSpec`] vocabulary. The spec's workload must be
/// `litmus:<seed>`; its runtime selects the campaign mode
/// ([`RuntimeKind::TmiNoCodeCentric`] = the code-centric ablation, any
/// other TMI runtime = the shipping configuration); its fault-schedule
/// seed, if nonzero, is the campaign base seed mixed per program via
/// `tmi_oracle::derive_fault_seed`. This is the entry point `tmi-service`
/// routes litmus jobs through, so a job submitted over the wire checks
/// exactly like a campaign seed.
pub fn check_spec(spec: &JobSpec) -> Result<CheckReport, String> {
    let check = CheckConfig {
        code_centric: spec.cfg.runtime != RuntimeKind::TmiNoCodeCentric,
        faults: (spec.seed != 0).then_some(spec.seed),
        ..CheckConfig::default()
    };
    if let Some(seed) = spec.litmus_vm_seed() {
        Ok(check_transistency_seed(seed, &check))
    } else if let Some(seed) = spec.litmus_seed() {
        Ok(check_seed(seed, &check))
    } else {
        Err(format!("not a litmus job: {:?}", spec.workload))
    }
}

/// The [`JobSpec`] for one campaign seed under the campaign config.
/// (The shootdown ablation is deliberately *not* representable here — a
/// service client cannot request a broken kernel — so ablated campaigns
/// bypass the spec and call the checker directly.)
fn campaign_spec(cfg: &FuzzConfig, seed: u64) -> JobSpec {
    let runtime = if cfg.ablate_code_centric {
        RuntimeKind::TmiNoCodeCentric
    } else {
        RuntimeKind::TmiProtect
    };
    let base = if cfg.transistency {
        JobSpec::litmus_vm(seed)
    } else {
        JobSpec::litmus(seed)
    };
    JobSpec {
        cfg: RunConfig::repair(runtime),
        seed: cfg.faults.unwrap_or(0),
        ..base
    }
}

/// Runs the campaign: lowers every seed in the range to a litmus
/// [`JobSpec`], checks them in parallel via [`check_spec`], and
/// aggregates in seed order.
pub fn run_campaign(cfg: &FuzzConfig) -> CampaignResult {
    let workers = cfg.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let n = usize::try_from(cfg.seeds).expect("seed count fits usize");
    let results = pool_map(workers, n, |i| {
        let seed = cfg.start_seed + i as u64;
        let mut reports = Vec::new();
        if cfg.ablate_shootdown {
            // Not representable as a JobSpec (see `campaign_spec`): check
            // directly with the broken-kernel configuration.
            let check = CheckConfig {
                code_centric: !cfg.ablate_code_centric,
                ablate_shootdown: true,
                faults: cfg.faults,
                ..CheckConfig::default()
            };
            reports.push(check_transistency_seed(seed, &check));
            if cfg.enumerate > 0 {
                reports.extend(check_transistency_variants(
                    seed,
                    cfg.enumerate as usize,
                    &check,
                ));
            }
        } else {
            let spec = campaign_spec(cfg, seed);
            reports.push(check_spec(&spec).expect("campaign specs are litmus jobs"));
            if cfg.enumerate > 0 {
                let check = CheckConfig {
                    code_centric: !cfg.ablate_code_centric,
                    faults: cfg.faults,
                    ..CheckConfig::default()
                };
                reports.extend(check_transistency_variants(
                    seed,
                    cfg.enumerate as usize,
                    &check,
                ));
            }
        }
        reports
    });

    let mut out = CampaignResult {
        cfg: cfg.clone(),
        checked: 0,
        divergent_seeds: Vec::new(),
        total_steps: 0,
        coverage: Coverage::default(),
        reports: Vec::new(),
        faults: cfg.faults.map(|_| CampaignFaults::default()),
    };
    for r in results.into_iter().flatten() {
        out.checked += 1;
        out.total_steps += r.steps as u64;
        out.coverage.add(&r.coverage);
        if let (Some(agg), Some(fs)) = (&mut out.faults, &r.faults) {
            agg.stats.add(&fs.stats);
            agg.retries += fs.governor.retries;
            agg.recoveries += fs.governor.transient_recoveries;
            agg.rollbacks += fs.governor.rollbacks;
            agg.degraded += fs.governor.pages_degraded;
            agg.reverts += fs.governor.efficacy_reverts;
            match fs.state {
                GovernorState::Aborted => agg.aborted_runs += 1,
                GovernorState::Reverted => agg.reverted_runs += 1,
                _ => {}
            }
        }
        if !r.clean() {
            // Enumerated variants share their seed; record each seed once.
            if out.divergent_seeds.last() != Some(&r.seed) {
                out.divergent_seeds.push(r.seed);
            }
            if out.reports.len() < cfg.max_reports {
                out.reports.push(r);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_clean_campaign_passes() {
        let cfg = FuzzConfig {
            seeds: 8,
            start_seed: 0,
            workers: Some(2),
            ..FuzzConfig::default()
        };
        let r = run_campaign(&cfg);
        assert!(r.ok(), "{}", r.render());
        assert_eq!(r.checked, 8);
        assert!(r.total_steps > 0);
    }

    #[test]
    fn campaign_report_is_worker_count_invariant() {
        let base = FuzzConfig {
            seeds: 6,
            start_seed: 100,
            ablate_code_centric: true,
            ..FuzzConfig::default()
        };
        let serial = run_campaign(&FuzzConfig {
            workers: Some(1),
            ..base.clone()
        });
        let parallel = run_campaign(&FuzzConfig {
            workers: Some(4),
            ..base
        });
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn fault_campaign_stays_clean_and_aggregates_governor_stats() {
        let cfg = FuzzConfig {
            seeds: 12,
            start_seed: 0,
            workers: Some(4),
            faults: Some(7),
            ..FuzzConfig::default()
        };
        let r = run_campaign(&cfg);
        assert!(r.ok(), "fault campaign must stay clean:\n{}", r.render());
        let f = r.faults.as_ref().expect("fault aggregates present");
        let rolls: u64 = FaultPoint::ALL.iter().map(|&p| f.stats.get(p).rolls).sum();
        assert!(rolls > 0, "fault points must have been rolled");
        assert!(r.render().contains("fault campaign (base seed 7)"));
        assert!(r.render().contains("fault coverage:"));
    }

    #[test]
    fn check_spec_matches_direct_check_seed() {
        let spec = campaign_spec(&FuzzConfig::default(), 3);
        let via_spec = check_spec(&spec).unwrap();
        let direct = check_seed(3, &CheckConfig::default());
        assert_eq!(via_spec.render(), direct.render());
        assert!(check_spec(&JobSpec::new("histogram")).is_err());
    }

    #[test]
    fn transistency_campaign_checks_clean_and_enumerates() {
        let cfg = FuzzConfig {
            seeds: 4,
            start_seed: 0,
            transistency: true,
            enumerate: 4,
            workers: Some(2),
            ..FuzzConfig::default()
        };
        let r = run_campaign(&cfg);
        assert!(
            r.ok(),
            "transistency campaign must stay clean:\n{}",
            r.render()
        );
        assert!(
            r.checked > cfg.seeds,
            "enumeration must add variant programs ({} checked)",
            r.checked
        );
        assert!(r.coverage.vm_ops() > 0, "campaign must execute VM ops");
        assert!(r.render().contains("transistency seeds"));
        assert!(r.render().contains("schedule enumeration"));
    }

    #[test]
    fn shootdown_ablated_campaign_finds_divergences() {
        let cfg = FuzzConfig {
            seeds: 24,
            start_seed: 0,
            transistency: true,
            ablate_shootdown: true,
            workers: Some(4),
            ..FuzzConfig::default()
        };
        let r = run_campaign(&cfg);
        assert!(r.ok(), "shootdown ablation must diverge:\n{}", r.render());
        assert!(!r.reports.is_empty());
        assert!(r.render().contains("TLB shootdowns OFF"));
        let report = &r.reports[0];
        assert!(report.render().contains("--ablate-shootdown"));
    }

    #[test]
    fn transistency_spec_routes_through_check_spec() {
        let cfg = FuzzConfig {
            transistency: true,
            ..FuzzConfig::default()
        };
        let spec = campaign_spec(&cfg, 3);
        assert_eq!(spec.litmus_vm_seed(), Some(3));
        let via_spec = check_spec(&spec).unwrap();
        let direct = check_transistency_seed(3, &CheckConfig::default());
        assert_eq!(via_spec.render(), direct.render());
    }

    #[test]
    fn ablated_campaign_finds_divergences() {
        let cfg = FuzzConfig {
            seeds: 24,
            start_seed: 0,
            ablate_code_centric: true,
            workers: Some(4),
            ..FuzzConfig::default()
        };
        let r = run_campaign(&cfg);
        assert!(r.ok(), "ablation must diverge:\n{}", r.render());
        assert!(!r.reports.is_empty());
    }
}
