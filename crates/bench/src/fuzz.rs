//! The differential fuzz campaign driver (`fuzz_consistency` binary).
//!
//! Checks a contiguous seed range of [`tmi_oracle`] litmus programs —
//! each one executed through the full TMI repair path and replayed
//! through the sequentially consistent oracle — fanning the seeds out
//! over the deterministic [`crate::exec::pool_map`] pool. Results are
//! aggregated in seed order, so the campaign report is byte-identical
//! for any worker count.
//!
//! Two campaign modes mirror the paper's evaluation:
//!
//! * **code-centric ON** (default) — the shipping configuration; every
//!   seed must check clean (§3.4 correctness argument).
//! * **`--ablate-code-centric`** — atomics and asm regions lose their
//!   shared-object routing, so the campaign *must* find divergences
//!   (stale atomic reads, lost RMW updates, torn words — the Figs. 11–12
//!   failure modes). A clean ablated campaign means the fuzzer lost its
//!   teeth.

use tmi_oracle::{check_seed, CheckConfig, CheckReport, Coverage};

use crate::exec::pool_map;

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of consecutive seeds to check.
    pub seeds: u64,
    /// First seed of the range.
    pub start_seed: u64,
    /// Disable code-centric consistency in the repaired run (the
    /// divergence-expecting ablation).
    pub ablate_code_centric: bool,
    /// Worker threads (`None` = [`std::thread::available_parallelism`]).
    pub workers: Option<usize>,
    /// Full reports kept for at most this many divergent seeds.
    pub max_reports: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seeds: 1000,
            start_seed: 0,
            ablate_code_centric: false,
            workers: None,
            max_reports: 5,
        }
    }
}

/// Aggregated campaign outcome.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The configuration that ran.
    pub cfg: FuzzConfig,
    /// Seeds checked.
    pub checked: u64,
    /// Seeds with at least one divergence, in seed order.
    pub divergent_seeds: Vec<u64>,
    /// Total trace steps executed across all repaired runs.
    pub total_steps: u64,
    /// Static coverage summed over every checked program.
    pub coverage: Coverage,
    /// Full reports for the first [`FuzzConfig::max_reports`] divergent
    /// seeds.
    pub reports: Vec<CheckReport>,
}

impl CampaignResult {
    /// True if the campaign outcome matches its mode: clean when
    /// code-centric is on, divergent when ablated.
    pub fn ok(&self) -> bool {
        if self.cfg.ablate_code_centric {
            !self.divergent_seeds.is_empty()
        } else {
            self.divergent_seeds.is_empty()
        }
    }

    /// Renders the campaign summary (plus full reports for the first
    /// divergent seeds).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mode = if self.cfg.ablate_code_centric {
            "code-centric OFF (ablation)"
        } else {
            "code-centric on"
        };
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fuzz_consistency: {} seeds [{}, {}) under {mode}",
            self.checked,
            self.cfg.start_seed,
            self.cfg.start_seed + self.cfg.seeds
        );
        let _ = writeln!(
            s,
            "  trace steps: {} total; coverage: {}",
            self.total_steps, self.coverage
        );
        let _ = writeln!(
            s,
            "  divergent seeds: {} / {}",
            self.divergent_seeds.len(),
            self.checked
        );
        if !self.divergent_seeds.is_empty() {
            let shown: Vec<String> = self
                .divergent_seeds
                .iter()
                .take(32)
                .map(|s| s.to_string())
                .collect();
            let _ = writeln!(
                s,
                "    [{}{}]",
                shown.join(", "),
                if self.divergent_seeds.len() > 32 {
                    ", ..."
                } else {
                    ""
                }
            );
        }
        for r in &self.reports {
            let _ = writeln!(s, "---");
            s.push_str(&r.render());
        }
        let verdict = if self.ok() {
            if self.cfg.ablate_code_centric {
                "OK (ablation diverges as the paper predicts)"
            } else {
                "OK (repaired runs are indistinguishable from the oracle)"
            }
        } else if self.cfg.ablate_code_centric {
            "FAIL (ablated campaign found no divergence — fuzzer has no teeth)"
        } else {
            "FAIL (repair path diverged from the sequential oracle)"
        };
        let _ = writeln!(s, "verdict: {verdict}");
        s
    }
}

/// Runs the campaign: checks every seed in the range in parallel and
/// aggregates in seed order.
pub fn run_campaign(cfg: &FuzzConfig) -> CampaignResult {
    let check = CheckConfig {
        code_centric: !cfg.ablate_code_centric,
        ..CheckConfig::default()
    };
    let workers = cfg.workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let n = usize::try_from(cfg.seeds).expect("seed count fits usize");
    let results = pool_map(workers, n, |i| {
        check_seed(cfg.start_seed + i as u64, &check)
    });

    let mut out = CampaignResult {
        cfg: cfg.clone(),
        checked: cfg.seeds,
        divergent_seeds: Vec::new(),
        total_steps: 0,
        coverage: Coverage::default(),
        reports: Vec::new(),
    };
    for r in results {
        out.total_steps += r.steps as u64;
        out.coverage.add(&r.coverage);
        if !r.clean() {
            out.divergent_seeds.push(r.seed);
            if out.reports.len() < cfg.max_reports {
                out.reports.push(r);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_clean_campaign_passes() {
        let cfg = FuzzConfig {
            seeds: 8,
            start_seed: 0,
            workers: Some(2),
            ..FuzzConfig::default()
        };
        let r = run_campaign(&cfg);
        assert!(r.ok(), "{}", r.render());
        assert_eq!(r.checked, 8);
        assert!(r.total_steps > 0);
    }

    #[test]
    fn campaign_report_is_worker_count_invariant() {
        let base = FuzzConfig {
            seeds: 6,
            start_seed: 100,
            ablate_code_centric: true,
            ..FuzzConfig::default()
        };
        let serial = run_campaign(&FuzzConfig {
            workers: Some(1),
            ..base.clone()
        });
        let parallel = run_campaign(&FuzzConfig {
            workers: Some(4),
            ..base
        });
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn ablated_campaign_finds_divergences() {
        let cfg = FuzzConfig {
            seeds: 24,
            start_seed: 0,
            ablate_code_centric: true,
            workers: Some(4),
            ..FuzzConfig::default()
        };
        let r = run_campaign(&cfg);
        assert!(r.ok(), "ablation must diverge:\n{}", r.render());
        assert!(!r.reports.is_empty());
    }
}
