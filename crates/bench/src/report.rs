//! Plain-text report formatting for the experiment binaries.
//!
//! Numeric inputs come from the metrics registry
//! ([`tmi_telemetry::MetricsSnapshot`], filled into
//! [`crate::RunResult::metrics`] by the harness) rather than from walking
//! `*Stats` struct fields; [`metrics_table`] renders any prefix slice of
//! a snapshot directly.

use std::fmt::Write as _;

use tmi_telemetry::{MetricValue, MetricsSnapshot};

/// A simple fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch — a bug in the experiment binary.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = widths[i]);
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// A figure-style comparison grid on top of [`Table`]: columns are fixed
/// up front (typically [`crate::RuntimeKind::label`] strings), rows
/// appear in first-touch order, and cells are set by `(row, column)` key
/// through the shared formatters below — so every experiment binary
/// normalizes and prints its results the same way.
#[derive(Debug)]
pub struct SpeedupTable {
    corner: String,
    cols: Vec<String>,
    rows: Vec<String>,
    cells: std::collections::HashMap<(String, String), String>,
}

impl SpeedupTable {
    /// Creates a grid with a row-label header (`corner`) and the value
    /// columns in display order.
    pub fn new(corner: &str, cols: &[&str]) -> Self {
        SpeedupTable {
            corner: corner.to_string(),
            cols: cols.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            cells: std::collections::HashMap::new(),
        }
    }

    /// Sets a preformatted cell.
    ///
    /// # Panics
    ///
    /// Panics if `col` is not one of the declared columns — a bug in the
    /// experiment binary, like [`Table::row`]'s arity check.
    pub fn set(&mut self, row: &str, col: &str, text: impl Into<String>) {
        assert!(
            self.cols.iter().any(|c| c == col),
            "unknown column {col:?} (have {:?})",
            self.cols
        );
        if !self.rows.iter().any(|r| r == row) {
            self.rows.push(row.to_string());
        }
        self.cells
            .insert((row.to_string(), col.to_string()), text.into());
    }

    /// Sets a speedup cell (`1.23x`).
    pub fn ratio(&mut self, row: &str, col: &str, x: f64) {
        self.set(row, col, ratio(x));
    }

    /// Sets a normalized-runtime cell (`1.02`, baseline = 1.00).
    pub fn norm(&mut self, row: &str, col: &str, x: f64) {
        self.set(row, col, format!("{x:.2}"));
    }

    /// Sets a signed-percentage cell (`+3.4%`).
    pub fn pct(&mut self, row: &str, col: &str, x: f64) {
        self.set(row, col, pct(x));
    }

    /// Sets a megabyte cell from a byte count.
    pub fn mb(&mut self, row: &str, col: &str, bytes: u64) {
        self.set(row, col, mb(bytes));
    }

    /// Sets an integer-count cell.
    pub fn count(&mut self, row: &str, col: &str, n: u64) {
        self.set(row, col, n.to_string());
    }

    /// Renders the grid through [`Table`] (unset cells are blank).
    pub fn render(&self) -> String {
        let mut header = vec![self.corner.as_str()];
        header.extend(self.cols.iter().map(String::as_str));
        let mut table = Table::new(&header);
        for row in &self.rows {
            let mut cells = vec![row.clone()];
            for col in &self.cols {
                cells.push(
                    self.cells
                        .get(&(row.clone(), col.clone()))
                        .cloned()
                        .unwrap_or_default(),
                );
            }
            table.row(cells);
        }
        table.render()
    }

    /// Prints the grid to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Renders the metrics under `prefix` (e.g. `"tmi.repair"`; `""` for
/// all) as a two-column `metric | value` [`Table`], in the registry's
/// stable sorted order. This is the registry-driven replacement for
/// hand-formatting individual `*Stats` fields in report code.
pub fn metrics_table(snap: &MetricsSnapshot, prefix: &str) -> Table {
    let mut t = Table::new(&["metric", "value"]);
    for (name, value) in snap.iter() {
        let under = name
            .strip_prefix(prefix)
            .is_some_and(|rest| prefix.is_empty() || rest.is_empty() || rest.starts_with('.'));
        if under {
            let text = match value {
                MetricValue::U64(v) => v.to_string(),
                MetricValue::F64(v) => format!("{v:.3}"),
            };
            t.row(vec![name.to_string(), text]);
        }
    }
    t
}

/// Formats a ratio as `1.23x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage as `+3.4%`.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Formats bytes as MB with one decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Geometric mean of a slice (skips non-finite values).
pub fn geomean(xs: &[f64]) -> f64 {
    let vals: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if vals.is_empty() {
        return f64::NAN;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.00x".into()]);
        t.row(vec!["longer-name".into(), "10.00x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].contains("10.00x"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn speedup_table_matches_equivalent_table() {
        let mut st = SpeedupTable::new("workload", &["manual", "tmi-protect"]);
        st.ratio("histogram", "manual", 1.8);
        st.ratio("histogram", "tmi-protect", 1.29);
        st.set("lreg", "manual", "broken");
        st.norm("lreg", "tmi-protect", 1.0161);

        let mut t = Table::new(&["workload", "manual", "tmi-protect"]);
        t.row(vec!["histogram".into(), "1.80x".into(), "1.29x".into()]);
        t.row(vec!["lreg".into(), "broken".into(), "1.02".into()]);
        assert_eq!(st.render(), t.render());
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn speedup_table_rejects_unknown_columns() {
        let mut st = SpeedupTable::new("workload", &["manual"]);
        st.set("histogram", "laser", "1.00x");
    }

    #[test]
    fn metrics_table_filters_by_prefix_component() {
        use tmi_telemetry::{MetricSink, MetricSource};
        struct Src;
        impl MetricSource for Src {
            fn metrics(&self, sink: &mut MetricSink) {
                sink.u64("repair.commits", 16);
                sink.u64("repaired", 1);
                sink.f64("repair.rate", 0.5);
            }
        }
        let mut sink = MetricSink::new();
        sink.source("tmi", &Src);
        let snap = sink.finish();

        let all = metrics_table(&snap, "").render();
        assert!(all.contains("tmi.repair.commits") && all.contains("tmi.repaired"));

        let repair = metrics_table(&snap, "tmi.repair").render();
        let row = |name: &str| {
            repair
                .lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("no row for {name}:\n{repair}"))
        };
        assert!(row("tmi.repair.commits").ends_with("16"));
        assert!(row("tmi.repair.rate").ends_with("0.500"));
        assert!(
            !repair.contains("tmi.repaired"),
            "prefix must match whole dotted components:\n{repair}"
        );
    }

    #[test]
    fn stats_helpers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
        assert_eq!(ratio(1.5), "1.50x");
        assert_eq!(pct(0.021), "+2.1%");
        assert_eq!(mb(1024 * 1024), "1.0");
    }
}
