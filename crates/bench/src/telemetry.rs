//! The telemetry export gate: the canonical metric-name schema and the
//! JSON validators `scripts/check.sh` runs over every `BENCH_*.json`
//! report and Chrome trace the harness emits.
//!
//! Metric names are the export contract of the metrics registry
//! ([`tmi_telemetry::MetricSource`]): dashboards and diffing tools key on
//! them, so a rename is a breaking change. [`registered_metric_names`]
//! derives the full set from the registry itself (default-constructed
//! sources under the harness's prefixes); the checked-in copy lives at
//! `tests/golden/metric_names.txt`, and the `validate_telemetry` binary
//! fails whenever the two drift apart or a report contains a name outside
//! the schema.

use std::collections::BTreeSet;

use tmi::{AppLayout, MemoryBreakdown, TmiConfig, TmiRuntime};
use tmi_baselines::{
    LaserConfig, LaserRuntime, PlasticConfig, PlasticRuntime, SheriffConfig, SheriffRuntime,
};
use tmi_machine::{DirStats, MachineStats, VAddr};
use tmi_os::{ObjId, OsStats, TlbStats};
use tmi_telemetry::json::{self, Json};
use tmi_telemetry::MetricSink;

/// Every metric name the harness can emit, in stable (sorted) order —
/// the union over all runtime prefixes (`machine.*`, `machine.dir.*`,
/// `os.*`, `os.tlb.*`, `sim.par.*`, `tmi.*`, `tmi.memory.*`,
/// `sheriff.*`, `laser.*`, `plastic.*`).
///
/// Derived from default-constructed sources, so it is exhaustive by
/// construction: a counter added to any `*Stats` struct appears here
/// without further registration. Uniqueness is enforced by
/// [`MetricSink`], which panics on duplicates.
pub fn registered_metric_names() -> Vec<String> {
    let layout = AppLayout {
        app_obj: ObjId(0),
        app_start: VAddr::new(crate::APP_START),
        app_len: 1 << 20,
        internal_obj: ObjId(1),
        internal_start: VAddr::new(crate::INTERNAL_START),
        internal_len: 1 << 20,
        huge_pages: false,
    };
    let mut sink = MetricSink::new();
    sink.source("machine", &MachineStats::default());
    sink.source("machine.dir", &DirStats::default());
    sink.source("os", &OsStats::default());
    sink.source("os.tlb", &TlbStats::default());
    sink.source("sim.par", &tmi_sim::ParStats::default());
    sink.source("tmi", &TmiRuntime::new(TmiConfig::default(), layout));
    sink.source("tmi.memory", &MemoryBreakdown::default());
    sink.source(
        "sheriff",
        &SheriffRuntime::new(SheriffConfig::protect(), layout),
    );
    sink.source("laser", &LaserRuntime::new(LaserConfig::default(), layout));
    sink.source(
        "plastic",
        &PlasticRuntime::new(PlasticConfig::default(), layout),
    );
    sink.finish().names().map(String::from).collect()
}

/// Validates a `BENCH_harness.json` document against `allowed` metric
/// names: the document must carry the current schema tag and every name
/// in every cell's `metrics` object must be in `allowed`. Returns the
/// number of `(cell, name)` pairs checked.
pub fn validate_report(doc: &str, allowed: &BTreeSet<String>) -> Result<usize, String> {
    let root = json::parse(doc).map_err(|e| format!("report is not valid JSON: {e}"))?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("report has no \"schema\" member")?;
    if schema != "tmi-bench-harness/2" {
        return Err(format!(
            "unexpected report schema {schema:?} (expected \"tmi-bench-harness/2\")"
        ));
    }
    let cells = root
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("report has no \"cells\" array")?;
    let mut checked = 0usize;
    for (i, cell) in cells.iter().enumerate() {
        let metrics = cell
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("cell {i} has no \"metrics\" object"))?;
        for name in metrics.keys() {
            if !allowed.contains(name) {
                return Err(format!(
                    "cell {i} exports unknown metric {name:?} — register it in the \
                     schema (tests/golden/metric_names.txt) or revert the rename"
                ));
            }
            checked += 1;
        }
    }
    Ok(checked)
}

/// Structural summary of a validated Chrome trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Number of `traceEvents` entries.
    pub events: usize,
    /// Distinct event names, sorted.
    pub names: Vec<String>,
}

impl TraceSummary {
    /// True if the trace contains one full repair episode: trigger,
    /// fork/T2P conversion, a twin snapshot and a PTSB commit.
    pub fn has_repair_episode(&self) -> bool {
        [
            "tmi.repair.trigger",
            "tmi.repair.t2p",
            "tmi.repair.twin",
            "tmi.repair.commit",
        ]
        .iter()
        .all(|n| self.names.iter().any(|have| have == n))
    }
}

/// Validates a Chrome `trace_event` JSON document: object format with
/// `displayTimeUnit` and a `traceEvents` array whose entries each carry
/// `name`/`cat`/`ph`/`ts`/`pid`/`tid`, with `ph` one of the shapes the
/// exporter emits (`i` instants, `X` complete spans with `dur`).
pub fn validate_trace(doc: &str) -> Result<TraceSummary, String> {
    let root = json::parse(doc).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    root.get("displayTimeUnit")
        .and_then(Json::as_str)
        .ok_or("trace has no \"displayTimeUnit\"")?;
    root.get("otherData")
        .and_then(Json::as_obj)
        .ok_or("trace has no \"otherData\" object")?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace has no \"traceEvents\" array")?;
    let mut names = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} has no \"name\""))?;
        for field in ["cat", "ph"] {
            ev.get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i} ({name}) has no \"{field}\""))?;
        }
        // `ts` is a decimal microsecond string rendered as a JSON number.
        for field in ["ts", "pid", "tid"] {
            ev.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i} ({name}) has no numeric \"{field}\""))?;
        }
        match ev.get("ph").and_then(Json::as_str) {
            Some("i") => (),
            Some("X") => {
                ev.get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("complete event {i} ({name}) has no numeric \"dur\""))?;
            }
            ph => return Err(format!("event {i} ({name}) has unexpected ph {ph:?}")),
        }
        names.insert(name.to_string());
    }
    Ok(TraceSummary {
        events: events.len(),
        names: names.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names_are_unique_and_prefixed() {
        let names = registered_metric_names();
        let set: BTreeSet<&String> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "duplicate metric names");
        for n in &names {
            assert!(
                ["machine.", "os.", "sim.", "tmi.", "sheriff.", "laser.", "plastic."]
                    .iter()
                    .any(|p| n.starts_with(p)),
                "unprefixed metric {n}"
            );
        }
    }

    #[test]
    fn traced_run_passes_the_trace_gate() {
        let (r, trace) = crate::Experiment::repair("histogramfs")
            .runtime(crate::RuntimeKind::TmiProtect)
            .scale(0.25)
            .misaligned()
            .run_traced();
        assert!(r.ok(), "{:?}", r.verified);
        let summary = validate_trace(&trace).expect("trace validates");
        assert!(summary.events > 0);
        assert!(
            summary.has_repair_episode(),
            "expected a full repair episode, saw {:?}",
            summary.names
        );
    }

    #[test]
    fn report_gate_accepts_known_and_rejects_unknown_names() {
        let allowed: BTreeSet<String> = registered_metric_names().into_iter().collect();
        let good = r#"{"schema": "tmi-bench-harness/2",
            "cells": [{"metrics": {"machine.accesses": 1}}]}"#;
        assert_eq!(validate_report(good, &allowed), Ok(1));
        let bad = r#"{"schema": "tmi-bench-harness/2",
            "cells": [{"metrics": {"machine.acesses": 1}}]}"#;
        assert!(validate_report(bad, &allowed)
            .unwrap_err()
            .contains("unknown metric"));
        let old = r#"{"schema": "tmi-bench-harness/1", "cells": []}"#;
        assert!(validate_report(old, &allowed)
            .unwrap_err()
            .contains("unexpected report schema"));
    }
}
