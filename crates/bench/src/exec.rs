//! Deterministic parallel experiment execution.
//!
//! Every figure and table regenerates from a (workload × runtime ×
//! config) matrix, and each cell is an independent, deterministic,
//! single-threaded simulation ([`crate::harness`]). That makes the matrix
//! embarrassingly parallel — this module fans it out over a scoped worker
//! pool while keeping every report **byte-identical to a serial run**:
//!
//! * Jobs are drained from a shared queue but results are collected **by
//!   submission index**, never by completion order.
//! * Each simulation is deterministic, so a cell's [`RunResult`] does not
//!   depend on which worker ran it or what ran concurrently.
//! * A panicking cell is caught per-job ([`std::panic::catch_unwind`]) and
//!   reported as a failed [`JobResult`] instead of killing the suite.
//!
//! The pool is sized from [`std::thread::available_parallelism`], and the
//! `TMI_BENCH_JOBS` environment variable overrides it (`TMI_BENCH_JOBS=1`
//! forces serial execution; the output must not change).
//!
//! Completed jobs are memoized by their full configuration, so e.g. the
//! pthreads baselines that several figures share are computed once per
//! `run_all` instead of once per figure. Memoization is sound because
//! runs are deterministic: a cache hit returns exactly the bytes a rerun
//! would.
//!
//! [`Experiment`] is the builder for one cell and the public entry point
//! to the harness; [`ExperimentSet`] batches cells for parallel
//! execution. The executor also keeps a per-job timing log which
//! [`Executor::write_json`] emits as `BENCH_harness.json`.

use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tmi_telemetry::MetricsSnapshot;

use crate::harness::{self, RunConfig, RunResult, RuntimeKind};
pub use crate::spec::JobSpec;

/// Fans `f(0..n)` out over a scoped pool of `workers` threads and returns
/// the results **in index order**, independent of completion order.
///
/// This is the deterministic work-stealing core shared by
/// [`Executor::run`] and the fuzz campaign driver
/// ([`crate::fuzz::run_campaign`]): indices are drained from a shared
/// counter, each result lands in its submission slot, and as long as `f`
/// is a pure function of its index the returned vector is identical for
/// any pool size (`workers = 1` is a serial run).
///
/// # Panics
///
/// Propagates a panic from `f` (the scope unwinds); callers that need
/// per-item isolation wrap `f` in [`std::panic::catch_unwind`] as
/// [`Executor::run`] does.
pub fn pool_map<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = workers.min(n).max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

/// The outcome of one executed cell.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The cell that ran.
    pub spec: JobSpec,
    /// Submission index within its batch (results are returned in this
    /// order regardless of completion order).
    pub index: usize,
    /// The measured run, or the panic message if the cell failed.
    pub outcome: Result<RunResult, String>,
    /// Host wall-clock seconds this cell took (0 for memoized hits).
    pub host_seconds: f64,
    /// Whether the result came from the executor's memo cache.
    pub from_cache: bool,
}

impl JobResult {
    /// True if the cell ran to completion and verified.
    pub fn ok(&self) -> bool {
        matches!(&self.outcome, Ok(r) if r.ok())
    }

    /// The run result.
    ///
    /// # Panics
    ///
    /// Panics with the cell's panic message if the cell failed; use
    /// [`JobResult::outcome`] to handle failures.
    pub fn result(&self) -> &RunResult {
        match &self.outcome {
            Ok(r) => r,
            Err(e) => panic!(
                "job {} ({} under {}) failed: {e}",
                self.index,
                self.spec.workload,
                self.spec.cfg.runtime.label()
            ),
        }
    }
}

/// One line of the executor's timing log (the `BENCH_harness.json`
/// cells).
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Batch sequence number (each [`Executor::run`] call is one batch).
    pub batch: usize,
    /// Submission index within the batch.
    pub index: usize,
    /// Workload name.
    pub workload: String,
    /// Runtime label.
    pub runtime: &'static str,
    /// Worker threads simulated.
    pub threads: usize,
    /// Work scale.
    pub scale: f64,
    /// `"ok"`, `"failed"`, or `"cached"`.
    pub status: &'static str,
    /// Host wall-clock seconds for this cell.
    pub host_seconds: f64,
    /// Simulated cycles (0 if the cell failed).
    pub sim_cycles: u64,
    /// Simulated seconds (0 if the cell failed).
    pub sim_seconds: f64,
    /// The cell's metrics-registry snapshot (empty if the cell failed).
    pub metrics: MetricsSnapshot,
}

/// Memoization key: the full cell identity — `(workload, config, seed)`
/// plus the trace flag, the same identity the service result cache keys
/// on.
#[derive(Clone, PartialEq, Eq, Hash)]
struct JobKey {
    workload: String,
    runtime: RuntimeKind,
    threads: usize,
    scale_bits: u64,
    fixed: bool,
    misaligned: bool,
    huge_pages: bool,
    period: u64,
    tick_interval: u64,
    max_ops: u64,
    fast_path: tmi_sim::FastPath,
    sim_threads: usize,
    seed: u64,
    trace: bool,
}

impl JobKey {
    fn of(spec: &JobSpec) -> Self {
        let c = &spec.cfg;
        JobKey {
            workload: spec.workload.clone(),
            runtime: c.runtime,
            threads: c.threads,
            scale_bits: c.scale.to_bits(),
            fixed: c.fixed,
            misaligned: c.misaligned,
            huge_pages: c.huge_pages,
            period: c.period,
            tick_interval: c.tick_interval,
            max_ops: c.max_ops,
            fast_path: c.fast_path,
            sim_threads: c.sim_threads,
            seed: spec.seed,
            trace: spec.trace,
        }
    }
}

/// The deterministic parallel job executor.
///
/// Cheap to create; share one across figures (as `run_all` does) to get
/// cross-figure memoization of repeated cells.
pub struct Executor {
    workers: usize,
    cache: Mutex<HashMap<JobKey, RunResult>>,
    log: Mutex<Vec<JobRecord>>,
    batches: AtomicUsize,
    created: Instant,
}

impl Executor {
    /// An executor with an explicit worker count (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Executor {
            workers: workers.max(1),
            cache: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
            batches: AtomicUsize::new(0),
            created: Instant::now(),
        }
    }

    /// An executor sized from `TMI_BENCH_JOBS` if set, else
    /// [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        let workers = std::env::var("TMI_BENCH_JOBS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Executor::new(workers)
    }

    /// The pool size jobs fan out over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a batch of cells, fanning out over the worker pool, and
    /// returns results **in submission order**. With identical specs the
    /// returned vector is byte-identical for any pool size.
    pub fn run(&self, specs: Vec<JobSpec>) -> Vec<JobResult> {
        let batch = self.batches.fetch_add(1, Ordering::Relaxed);
        pool_map(self.workers, specs.len(), |i| {
            self.run_one(batch, i, &specs[i])
        })
    }

    /// Runs a single cell through the memo cache on the current thread —
    /// the entry point the `tmi-service` worker pool drains jobs into.
    /// Equivalent to `run(vec![spec]).pop()` without spinning up a pool;
    /// because runs are deterministic and the cache key is the full spec,
    /// a repeated spec returns the *same* [`RunResult`] bytes whether it
    /// recomputes or hits the cache. The spec's Chrome trace (if
    /// `spec.trace`) is not retained — callers wanting the trace document
    /// use [`Experiment::run_traced`].
    pub fn run_spec(&self, spec: &JobSpec) -> JobResult {
        let batch = self.batches.fetch_add(1, Ordering::Relaxed);
        self.run_one(batch, 0, spec)
    }

    fn run_one(&self, batch: usize, index: usize, spec: &JobSpec) -> JobResult {
        let key = JobKey::of(spec);
        if let Some(hit) = self.cache.lock().unwrap().get(&key).cloned() {
            self.record(batch, index, spec, "cached", 0.0, Some(&hit));
            return JobResult {
                spec: spec.clone(),
                index,
                outcome: Ok(hit),
                host_seconds: 0.0,
                from_cache: true,
            };
        }
        let t0 = Instant::now();
        let caught = catch_unwind(AssertUnwindSafe(|| harness::execute_spec(spec).0));
        let host_seconds = t0.elapsed().as_secs_f64();
        let outcome = match caught {
            Ok(r) => Ok(r),
            Err(payload) => Err(panic_message(payload.as_ref())),
        };
        match &outcome {
            Ok(r) => {
                self.cache.lock().unwrap().insert(key, r.clone());
                self.record(batch, index, spec, "ok", host_seconds, Some(r));
            }
            Err(_) => self.record(batch, index, spec, "failed", host_seconds, None),
        }
        JobResult {
            spec: spec.clone(),
            index,
            outcome,
            host_seconds,
            from_cache: false,
        }
    }

    fn record(
        &self,
        batch: usize,
        index: usize,
        spec: &JobSpec,
        status: &'static str,
        host_seconds: f64,
        result: Option<&RunResult>,
    ) {
        self.log.lock().unwrap().push(JobRecord {
            batch,
            index,
            workload: spec.workload.clone(),
            runtime: spec.cfg.runtime.label(),
            threads: spec.cfg.threads,
            scale: spec.cfg.scale,
            status,
            host_seconds,
            sim_cycles: result.map_or(0, |r| r.cycles),
            sim_seconds: result.map_or(0.0, |r| r.seconds),
            metrics: result.map(|r| r.metrics.clone()).unwrap_or_default(),
        });
    }

    /// The per-job timing log so far, ordered by (batch, submission
    /// index) so the structure is stable across pool sizes.
    pub fn job_log(&self) -> Vec<JobRecord> {
        let mut log = self.log.lock().unwrap().clone();
        log.sort_by_key(|r| (r.batch, r.index, r.status == "cached"));
        log
    }

    /// Serializes the timing log as the `BENCH_harness.json` document.
    ///
    /// Schema (`tmi-bench-harness/2`; `/2` added the per-cell `metrics`
    /// member, the flat metrics-registry snapshot of the run):
    ///
    /// ```json
    /// {
    ///   "schema": "tmi-bench-harness/2",
    ///   "pool_workers": 8,
    ///   "jobs": 123,
    ///   "cache_hits": 17,
    ///   "wall_seconds": 42.0,
    ///   "cells": [
    ///     {"batch": 0, "index": 0, "workload": "histogram",
    ///      "runtime": "pthreads", "threads": 8, "scale": 1.0,
    ///      "status": "ok", "host_seconds": 0.81,
    ///      "sim_cycles": 3400000, "sim_seconds": 0.001,
    ///      "metrics": {"machine.accesses": 100, "os.minor_faults": 5}}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let log = self.job_log();
        let cache_hits = log.iter().filter(|r| r.status == "cached").count();
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"tmi-bench-harness/2\",\n");
        out.push_str(&format!("  \"pool_workers\": {},\n", self.workers));
        out.push_str(&format!("  \"jobs\": {},\n", log.len()));
        out.push_str(&format!("  \"cache_hits\": {cache_hits},\n"));
        out.push_str(&format!(
            "  \"wall_seconds\": {:.3},\n",
            self.created.elapsed().as_secs_f64()
        ));
        out.push_str("  \"cells\": [\n");
        for (i, r) in log.iter().enumerate() {
            let sep = if i + 1 == log.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"batch\": {}, \"index\": {}, \"workload\": {}, \
                 \"runtime\": {}, \"threads\": {}, \"scale\": {}, \
                 \"status\": {}, \"host_seconds\": {:.6}, \
                 \"sim_cycles\": {}, \"sim_seconds\": {:.9}, \
                 \"metrics\": {}}}{sep}\n",
                r.batch,
                r.index,
                json_string(&r.workload),
                json_string(r.runtime),
                r.threads,
                json_number(r.scale),
                json_string(r.status),
                r.host_seconds,
                r.sim_cycles,
                r.sim_seconds,
                r.metrics.to_json(""),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`Executor::to_json`] to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// Renders a `str` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (always with a decimal point).
fn json_number(x: f64) -> String {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// Builder for one experiment cell — the canonical way to run the
/// harness:
///
/// ```
/// use tmi_bench::{Experiment, RuntimeKind};
///
/// let r = Experiment::new("histogram")
///     .runtime(RuntimeKind::TmiProtect)
///     .threads(4)
///     .scale(0.05)
///     .run();
/// assert!(r.ok());
/// ```
#[derive(Clone, Debug)]
pub struct Experiment {
    spec: JobSpec,
}

impl Experiment {
    /// An experiment on `workload` with the detection-machine defaults
    /// (pthreads, 8 threads, benchmark scale); see [`RunConfig::new`].
    pub fn new(workload: impl Into<String>) -> Self {
        Experiment {
            spec: JobSpec::new(workload),
        }
    }

    /// An experiment with the §4.1 repair-experiment defaults (4 threads,
    /// fast detection tick); see [`RunConfig::repair`].
    pub fn repair(workload: impl Into<String>) -> Self {
        Experiment {
            spec: JobSpec {
                cfg: RunConfig::repair(RuntimeKind::Pthreads),
                ..JobSpec::new(workload)
            },
        }
    }

    /// Sets the supervising runtime.
    pub fn runtime(mut self, rt: RuntimeKind) -> Self {
        self.spec.cfg.runtime = rt;
        self
    }

    /// Sets the worker-thread (= core) count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.spec.cfg.threads = threads;
        self
    }

    /// Sets the work scale (1.0 = benchmark size).
    pub fn scale(mut self, scale: f64) -> Self {
        self.spec.cfg.scale = scale;
        self
    }

    /// Applies the manual source fix (the `manual` bars of Fig. 9).
    pub fn fixed(mut self) -> Self {
        self.spec.cfg.fixed = true;
        self
    }

    /// Forces the misaligned allocation that exposes allocator-sensitive
    /// false sharing (§4.3).
    pub fn misaligned(mut self) -> Self {
        self.spec.cfg.misaligned = true;
        self
    }

    /// Maps application memory with 2 MiB huge pages (§4.4).
    pub fn huge_pages(mut self) -> Self {
        self.spec.cfg.huge_pages = true;
        self
    }

    /// Sets the perf sampling period (Fig. 4 sweeps this).
    pub fn period(mut self, period: u64) -> Self {
        self.spec.cfg.period = period;
        self
    }

    /// Sets the detection-tick interval in cycles.
    pub fn tick_interval(mut self, cycles: u64) -> Self {
        self.spec.cfg.tick_interval = cycles;
        self
    }

    /// Sets the livelock backstop in dynamic ops.
    pub fn max_ops(mut self, ops: u64) -> Self {
        self.spec.cfg.max_ops = ops;
        self
    }

    /// Sets the simulator fast-path configuration (typed replacement for
    /// the old process-global `TMI_FASTPATH` toggle — no environment
    /// mutation, so concurrent cells can differ).
    pub fn fast_path(mut self, fp: tmi_sim::FastPath) -> Self {
        self.spec.cfg = self.spec.cfg.fast_path(fp);
        self
    }

    /// Sets the host-thread count the engine shards cores over (clamped
    /// to ≥ 1). Results are bit-identical at any value; only wall-clock
    /// changes.
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.spec.cfg = self.spec.cfg.sim_threads(n);
        self
    }

    /// Replaces the entire configuration (escape hatch for presets).
    pub fn config(mut self, cfg: RunConfig) -> Self {
        self.spec.cfg = cfg;
        self
    }

    /// Runs the cell under the seeded fault schedule
    /// ([`tmi_faultpoint::FaultPlan::from_seed`]); `0` (the default)
    /// disables injection. The seed is part of the cell's identity:
    /// executors memoize and the service caches per `(workload, config,
    /// seed)`.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// The workload name.
    pub fn workload(&self) -> &str {
        &self.spec.workload
    }

    /// The assembled configuration.
    pub fn run_config(&self) -> &RunConfig {
        &self.spec.cfg
    }

    /// Lowers the builder into a queueable cell.
    pub fn spec(self) -> JobSpec {
        self.spec
    }

    /// Runs this cell synchronously on the current thread.
    ///
    /// # Panics
    ///
    /// Panics on unknown workload names, like the harness.
    pub fn run(self) -> RunResult {
        harness::execute_spec(&self.spec).0
    }

    /// Runs under `tmi-detect` and also returns the perf-c2c-style
    /// contention report plus the Cheetah-style predicted manual-fix
    /// speedup (the runtime is forced to [`RuntimeKind::TmiDetect`]).
    pub fn run_detect_report(self) -> (RunResult, tmi::ContentionReport, f64) {
        harness::execute_detect_report(&self.spec.workload, &self.spec.cfg)
    }

    /// Runs this cell with telemetry tracing enabled and returns the
    /// result plus the Chrome `trace_event` JSON document — load it at
    /// `chrome://tracing` or <https://ui.perfetto.dev>. The trace embeds
    /// the run's metrics snapshot and per-phase cycle profile under
    /// `otherData`.
    pub fn run_traced(mut self) -> (RunResult, String) {
        self.spec.trace = true;
        let (r, trace) = harness::execute_spec(&self.spec);
        (r, trace.expect("traced run returns a trace document"))
    }
}

/// An ordered batch of experiments destined for parallel execution.
///
/// ```
/// use tmi_bench::{Executor, Experiment, ExperimentSet, RuntimeKind};
///
/// let mut set = ExperimentSet::new();
/// let base = set.push(Experiment::new("histogram").scale(0.05));
/// let tmi = set.push(
///     Experiment::new("histogram")
///         .runtime(RuntimeKind::TmiProtect)
///         .scale(0.05),
/// );
/// let results = set.run_on(&Executor::new(2));
/// assert!(results[base].ok() && results[tmi].ok());
/// ```
#[derive(Default)]
pub struct ExperimentSet {
    specs: Vec<JobSpec>,
}

impl ExperimentSet {
    /// An empty batch.
    pub fn new() -> Self {
        ExperimentSet::default()
    }

    /// Queues one experiment and returns its submission index — the
    /// position of its result in the vector `run_parallel` returns.
    ///
    /// Identical cells are submitted once: pushing an experiment equal to
    /// one already queued returns the earlier index instead of queueing a
    /// duplicate, so figures can share baselines without re-running them
    /// (and without two identical jobs racing within one batch).
    pub fn push(&mut self, e: Experiment) -> usize {
        let spec = e.spec();
        if let Some(i) = self.specs.iter().position(|s| *s == spec) {
            return i;
        }
        self.specs.push(spec);
        self.specs.len() - 1
    }

    /// Number of queued cells.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Runs the batch on a fresh [`Executor::from_env`] pool.
    pub fn run_parallel(self) -> Vec<JobResult> {
        self.run_on(&Executor::from_env())
    }

    /// Runs the batch on an existing executor (sharing its memo cache).
    pub fn run_on(self, exec: &Executor) -> Vec<JobResult> {
        exec.run(self.specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_builder_composes() {
        let e = Experiment::repair("lreg")
            .runtime(RuntimeKind::TmiProtect)
            .threads(2)
            .scale(0.25)
            .fixed()
            .misaligned()
            .huge_pages()
            .period(10)
            .tick_interval(123)
            .max_ops(456);
        let spec = e.spec();
        assert_eq!(spec.workload, "lreg");
        assert_eq!(spec.cfg.runtime, RuntimeKind::TmiProtect);
        assert_eq!(spec.cfg.threads, 2);
        assert_eq!(spec.cfg.scale, 0.25);
        assert!(spec.cfg.fixed && spec.cfg.misaligned && spec.cfg.huge_pages);
        assert_eq!(spec.cfg.period, 10);
        assert_eq!(spec.cfg.tick_interval, 123);
        assert_eq!(spec.cfg.max_ops, 456);
    }

    #[test]
    fn json_strings_escape() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn json_numbers_keep_a_decimal_point() {
        assert_eq!(json_number(1.0), "1.0");
        assert_eq!(json_number(0.05), "0.05");
    }

    #[test]
    fn pool_sizing_respects_explicit_count() {
        assert_eq!(Executor::new(0).workers(), 1);
        assert_eq!(Executor::new(7).workers(), 7);
    }
}
