//! The experiment harness: builds a full simulation for one (workload,
//! runtime) pair, runs it, verifies the output, and collects every metric
//! the paper's tables and figures report.

use tmi::{AppLayout, MemoryBreakdown, TmiConfig, TmiRuntime};
use tmi_alloc::{AllocConfig, AllocPolicy, SimAllocator};
use tmi_baselines::{
    LaserConfig, LaserRuntime, PlasticConfig, PlasticRuntime, SheriffConfig, SheriffRuntime,
};
use tmi_faultpoint::{FaultInjector, FaultPlan};
use tmi_machine::{LatencyModel, VAddr, FRAME_SIZE};
use tmi_os::MapRequest;
use tmi_perf::PerfConfig;
use tmi_sim::{Engine, EngineConfig, FastPath, Halt, NullRuntime, RuntimeHooks, SimTuning};
use tmi_telemetry::{MetricSource, MetricsSnapshot, Tracer};
use tmi_workloads::{SetupCtx, Workload, WorkloadParams};

use crate::spec::JobSpec;

/// Base of the primary application mapping.
pub const APP_START: u64 = 0x40_0000 * 16; // 64 MiB mark, 2 MiB aligned
/// Base of TMI's internal shared region.
pub const INTERNAL_START: u64 = 0x4000_0000;
/// Internal region size.
pub const INTERNAL_LEN: u64 = 8 * 1024 * 1024;

/// Which runtime system supervises the run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RuntimeKind {
    /// Plain pthreads with the Lockless-style allocator (the baseline all
    /// figures normalize to). Anonymous memory, cheap faults.
    Pthreads,
    /// Baseline execution but with all allocations redirected to TMI's
    /// process-shared memory (the `tmi-alloc` bars of Fig. 7).
    TmiAlloc,
    /// TMI monitoring without repair (`tmi-detect`).
    TmiDetect,
    /// Full TMI (`TMI-protect`).
    TmiProtect,
    /// TMI with targeted protection disabled — the PTSB-everywhere
    /// ablation of §4.3.
    TmiPtsbEverywhere,
    /// TMI with code-centric consistency disabled (Figs. 11–12 ablation).
    TmiNoCodeCentric,
    /// Sheriff's detection tool.
    SheriffDetect,
    /// Sheriff's prevention tool.
    SheriffProtect,
    /// LASER.
    Laser,
    /// The Plastic-style comparator.
    Plastic,
}

impl RuntimeKind {
    /// Every runtime, in figure order.
    pub const ALL: [RuntimeKind; 10] = [
        RuntimeKind::Pthreads,
        RuntimeKind::TmiAlloc,
        RuntimeKind::TmiDetect,
        RuntimeKind::TmiProtect,
        RuntimeKind::TmiPtsbEverywhere,
        RuntimeKind::TmiNoCodeCentric,
        RuntimeKind::SheriffDetect,
        RuntimeKind::SheriffProtect,
        RuntimeKind::Laser,
        RuntimeKind::Plastic,
    ];

    /// The inverse of [`RuntimeKind::label`] — how wire requests and CLI
    /// flags name a runtime.
    pub fn from_label(label: &str) -> Option<RuntimeKind> {
        Self::ALL.iter().copied().find(|r| r.label() == label)
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Pthreads => "pthreads",
            RuntimeKind::TmiAlloc => "tmi-alloc",
            RuntimeKind::TmiDetect => "tmi-detect",
            RuntimeKind::TmiProtect => "tmi-protect",
            RuntimeKind::TmiPtsbEverywhere => "tmi-ptsb-everywhere",
            RuntimeKind::TmiNoCodeCentric => "tmi-no-ccc",
            RuntimeKind::SheriffDetect => "sheriff-detect",
            RuntimeKind::SheriffProtect => "sheriff-protect",
            RuntimeKind::Laser => "laser",
            RuntimeKind::Plastic => "plastic",
        }
    }

    /// Whether this runtime ships its own allocator (and therefore escapes
    /// allocator-induced false sharing like lu-ncb's, §4.3).
    pub fn has_own_allocator(self) -> bool {
        !matches!(
            self,
            RuntimeKind::Pthreads | RuntimeKind::Laser | RuntimeKind::Plastic
        )
    }

    /// Whether application memory must be backed by a shared object.
    /// Process-based runtimes need this to survive T2P; the harness also
    /// uses object backing for the baseline so that cold-start demand
    /// paging behaves uniformly (anonymous memory cannot survive the
    /// residency reset between setup and simulation).
    pub fn needs_shared_backing(self) -> bool {
        true
    }
}

/// Full configuration for one run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RunConfig {
    /// The runtime supervising the run.
    pub runtime: RuntimeKind,
    /// Worker threads (= cores).
    pub threads: usize,
    /// Work scale (1.0 = benchmark size).
    pub scale: f64,
    /// Apply the manual source fix.
    pub fixed: bool,
    /// Force misaligned allocation (repair experiments, §4.3).
    pub misaligned: bool,
    /// Map application memory with 2 MiB huge pages (§4.4).
    pub huge_pages: bool,
    /// perf sampling period (Fig. 4 sweeps this).
    pub period: u64,
    /// Detection-tick interval in cycles.
    pub tick_interval: u64,
    /// Livelock backstop in dynamic ops.
    pub max_ops: u64,
    /// Which accelerator fast paths the engine uses (typed; replaces the
    /// old process-global `TMI_FASTPATH` toggle).
    pub fast_path: FastPath,
    /// Host worker threads for the engine's epoch-parallel stepping.
    /// Changes host wall time only, never a simulated observable.
    pub sim_threads: usize,
}

impl RunConfig {
    /// Defaults: 8 threads (the detection machine), benchmark scale,
    /// period 100, 0.5 ms ticks. The fast-path and host-parallelism
    /// fields default from the environment (`TMI_FASTPATH`,
    /// `TMI_SIM_THREADS`), read once per process, for CLI compatibility.
    pub fn new(runtime: RuntimeKind) -> Self {
        RunConfig {
            runtime,
            threads: 8,
            scale: 1.0,
            fixed: false,
            misaligned: false,
            huge_pages: false,
            period: 100,
            tick_interval: 1_700_000,
            max_ops: 80_000_000,
            fast_path: FastPath::from_env(),
            sim_threads: SimTuning::from_env().threads,
        }
    }

    /// The 4-thread configuration of the repair experiments (§4.1), with a
    /// faster detection tick so that detection latency occupies the same
    /// small fraction of these shorter runs as the paper's 1 Hz analysis
    /// does of its minute-long ones.
    pub fn repair(runtime: RuntimeKind) -> Self {
        RunConfig {
            threads: 4,
            tick_interval: 400_000,
            ..Self::new(runtime)
        }
    }

    /// Scales the work (tests use small scales).
    pub fn scale(mut self, s: f64) -> Self {
        self.scale = s;
        self
    }

    /// Applies the manual fix.
    pub fn fixed(mut self) -> Self {
        self.fixed = true;
        self
    }

    /// Forces misaligned allocation.
    pub fn misaligned(mut self) -> Self {
        self.misaligned = true;
        self
    }

    /// Uses huge pages for application memory.
    pub fn huge_pages(mut self) -> Self {
        self.huge_pages = true;
        self
    }

    /// Sets the perf sampling period.
    pub fn period(mut self, p: u64) -> Self {
        self.period = p;
        self
    }

    /// Selects the accelerator fast paths (typed; no environment involved).
    pub fn fast_path(mut self, fp: FastPath) -> Self {
        self.fast_path = fp;
        self
    }

    /// Sets the engine's host worker-thread count (clamped to ≥ 1).
    pub fn sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n.max(1);
        self
    }
}

/// Everything measured in one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Workload name.
    pub workload: String,
    /// Runtime label.
    pub runtime: &'static str,
    /// How the run ended.
    pub halt: Halt,
    /// Wall time in cycles (max thread clock).
    pub cycles: u64,
    /// Wall time in simulated seconds.
    pub seconds: f64,
    /// Dynamic ops executed.
    pub ops: u64,
    /// Output verification outcome.
    pub verified: Result<(), String>,
    /// HITM events observed by the machine.
    pub hitm_events: u64,
    /// PEBS records captured by the runtime's perf monitor (0 for
    /// runtimes without one).
    pub perf_records: u64,
    /// HITM events seen by the runtime's perf monitor.
    pub perf_events: u64,
    /// Whether online repair activated.
    pub repaired: bool,
    /// PTSB commit events.
    pub commits: u64,
    /// Cycle at which threads became processes, if they did.
    pub converted_at: Option<u64>,
    /// Stop-the-world conversion cost in cycles.
    pub t2p_cycles: u64,
    /// Total memory footprint in bytes (app + runtime overheads).
    pub memory_bytes: u64,
    /// App-only memory in bytes.
    pub app_bytes: u64,
    /// Demand page faults taken.
    pub faults: u64,
    /// The full flat metrics-registry snapshot of the run: every
    /// `machine.*`, `os.*` and runtime counter under one stable namespace.
    /// The typed fields above are derived from this snapshot; reports
    /// should prefer it over field-walking.
    pub metrics: MetricsSnapshot,
}

impl RunResult {
    /// True if the run completed and verified.
    pub fn ok(&self) -> bool {
        self.halt == Halt::Completed && self.verified.is_ok()
    }

    /// Wall time in seconds (alias).
    pub fn runtime_secs(&self) -> f64 {
        self.seconds
    }

    /// Commits per simulated second (Table 3).
    pub fn commits_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.commits as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// T2P cost in microseconds (Table 3).
    pub fn t2p_micros(&self) -> f64 {
        self.t2p_cycles as f64 / (LatencyModel::CLOCK_HZ as f64 / 1e6)
    }
}

fn alloc_config(cfg: &RunConfig, allocator_sensitive: bool) -> AllocConfig {
    let mut ac = AllocConfig::default();
    if allocator_sensitive && !cfg.fixed && !cfg.runtime.has_own_allocator() {
        // The glibc-style layout that packs cross-thread allocations, the
        // condition under which lu-ncb exhibits false sharing.
        ac.policy = AllocPolicy::Glibc;
        if cfg.misaligned {
            ac.misalign = 8;
        }
    }
    ac
}

struct Built<R: RuntimeHooks> {
    engine: Engine<R>,
    workload: Box<dyn Workload>,
    layout: AppLayout,
    aspace: tmi_os::AsId,
}

fn build<R: RuntimeHooks>(
    name: &str,
    cfg: &RunConfig,
    make_runtime: impl FnOnce(AppLayout) -> R,
) -> Built<R> {
    let mut workload =
        tmi_workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
    let spec = workload.spec();

    let app_len: u64 = if spec.big_memory { 64 << 20 } else { 16 << 20 };
    let mut engine_cfg = EngineConfig::with_cores(cfg.threads.max(1));
    engine_cfg.tick_interval = cfg.tick_interval;
    engine_cfg.max_ops = cfg.max_ops;
    engine_cfg.max_cycles = 60_000_000_000;
    engine_cfg.fast_path = cfg.fast_path;
    engine_cfg.tuning = SimTuning::with_threads(cfg.sim_threads);

    // The runtime is constructed against the layout before the engine
    // exists (TMI sets its memory up at program start, §3.2).
    let layout_proto = AppLayout {
        app_obj: tmi_os::ObjId(0),
        app_start: VAddr::new(APP_START),
        app_len,
        internal_obj: tmi_os::ObjId(1),
        internal_start: VAddr::new(INTERNAL_START),
        internal_len: INTERNAL_LEN,
        huge_pages: cfg.huge_pages,
    };
    let mut engine = Engine::new(engine_cfg, make_runtime(layout_proto));

    // Map the application region (object- or anon-backed) and the internal
    // region.
    let kernel = &mut engine.core_mut().kernel;
    let app_obj = kernel.create_object(app_len);
    let internal_obj = kernel.create_object(INTERNAL_LEN);
    let aspace = kernel.create_aspace();
    let mut layout = layout_proto;
    layout.app_obj = app_obj;
    layout.internal_obj = internal_obj;

    debug_assert!(cfg.runtime.needs_shared_backing());
    let mut req = MapRequest::object(VAddr::new(APP_START), app_len, app_obj, 0);
    if cfg.huge_pages {
        req = req.huge();
    }
    kernel.map(aspace, req).expect("map app object");
    kernel
        .map(
            aspace,
            MapRequest::object(VAddr::new(INTERNAL_START), INTERNAL_LEN, internal_obj, 0),
        )
        .expect("map internal");

    engine.create_root_process(aspace);

    // Build the workload.
    let mut alloc = SimAllocator::new(
        VAddr::new(APP_START),
        app_len,
        alloc_config(cfg, spec.allocator_sensitive),
    );
    let params = WorkloadParams {
        threads: cfg.threads,
        scale: cfg.scale,
        fixed: cfg.fixed,
        misaligned: cfg.misaligned,
    };
    let core = engine.core_mut();
    let programs = {
        // Split borrows of the engine core for the setup context.
        let EngineCoreView { kernel, code } = split_core(core);
        let mut ctx = SetupCtx::new(kernel, code, &mut alloc, aspace);
        workload.build(&mut ctx, &params)
    };
    for p in programs {
        engine.add_thread(p);
    }

    // Cold start: drop residency so first touches fault during simulation
    // (the page-fault behaviour Fig. 10 measures).
    engine.core_mut().kernel.drop_residency(aspace);

    Built {
        engine,
        workload,
        layout,
        aspace,
    }
}

struct EngineCoreView<'a> {
    kernel: &'a mut tmi_os::Kernel,
    code: &'a mut tmi_program::CodeRegistry,
}

fn split_core(core: &mut tmi_sim::EngineCore) -> EngineCoreView<'_> {
    // `kernel` and `code` are distinct public fields; reborrow them.
    let tmi_sim::EngineCore { kernel, code, .. } = core;
    EngineCoreView { kernel, code }
}

fn base_result(name: &str, cfg: &RunConfig) -> RunResult {
    RunResult {
        workload: name.to_owned(),
        runtime: cfg.runtime.label(),
        halt: Halt::Completed,
        cycles: 0,
        seconds: 0.0,
        ops: 0,
        verified: Ok(()),
        hitm_events: 0,
        perf_records: 0,
        perf_events: 0,
        repaired: false,
        commits: 0,
        converted_at: None,
        t2p_cycles: 0,
        memory_bytes: 0,
        app_bytes: 0,
        faults: 0,
        metrics: MetricsSnapshot::default(),
    }
}

fn finish<R: RuntimeHooks + MetricSource>(
    name: &str,
    cfg: &RunConfig,
    metric_prefix: &str,
    mut built: Built<R>,
    faults: Option<&FaultInjector>,
    fill: impl FnOnce(&R, &tmi_sim::EngineCore, &mut RunResult),
) -> RunResult {
    // Faults target the simulated run, not workload setup: the injector
    // reaches the kernel only once the machine is assembled, so every
    // roll lands between the first and last simulated instruction and
    // the schedule is identical for any host interleaving.
    if let Some(inj) = faults {
        built
            .engine
            .core_mut()
            .kernel
            .set_fault_injector(inj.clone());
    }
    let report = built.engine.run();
    let mut r = base_result(name, cfg);
    r.halt = report.halt.clone();
    r.cycles = report.cycles;
    r.seconds = report.seconds();
    r.ops = report.ops;
    // Snapshot the registry before verification touches the kernel: the
    // counters describe the simulated run, not the post-hoc readback.
    r.metrics = built.engine.metrics(metric_prefix);
    r.hitm_events = r.metrics.u64("machine.hitm_events");
    r.faults = r.metrics.u64("os.total_demand_faults");
    r.app_bytes = built.engine.core().kernel.physmem().peak_allocated_frames() as u64 * FRAME_SIZE;
    r.memory_bytes = r.app_bytes;

    // Verification (only meaningful if the run completed).
    if report.halt == Halt::Completed {
        let core = built.engine.core_mut();
        let EngineCoreView { kernel, code } = split_core(core);
        let mut alloc = SimAllocator::new(VAddr::new(APP_START), 1 << 20, AllocConfig::default());
        let mut ctx = SetupCtx::new(kernel, code, &mut alloc, built.aspace);
        r.verified = built.workload.verify(&mut ctx);
    } else {
        r.verified = Err(format!("run did not complete: {:?}", report.halt));
    }

    let _ = built.layout;
    fill(built.engine.runtime(), built.engine.core(), &mut r);
    r
}

/// The single synchronous entry point every run funnels through: the
/// [`crate::Experiment`] builder, the executor and the service worker
/// pool all lower to a [`JobSpec`] and land here. Honors the spec's
/// fault-schedule seed (a seeded [`FaultInjector`] installed into the
/// kernel and, for TMI runtimes, the perf monitor and repair governor)
/// and its trace flag (second member of the pair: the Chrome
/// `trace_event` JSON document).
pub(crate) fn execute_spec(spec: &JobSpec) -> (RunResult, Option<String>) {
    let injector = (spec.seed != 0).then(|| FaultInjector::new(FaultPlan::from_seed(spec.seed)));
    if spec.trace {
        let tracer = Tracer::enabled();
        let r = execute_with_tracer(&spec.workload, &spec.cfg, &tracer, injector.as_ref());
        let events = tracer.take_events();
        let trace = tmi_telemetry::chrome::export_trace(
            &events,
            &tracer.phases(),
            LatencyModel::CLOCK_HZ,
            Some(&r.metrics),
        );
        (r, Some(trace))
    } else {
        let r = execute_with_tracer(
            &spec.workload,
            &spec.cfg,
            &Tracer::disabled(),
            injector.as_ref(),
        );
        (r, None)
    }
}

fn execute_with_tracer(
    name: &str,
    cfg: &RunConfig,
    tracer: &Tracer,
    faults: Option<&FaultInjector>,
) -> RunResult {
    let tmi_cfg = |preset: TmiConfig| TmiConfig {
        perf: PerfConfig::with_period(cfg.period),
        ..preset
    };
    let make_tmi = |c: TmiConfig| {
        move |l: AppLayout| {
            let mut rt = TmiRuntime::new(c, l);
            rt.set_tracer(tracer.clone());
            if let Some(inj) = faults {
                rt.set_fault_injector(inj.clone());
            }
            rt
        }
    };
    let make_sheriff = |c: SheriffConfig| {
        move |l: AppLayout| {
            let mut rt = SheriffRuntime::new(c, l);
            rt.set_tracer(tracer.clone());
            rt
        }
    };
    match cfg.runtime {
        RuntimeKind::Pthreads | RuntimeKind::TmiAlloc => {
            let built = build(name, cfg, |_| NullRuntime);
            finish(name, cfg, "runtime", built, faults, |_rt, _core, _r| {})
        }
        RuntimeKind::TmiDetect => {
            let built = build(name, cfg, make_tmi(tmi_cfg(TmiConfig::detect_only())));
            finish(name, cfg, "tmi", built, faults, fill_tmi)
        }
        RuntimeKind::TmiProtect => {
            let built = build(name, cfg, make_tmi(tmi_cfg(TmiConfig::protect())));
            finish(name, cfg, "tmi", built, faults, fill_tmi)
        }
        RuntimeKind::TmiPtsbEverywhere => {
            let built = build(name, cfg, make_tmi(tmi_cfg(TmiConfig::ptsb_everywhere())));
            finish(name, cfg, "tmi", built, faults, fill_tmi)
        }
        RuntimeKind::TmiNoCodeCentric => {
            let c = TmiConfig {
                code_centric: false,
                ..tmi_cfg(TmiConfig::protect())
            };
            let built = build(name, cfg, make_tmi(c));
            finish(name, cfg, "tmi", built, faults, fill_tmi)
        }
        RuntimeKind::SheriffDetect => {
            let built = build(name, cfg, make_sheriff(SheriffConfig::detect()));
            finish(name, cfg, "sheriff", built, faults, fill_sheriff)
        }
        RuntimeKind::SheriffProtect => {
            let built = build(name, cfg, make_sheriff(SheriffConfig::protect()));
            finish(name, cfg, "sheriff", built, faults, fill_sheriff)
        }
        RuntimeKind::Laser => {
            let c = LaserConfig {
                perf: PerfConfig::with_period(cfg.period),
                ..Default::default()
            };
            let built = build(name, cfg, |l| LaserRuntime::new(c, l));
            finish(name, cfg, "laser", built, faults, |_rt, _core, r| {
                r.repaired = r.metrics.u64("laser.repaired") != 0;
                r.perf_events = r.metrics.u64("laser.emulated_stores"); // proxy
            })
        }
        RuntimeKind::Plastic => {
            let c = PlasticConfig {
                perf: PerfConfig::with_period(cfg.period),
                ..Default::default()
            };
            let built = build(name, cfg, |l| PlasticRuntime::new(c, l));
            finish(name, cfg, "plastic", built, faults, |_rt, _core, r| {
                r.repaired = r.metrics.u64("plastic.remapped_lines") > 0;
            })
        }
    }
}

fn fill_tmi(rt: &TmiRuntime, core: &tmi_sim::EngineCore, r: &mut RunResult) {
    // The memory breakdown needs the kernel, so it cannot register itself
    // during the engine snapshot; fold it in here under `tmi.memory.`.
    let mem: MemoryBreakdown = rt.observe().memory(&core.kernel);
    r.metrics.absorb("tmi.memory", &mem);
    r.perf_records = r.metrics.u64("tmi.perf.records_taken");
    r.perf_events = r.metrics.u64("tmi.perf.events_seen");
    r.repaired = r.metrics.u64("tmi.repaired") != 0;
    r.commits = r.metrics.u64("tmi.repair.commits");
    r.converted_at = (r.metrics.u64("tmi.repair.converted") != 0)
        .then(|| r.metrics.u64("tmi.repair.converted_at_cycle"));
    r.t2p_cycles = r.metrics.u64("tmi.repair.t2p_cycles");
    r.memory_bytes = r.metrics.u64("tmi.memory.total_bytes");
    r.app_bytes = r.metrics.u64("tmi.memory.app_bytes");
}

fn fill_sheriff(_rt: &SheriffRuntime, _core: &tmi_sim::EngineCore, r: &mut RunResult) {
    r.repaired = true;
    r.commits = r.metrics.u64("sheriff.repair.commits");
    r.t2p_cycles = r.metrics.u64("sheriff.repair.t2p_cycles");
    // Sheriff's overhead: twins + protection state, no perf buffers.
    r.memory_bytes = r.app_bytes + r.metrics.u64("sheriff.repair.twin_peak_bytes");
}

/// Implementation behind [`crate::Experiment::run_detect_report`].
pub(crate) fn execute_detect_report(
    name: &str,
    cfg: &RunConfig,
) -> (RunResult, tmi::ContentionReport, f64) {
    let mut cfg = *cfg;
    cfg.runtime = RuntimeKind::TmiDetect;
    let c = TmiConfig {
        perf: PerfConfig::with_period(cfg.period),
        ..TmiConfig::detect_only()
    };
    let built = build(name, &cfg, |l| TmiRuntime::new(c, l));
    let mut report = tmi::ContentionReport::default();
    let r = finish(name, &cfg, "tmi", built, None, |rt, core, res| {
        fill_tmi(rt, core, res);
        report = tmi::ContentionReport::build(rt.observe().detector(), &core.code, 16);
    });
    let predicted =
        report.predict_manual_speedup_calibrated(r.cycles, cfg.threads, Some(r.perf_events));
    (r, report, predicted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_kind_properties() {
        assert!(RuntimeKind::TmiProtect.has_own_allocator());
        assert!(RuntimeKind::SheriffProtect.has_own_allocator());
        assert!(!RuntimeKind::Pthreads.has_own_allocator());
        assert!(!RuntimeKind::Laser.has_own_allocator());
        for rt in [
            RuntimeKind::Pthreads,
            RuntimeKind::TmiDetect,
            RuntimeKind::SheriffDetect,
        ] {
            assert!(rt.needs_shared_backing());
            assert!(!rt.label().is_empty());
        }
    }

    #[test]
    fn run_config_builders_compose() {
        let c = RunConfig::repair(RuntimeKind::TmiProtect)
            .scale(0.5)
            .fixed()
            .misaligned()
            .huge_pages()
            .period(10);
        assert_eq!(c.threads, 4);
        assert_eq!(c.scale, 0.5);
        assert!(c.fixed && c.misaligned && c.huge_pages);
        assert_eq!(c.period, 10);
        assert!(c.tick_interval < RunConfig::new(RuntimeKind::TmiProtect).tick_interval);
    }

    #[test]
    fn alloc_config_selects_glibc_only_for_sensitive_baselines() {
        let base = RunConfig::repair(RuntimeKind::Pthreads).misaligned();
        let ac = alloc_config(&base, true);
        assert_eq!(ac.policy, AllocPolicy::Glibc);
        assert_eq!(ac.misalign, 8);
        // Runtimes with their own allocator escape the bad layout.
        let tmi = RunConfig::repair(RuntimeKind::TmiProtect).misaligned();
        assert_eq!(alloc_config(&tmi, true).policy, AllocPolicy::Lockless);
        // Non-sensitive workloads keep the default even on baselines.
        assert_eq!(alloc_config(&base, false).policy, AllocPolicy::Lockless);
        // The manual fix also escapes it.
        let fixed = RunConfig::repair(RuntimeKind::Pthreads).fixed();
        assert_eq!(alloc_config(&fixed, true).policy, AllocPolicy::Lockless);
    }

    #[test]
    fn result_time_conversions() {
        let mut r = base_result("x", &RunConfig::new(RuntimeKind::Pthreads));
        r.cycles = 3_400_000;
        r.seconds = 1e-3;
        r.commits = 34;
        r.t2p_cycles = 340_000;
        assert!((r.commits_per_sec() - 34_000.0).abs() < 1.0);
        assert!((r.t2p_micros() - 100.0).abs() < 1e-6);
        assert!(r.ok());
    }
}
