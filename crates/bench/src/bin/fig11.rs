//! Fig. 11 — "Atomic swaps in canneal that require code-centric
//! consistency. In the pictured example, element c is replicated and
//! element b is lost."
//!
//! Runs canneal (whose element swaps use atomics and inline assembly)
//! under four runtimes and verifies the permutation invariant: every
//! element present exactly once. A PTSB without code-centric consistency
//! buffers the swap stores and busy-flag atomics in private pages, so
//! elements get lost and replicated — exactly the corruption the paper
//! shows for Sheriff ("On the simlarge input, sheriff-detect causes
//! canneal to produce an incorrect result", §4.5).

use tmi_bench::report::Table;
use tmi_bench::{run, RunConfig, RuntimeKind};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let mut table = Table::new(&["runtime", "completed", "result"]);

    for rt in [
        RuntimeKind::Pthreads,
        RuntimeKind::TmiProtect,
        RuntimeKind::SheriffProtect,
        RuntimeKind::SheriffDetect,
    ] {
        let mut cfg = RunConfig::repair(rt).scale(scale);
        cfg.max_ops = 30_000_000; // bound broken runs
        let r = run("canneal", &cfg);
        table.row(vec![
            rt.label().to_string(),
            format!("{:?}", r.halt),
            match &r.verified {
                Ok(()) => "correct (all elements present exactly once)".to_string(),
                Err(e) => format!("CORRUPTED: {e}"),
            },
        ]);
    }

    println!("Fig. 11: canneal's atomic swaps under different runtimes (scale {scale})\n");
    table.print();
    println!(
        "\n(paper: Sheriff corrupts canneal because its PTSB has no consistency guard;\n\
         TMI routes the atomic/assembly swap code to shared memory and stays correct)"
    );
}
