//! Fig. 11 — canneal's atomic swaps that require code-centric
//! consistency. Rendering lives in [`tmi_bench::figures::fig11`].

use tmi_bench::Executor;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    print!(
        "{}",
        tmi_bench::figures::fig11(&Executor::from_env(), scale)
    );
}
