//! Internal probe: detector visibility on one workload.
use tmi_bench::{Experiment, RuntimeKind};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "shptr-relaxed".into());
    let r = Experiment::repair(&name)
        .runtime(RuntimeKind::TmiProtect)
        .scale(0.5)
        .misaligned()
        .run();
    println!(
        "{name}: cycles={} hitm(machine)={} perf_events={} perf_records={} repaired={} commits={} conv={:?} halt={:?}",
        r.cycles, r.hitm_events, r.perf_events, r.perf_records, r.repaired, r.commits, r.converted_at, r.halt
    );
}
