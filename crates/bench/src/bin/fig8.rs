//! Fig. 8 — "Memory overheads for TMI. Bars are absolute value in MB (log
//! scale). Lower is better."
//!
//! Compares peak memory under plain pthreads against TMI-full (detection +
//! repair): application frames plus perf event buffers, detector
//! structures (≈90 MB floor for the small benchmarks), twin pages and
//! process-shared lock objects.

use tmi_bench::report::{mb, Table};
use tmi_bench::{run, RunConfig, RuntimeKind};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let mut table = Table::new(&["workload", "pthreads MB", "TMI-full MB", "overhead MB"]);
    let mut ratios = Vec::new();

    for name in tmi_workloads::SUITE {
        let base = run(name, &RunConfig::new(RuntimeKind::Pthreads).scale(scale));
        let tmi = run(name, &RunConfig::new(RuntimeKind::TmiProtect).scale(scale));
        let over = tmi.memory_bytes.saturating_sub(base.memory_bytes);
        if base.memory_bytes > 32 << 20 {
            ratios.push(tmi.memory_bytes as f64 / base.memory_bytes as f64);
        }
        table.row(vec![
            name.to_string(),
            mb(base.memory_bytes),
            mb(tmi.memory_bytes),
            mb(over),
        ]);
    }

    println!("Fig. 8: peak memory usage in MB (8 threads, scale {scale})\n");
    table.print();
    println!();
    println!(
        "Small-footprint workloads carry a fixed ~90 MB of perf buffers and detector\n\
         structures (paper: \"about 90MB of memory overhead\"); for larger workloads the\n\
         relative overhead is modest (paper: 19% beyond the small-memory cases)."
    );
    if !ratios.is_empty() {
        let gm = tmi_bench::report::geomean(&ratios);
        println!("geomean TMI/pthreads over larger workloads: {gm:.2}x");
    }
}
