//! Fig. 8 — "Memory overheads for TMI." Rendering lives in
//! [`tmi_bench::figures::fig8`].

use tmi_bench::Executor;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    print!("{}", tmi_bench::figures::fig8(&Executor::from_env(), scale));
}
