//! §4.3 ablation — targeted page protection vs PTSB-everywhere.
//! Rendering lives in [`tmi_bench::figures::ablate_ptsb_everywhere`].

use tmi_bench::Executor;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    print!(
        "{}",
        tmi_bench::figures::ablate_ptsb_everywhere(&Executor::from_env(), scale)
    );
}
