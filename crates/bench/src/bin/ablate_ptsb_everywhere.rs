//! §4.3 ablation — targeted page protection vs PTSB-everywhere.
//!
//! "histogram suffers a 36% slowdown with PTSB-everywhere, instead of a
//! 29% speedup with Tmi. histogramfs exhibits a 3.26x speedup with
//! PTSB-everywhere but Tmi achieves a 6.27x speedup instead."
//!
//! Runs the repair suite under TMI-protect (targeted) and under the
//! PTSB-everywhere configuration, which arms copy-on-write on *every*
//! application page once repair triggers, so cold pages pay twinning and
//! per-sync diffs for nothing.

use tmi_bench::report::{ratio, Table};
use tmi_bench::{run, RunConfig, RuntimeKind};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let mut table = Table::new(&["workload", "TMI (targeted)", "PTSB-everywhere"]);

    for name in ["histogram", "histogramfs", "lreg", "stringmatch", "shptr-relaxed"] {
        let cfg = |rt| RunConfig::repair(rt).scale(scale).misaligned();
        let base = run(name, &cfg(RuntimeKind::Pthreads));
        let targeted = run(name, &cfg(RuntimeKind::TmiProtect));
        let everywhere = run(name, &cfg(RuntimeKind::TmiPtsbEverywhere));
        assert!(base.ok() && targeted.ok() && everywhere.ok(), "{name}");
        table.row(vec![
            name.to_string(),
            ratio(base.cycles as f64 / targeted.cycles as f64),
            ratio(base.cycles as f64 / everywhere.cycles as f64),
        ]);
    }

    println!("PTSB-everywhere ablation: speedup over pthreads (4 threads, scale {scale})\n");
    table.print();
    println!(
        "\n(paper: indiscriminate PTSB use turns histogram's 1.29x speedup into a 0.74x\n\
         slowdown and halves histogramfs's benefit — motivating targeted repair, §4.3)"
    );
}
