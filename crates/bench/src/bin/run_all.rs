//! Runs every experiment binary's logic in sequence, printing each table —
//! the one-shot regeneration of the paper's full evaluation. Pass a scale
//! factor (default 1.0) to shrink or grow every workload.
//!
//! Equivalent to running: fig3 fig4 fig7 fig8 fig9 table3 fig10 fig11
//! fig12 ablate_ptsb_everywhere table1 — see those binaries for focused
//! runs; this one shells out to each so their output stays identical.

use std::process::Command;

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "1.0".to_string());
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("exe dir");
    let bins = [
        ("fig3", None),
        ("fig4", Some(scale.as_str())),
        ("fig7", Some(scale.as_str())),
        ("fig8", Some(scale.as_str())),
        ("fig9", Some("2.0")),
        ("table3", Some("2.0")),
        ("fig10", Some(scale.as_str())),
        ("fig11", Some("1.0")),
        ("fig12", None),
        ("ablate_ptsb_everywhere", Some("2.0")),
        ("sweep_threads", None),
        ("table1", Some("0.5")),
    ];
    for (bin, arg) in bins {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================\n");
        let mut cmd = Command::new(dir.join(bin));
        if let Some(a) = arg {
            cmd.arg(a);
        }
        let status = cmd.status().unwrap_or_else(|e| panic!("running {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
}
