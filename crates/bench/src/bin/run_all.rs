//! Regenerates the paper's full evaluation in one process: every section
//! of [`tmi_bench::figures`] renders on one shared [`Executor`], so the
//! (workload × runtime) cells fan out over a worker pool and repeated
//! cells — most prominently the pthreads baselines that several figures
//! normalize against — are simulated once.
//!
//! Pass a scale factor (default 1.0) to shrink or grow the sweep
//! sections, or `--quick` for a reduced smoke run (used by
//! `scripts/check.sh`). `TMI_BENCH_JOBS=N` bounds the pool; the printed
//! report is byte-identical for every pool size. A machine-readable
//! per-job timing log (with each cell's metrics-registry snapshot) is
//! written to `BENCH_harness.json` at the end.
//!
//! `--trace out.json` additionally runs one traced `tmi-protect` repair
//! episode (histogramfs, which repairs via T2P conversion rather than
//! allocator repad) and writes its Chrome `trace_event` timeline to
//! `out.json` — load it at `chrome://tracing`
//! or <https://ui.perfetto.dev>. The trace run is separate from the
//! figure cells, so the printed report is unaffected.

use tmi_bench::{figures, Executor, Experiment, RuntimeKind};

fn main() {
    let mut quick = false;
    let mut scale_arg: Option<f64> = None;
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--trace" {
            match args.next() {
                Some(p) => trace_path = Some(p),
                None => {
                    eprintln!("--trace requires an output path");
                    std::process::exit(2);
                }
            }
        } else if let Ok(s) = arg.parse::<f64>() {
            scale_arg = Some(s);
        } else {
            eprintln!("usage: run_all [--quick] [--trace out.json] [scale]");
            std::process::exit(2);
        }
    }
    let scale = scale_arg.unwrap_or(if quick { 0.05 } else { 1.0 });

    let exec = Executor::from_env();
    type Section<'a> = (&'a str, Box<dyn FnOnce(&Executor) -> String + 'a>);
    let sections: Vec<Section> = if quick {
        vec![
            ("fig3", Box::new(|_| figures::fig3())),
            ("fig4", Box::new(move |e| figures::fig4(e, scale))),
            ("fig7", Box::new(move |e| figures::fig7(e, scale))),
            ("fig8", Box::new(move |e| figures::fig8(e, scale))),
            ("fig9", Box::new(|e| figures::fig9(e, 0.25))),
            ("table3", Box::new(|e| figures::table3(e, 0.25))),
            ("fig10", Box::new(move |e| figures::fig10(e, scale))),
            ("fig12", Box::new(figures::fig12)),
            (
                "ablate_ptsb_everywhere",
                Box::new(|e| figures::ablate_ptsb_everywhere(e, 0.25)),
            ),
        ]
    } else {
        vec![
            ("fig3", Box::new(|_| figures::fig3())),
            ("fig4", Box::new(move |e| figures::fig4(e, scale))),
            ("fig7", Box::new(move |e| figures::fig7(e, scale))),
            ("fig8", Box::new(move |e| figures::fig8(e, scale))),
            ("fig9", Box::new(|e| figures::fig9(e, 2.0))),
            ("table3", Box::new(|e| figures::table3(e, 2.0))),
            ("fig10", Box::new(move |e| figures::fig10(e, scale))),
            ("fig11", Box::new(|e| figures::fig11(e, 1.0))),
            ("fig12", Box::new(figures::fig12)),
            (
                "ablate_ptsb_everywhere",
                Box::new(|e| figures::ablate_ptsb_everywhere(e, 2.0)),
            ),
            (
                "sweep_threads",
                Box::new(|e| figures::sweep_threads(e, "lreg", 1.0)),
            ),
            ("table1", Box::new(|e| figures::table1(e, 0.5))),
        ]
    };

    for (name, render) in sections {
        println!("\n================================================================");
        println!("== {name}");
        println!("================================================================\n");
        print!("{}", render(&exec));
    }

    let path = std::path::Path::new("BENCH_harness.json");
    match exec.write_json(path) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    // The traced run prints only to stderr so that stdout stays
    // byte-identical to the golden report whether or not --trace is given.
    if let Some(out) = trace_path {
        let (r, trace) = Experiment::repair("histogramfs")
            .runtime(RuntimeKind::TmiProtect)
            .scale(if quick { 0.25 } else { 1.0 })
            .misaligned()
            .run_traced();
        if let Err(e) = std::fs::write(&out, trace) {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote Chrome trace to {out} (histogramfs under tmi-protect, repaired={}, \
             {} commits; open in chrome://tracing or ui.perfetto.dev)",
            r.repaired, r.commits
        );
    }
}
