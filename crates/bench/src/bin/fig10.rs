//! Fig. 10 — "4KB standard sized pages versus 2MB huge pages for
//! process-shared, file-backed memory allocation." Rendering lives in
//! [`tmi_bench::figures::fig10`].

use tmi_bench::Executor;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    print!(
        "{}",
        tmi_bench::figures::fig10(&Executor::from_env(), scale)
    );
}
