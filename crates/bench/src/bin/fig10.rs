//! Fig. 10 — "Performance overheads (lower is better) of using 4KB
//! standard sized pages versus 2MB huge pages for process-shared,
//! file-backed memory allocation."
//!
//! Runs every workload under tmi-detect with 4 KiB pages and with 2 MiB
//! huge pages and reports the 4 KiB run's overhead relative to the huge-
//! page run. Large-footprint workloads fault once per 4 KiB page of their
//! working set, so huge pages (1 fault per 2 MiB) win there; the paper
//! reports a 6 % mean improvement from huge pages.

use tmi_bench::report::{mean, pct, Table};
use tmi_bench::{run, RunConfig, RuntimeKind};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let mut table = Table::new(&["workload", "4KB faults", "2MB faults", "4KB overhead"]);
    let mut overheads = Vec::new();

    for name in tmi_workloads::SUITE {
        let small = run(name, &RunConfig::new(RuntimeKind::TmiDetect).scale(scale));
        let huge = run(
            name,
            &RunConfig::new(RuntimeKind::TmiDetect).scale(scale).huge_pages(),
        );
        assert!(small.ok() && huge.ok(), "{name}");
        let over = small.cycles as f64 / huge.cycles as f64 - 1.0;
        overheads.push(over);
        table.row(vec![
            name.to_string(),
            small.faults.to_string(),
            huge.faults.to_string(),
            pct(over),
        ]);
    }

    println!("Fig. 10: 4 KiB vs 2 MiB huge pages for the shared file-backed app memory\n");
    table.print();
    println!();
    println!(
        "mean 4KB overhead vs huge pages: {}   (paper: huge pages a 6% overall win,\n\
         dominated by canneal/reverse/fft/fmm/ocean-ncp/radix class workloads)",
        pct(mean(&overheads))
    );
}
