//! Differential consistency fuzz campaign over the TMI repair path.
//!
//! Generates seeded litmus programs ([`tmi_oracle::Litmus`]), runs each
//! through the full repair stack and replays the recorded schedule
//! through the sequentially consistent oracle, reporting any divergence
//! with a minimized program listing and the seed that reproduces it.
//!
//! ```text
//! fuzz_consistency [--seeds N] [--start N] [--ablate-code-centric]
//!                  [--transistency] [--enumerate N] [--ablate-shootdown]
//!                  [--workers N] [--faults SEED] [--trace out.json]
//! ```
//!
//! Exit status is 0 when the campaign matches its mode — zero
//! divergences with code-centric consistency on, at least one with the
//! `--ablate-code-centric` ablation (the Figs. 11–12 failure modes must
//! reproduce) — and 1 otherwise.
//!
//! `--transistency` fuzzes VM operations × consistency: each seed's
//! litmus program interleaves `mprotect`, COW breaks, forced T2P
//! conversions, twin commits and TLB shootdowns with the load/store
//! vocabulary. `--enumerate N` adds a bounded DPOR-lite sweep — up to N
//! deterministic VM-op placements per seed over a small base program.
//! `--ablate-shootdown` drops precise per-PTE TLB shootdowns in the
//! simulated kernel; the campaign must then find divergences (stale
//! translations serving dead frames), or the transistency fuzzer has no
//! teeth.
//!
//! `--faults SEED` runs every checked program under a seeded fault
//! schedule (fork vetoes, out-of-frames, transient mprotect faults, PEBS
//! drops, twin-allocation failures); the per-program fault seed is
//! derived from `(SEED, program seed)`, so any failure reproduces from
//! those two numbers alone. Repair may retry, degrade, roll back or
//! revert — the campaign must still find zero divergences, and (for
//! campaigns large enough to matter) every fault point must fire with
//! retry, rollback and efficacy-revert each exercised at least once.
//!
//! `--trace out.json` re-runs the campaign's first seed with telemetry
//! tracing enabled after the campaign and writes the Chrome `trace_event`
//! timeline of that repaired run to `out.json` (stderr note only; the
//! campaign report on stdout is unchanged).

use tmi_bench::fuzz::{run_campaign, FuzzConfig};

fn main() {
    let mut cfg = FuzzConfig::default();
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("{name} expects a number");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--seeds" => cfg.seeds = num("--seeds"),
            "--start" => cfg.start_seed = num("--start"),
            "--workers" => cfg.workers = Some(num("--workers") as usize),
            "--ablate-code-centric" => cfg.ablate_code_centric = true,
            "--transistency" => cfg.transistency = true,
            "--enumerate" => cfg.enumerate = num("--enumerate"),
            "--ablate-shootdown" => cfg.ablate_shootdown = true,
            "--faults" => cfg.faults = Some(num("--faults")),
            "--trace" => match args.next() {
                Some(p) => trace_path = Some(p),
                None => {
                    eprintln!("--trace requires an output path");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!(
                    "usage: fuzz_consistency [--seeds N] [--start N] \
                     [--ablate-code-centric] [--transistency] [--enumerate N] \
                     [--ablate-shootdown] [--workers N] [--faults SEED] \
                     [--trace out.json]"
                );
                std::process::exit(2);
            }
        }
    }
    if cfg.faults.is_some() && (cfg.ablate_code_centric || cfg.ablate_shootdown) {
        eprintln!(
            "--faults asserts zero divergence and cannot combine with an \
             ablation (which expects divergences)"
        );
        std::process::exit(2);
    }
    if (cfg.ablate_shootdown || cfg.enumerate > 0) && !cfg.transistency {
        eprintln!("--ablate-shootdown and --enumerate require --transistency");
        std::process::exit(2);
    }

    let result = run_campaign(&cfg);
    print!("{}", result.render());

    if let Some(out) = trace_path {
        let check = tmi_oracle::CheckConfig {
            code_centric: !cfg.ablate_code_centric,
            faults: cfg.faults,
            ..Default::default()
        };
        let (report, trace) = tmi_oracle::trace_seed(cfg.start_seed, &check);
        if let Err(e) = std::fs::write(&out, trace) {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote Chrome trace of seed {} to {out} ({} steps, {}; open in \
             chrome://tracing or ui.perfetto.dev)",
            cfg.start_seed,
            report.steps,
            if report.clean() { "clean" } else { "DIVERGED" },
        );
    }

    let coverage_ok = result.faults.as_ref().is_none_or(|f| f.coverage_ok());
    std::process::exit(if result.ok() && coverage_ok { 0 } else { 1 });
}
