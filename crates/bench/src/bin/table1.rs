//! Table 1 — "Requirements for effective false sharing repair", every
//! cell measured from this reproduction. Rendering lives in
//! [`tmi_bench::figures::table1`].

use tmi_bench::Executor;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    print!(
        "{}",
        tmi_bench::figures::table1(&Executor::from_env(), scale)
    );
}
