//! Table 1 — "Requirements for effective false sharing repair":
//! compatibility, memory consistency, overhead without contention, and
//! fraction of the manual speedup attained, for Sheriff, Plastic, LASER
//! and TMI.
//!
//! Every cell is *measured* from this reproduction (Plastic's column
//! reflects our model of its published behaviour — its source was never
//! released):
//!
//! * **compatible** — fraction of the 35-workload suite the system runs
//!   correctly (Sheriff fails on most; the paper reports 11/35);
//! * **memory consistency** — whether canneal/cholesky (atomics, inline
//!   assembly, racy flags) execute correctly;
//! * **overhead w/o contention** — mean overhead across contention-free
//!   workloads;
//! * **% of manual speedup** — across the Fig. 9 repair suite.

use tmi_bench::report::{mean, Table};
use tmi_bench::{run, RunConfig, RuntimeKind};

const QUIET: [&str; 5] = ["blackscholes", "swaptions", "matrix", "pca", "streamcluster"];

fn overhead(rt: RuntimeKind, scale: f64) -> f64 {
    // Fixed stop-the-world costs amortize over realistic run lengths, so
    // measure contention-free overhead at full benchmark scale.
    let scale = scale.max(2.0);
    let mut overs = Vec::new();
    for name in QUIET {
        let base = run(name, &RunConfig::new(RuntimeKind::Pthreads).scale(scale));
        let r = run(name, &RunConfig::new(rt).scale(scale));
        if r.ok() && base.ok() {
            overs.push(r.cycles as f64 / base.cycles as f64 - 1.0);
        }
    }
    mean(&overs)
}

fn manual_fraction(rt: RuntimeKind, scale: f64) -> (f64, usize) {
    // The same metric as fig9: mean over the repair suite of
    // speedup / manual_speedup, at fig9's scale.
    let scale = scale.max(2.0);
    let mut fracs = Vec::new();
    let mut incompatible = 0;
    for name in tmi_workloads::REPAIR_SUITE {
        let spec = tmi_workloads::by_name(name).unwrap().spec();
        if rt == RuntimeKind::SheriffProtect && !spec.sheriff_compatible {
            incompatible += 1;
            continue;
        }
        let cfg = |k| RunConfig::repair(k).scale(scale).misaligned();
        let base = run(name, &cfg(RuntimeKind::Pthreads));
        let manual = run(name, &RunConfig::repair(RuntimeKind::Pthreads).scale(scale).fixed());
        let mut rcfg = cfg(rt);
        rcfg.max_ops = 60_000_000;
        let r = run(name, &rcfg);
        if !r.ok() {
            incompatible += 1;
            continue;
        }
        let manual_speedup = base.cycles as f64 / manual.cycles as f64;
        let speedup = base.cycles as f64 / r.cycles as f64;
        fracs.push(speedup / manual_speedup);
    }
    (mean(&fracs), incompatible)
}

fn consistency_ok(rt: RuntimeKind) -> bool {
    let mut canneal_cfg = RunConfig::repair(rt).scale(0.5);
    canneal_cfg.max_ops = 20_000_000;
    let canneal = run("canneal", &canneal_cfg);
    let mut chol_cfg = RunConfig::repair(rt);
    chol_cfg.max_ops = 6_000_000;
    let cholesky = run("cholesky", &chol_cfg);
    canneal.ok() && cholesky.ok()
}

fn suite_compat(rt: RuntimeKind, scale: f64) -> usize {
    tmi_workloads::SUITE
        .iter()
        .filter(|name| {
            let spec = tmi_workloads::by_name(name).unwrap().spec();
            if matches!(rt, RuntimeKind::SheriffDetect | RuntimeKind::SheriffProtect)
                && !spec.sheriff_compatible
            {
                return false;
            }
            let mut cfg = RunConfig::new(rt).scale(scale);
            cfg.max_ops = 40_000_000;
            run(name, &cfg).ok()
        })
        .count()
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let n = tmi_workloads::SUITE.len();

    let mut table = Table::new(&["requirement", "Sheriff", "Plastic", "LASER", "TMI"]);

    let compat: Vec<String> = [
        RuntimeKind::SheriffDetect,
        RuntimeKind::Plastic,
        RuntimeKind::Laser,
        RuntimeKind::TmiDetect,
    ]
    .iter()
    .map(|&rt| format!("{}/{n}", suite_compat(rt, scale)))
    .collect();
    table.row({
        let mut v = vec!["compatible (suite coverage)".to_string()];
        v.extend(compat);
        v
    });

    let cons: Vec<String> = [
        RuntimeKind::SheriffProtect,
        RuntimeKind::Plastic,
        RuntimeKind::Laser,
        RuntimeKind::TmiProtect,
    ]
    .iter()
    .map(|&rt| if consistency_ok(rt) { "yes".into() } else { "NO".into() })
    .collect();
    table.row({
        let mut v = vec!["memory consistency preserved".to_string()];
        v.extend(cons);
        v
    });

    let overs: Vec<String> = [
        RuntimeKind::SheriffDetect,
        RuntimeKind::Plastic,
        RuntimeKind::Laser,
        RuntimeKind::TmiDetect,
    ]
    .iter()
    .map(|&rt| format!("{:+.0}%", overhead(rt, scale) * 100.0))
    .collect();
    table.row({
        let mut v = vec!["overhead w/o contention".to_string()];
        v.extend(overs);
        v
    });

    let fracs: Vec<String> = [
        RuntimeKind::SheriffProtect,
        RuntimeKind::Plastic,
        RuntimeKind::Laser,
        RuntimeKind::TmiProtect,
    ]
    .iter()
    .map(|&rt| {
        let (f, skipped) = manual_fraction(rt, scale);
        if skipped > 0 {
            format!("{:.0}% ({skipped} n/a)", f * 100.0)
        } else {
            format!("{:.0}%", f * 100.0)
        }
    })
    .collect();
    table.row({
        let mut v = vec!["% of manual speedup".to_string()];
        v.extend(fracs);
        v
    });

    println!("Table 1: requirements matrix, measured from this reproduction (scale {scale})\n");
    table.print();
    println!(
        "\n(paper: Sheriff 27% overhead / 92% of manual / consistency broken;\n\
         Plastic 6% / ~30%; LASER 2% / 24%; TMI 2% / 88%)"
    );
}
