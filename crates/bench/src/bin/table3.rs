//! Table 3 — "Characterization of TMI's false sharing repair". Rendering
//! lives in [`tmi_bench::figures::table3`].

use tmi_bench::Executor;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    print!(
        "{}",
        tmi_bench::figures::table3(&Executor::from_env(), scale)
    );
}
