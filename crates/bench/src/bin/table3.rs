//! Table 3 — "Characterization of TMI's false sharing repair": how long
//! the program ran unrepaired (detection latency), the thread-to-process
//! conversion cost, and the PTSB commit rate.

use tmi_bench::report::Table;
use tmi_bench::{run, RunConfig, RuntimeKind};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let mut table = Table::new(&["app", "unrepaired (ms sim)", "T2P (us)", "commits/s"]);

    for name in tmi_workloads::REPAIR_SUITE {
        let r = run(
            name,
            &RunConfig::repair(RuntimeKind::TmiProtect).scale(scale).misaligned(),
        );
        assert!(r.ok(), "{name}: {:?}", r.verified);
        let unrepaired_ms = r
            .converted_at
            .map(|c| c as f64 / 3.4e6)
            .unwrap_or(f64::NAN);
        table.row(vec![
            name.to_string(),
            if unrepaired_ms.is_nan() {
                "no T2P (allocator/lock repair)".to_string()
            } else {
                format!("{unrepaired_ms:.2}")
            },
            format!("{:.0}", r.t2p_micros()),
            format!("{:.2}", r.commits_per_sec()),
        ]);
    }

    println!("Table 3: TMI repair characterization (4 threads, scale {scale})\n");
    table.print();
    println!(
        "\n(paper: detection within 1-2 s of its 1 Hz analysis — here scaled to the\n\
         simulator's tick; T2P under 200 us for all applications; commit rates span\n\
         0.38-34 per second across the suite)"
    );
}
