//! Fig. 12 — "Racy code in cholesky that executes incorrectly without
//! code-centric consistency. T0's version of flag never updates ... the
//! program hangs."
//!
//! cholesky's legacy `volatile`-flag synchronization: thread 0 writes the
//! flag's page (dirtying it) and then polls the flag that thread 1
//! eventually sets. Under a whole-heap PTSB with no consistency guard the
//! polling thread reads its stale private copy forever — the run hangs
//! (the paper: "sheriff-detect and sheriff-protect hang on cholesky").
//! TMI's code-centric consistency honors the volatile intent and routes
//! the polls to shared memory.

use tmi_bench::report::Table;
use tmi_bench::{run, RunConfig, RuntimeKind};
use tmi_sim::Halt;

fn main() {
    let mut table = Table::new(&["runtime", "outcome", "flag visible"]);

    for rt in [
        RuntimeKind::Pthreads,
        RuntimeKind::TmiDetect,
        RuntimeKind::TmiProtect,
        RuntimeKind::SheriffProtect,
        RuntimeKind::SheriffDetect,
    ] {
        let mut cfg = RunConfig::repair(rt);
        cfg.max_ops = 8_000_000; // bound the hang
        let r = run("cholesky", &cfg);
        let outcome = match r.halt {
            Halt::Completed => "completed".to_string(),
            Halt::Hang => "HANGS (stale private flag)".to_string(),
            Halt::Fault(ref e) => format!("fault: {e}"),
        };
        table.row(vec![
            rt.label().to_string(),
            outcome,
            match &r.verified {
                Ok(()) => "yes".to_string(),
                Err(e) => e.clone(),
            },
        ]);
    }

    println!("Fig. 12: cholesky's volatile-flag synchronization under different runtimes\n");
    table.print();
    println!(
        "\n(paper: Sheriff hangs on cholesky; TMI performs detection on all of these\n\
         benchmarks without causing incorrect results, §4.5)"
    );
}
