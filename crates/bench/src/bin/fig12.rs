//! Fig. 12 — cholesky's racy volatile-flag synchronization that hangs
//! without code-centric consistency. Rendering lives in
//! [`tmi_bench::figures::fig12`].

use tmi_bench::Executor;

fn main() {
    print!("{}", tmi_bench::figures::fig12(&Executor::from_env()));
}
