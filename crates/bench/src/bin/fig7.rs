//! Fig. 7 — "Performance of TMI's allocator and false sharing detection
//! compared to sheriff-detect." Rendering lives in
//! [`tmi_bench::figures::fig7`].

use tmi_bench::Executor;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    print!("{}", tmi_bench::figures::fig7(&Executor::from_env(), scale));
}
