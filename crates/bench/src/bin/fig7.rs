//! Fig. 7 — "Performance of TMI's allocator and false sharing detection
//! compared to sheriff-detect. All bars are normalized to pthreads
//! execution using the Lockless allocator (lower is better)."
//!
//! Runs all 35 workloads at 8 threads under: sheriff-detect (where
//! compatible), tmi-alloc (allocations redirected to process-shared
//! memory), and tmi-detect (full monitoring, no repair). The paper reports
//! a 2 % mean overhead for tmi-detect with a 17 % maximum on kmeans, and
//! Sheriff compatible with only 11 of 35 workloads.

use tmi_bench::report::{mean, Table};
use tmi_bench::{run, RunConfig, RuntimeKind};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let mut table = Table::new(&["workload", "sheriff-detect", "tmi-alloc", "tmi-detect"]);
    let mut detect_over = Vec::new();
    let mut sheriff_compat = 0usize;

    for name in tmi_workloads::SUITE {
        let spec = tmi_workloads::by_name(name).unwrap().spec();
        let base = run(name, &RunConfig::new(RuntimeKind::Pthreads).scale(scale));
        assert!(base.ok(), "{name} baseline: {:?}", base.verified);
        let norm = |r: &tmi_bench::RunResult| r.cycles as f64 / base.cycles as f64;

        let sheriff_cell = if spec.sheriff_compatible {
            sheriff_compat += 1;
            let r = run(name, &RunConfig::new(RuntimeKind::SheriffDetect).scale(scale));
            if r.ok() {
                format!("{:.2}", norm(&r))
            } else {
                "broken".to_string()
            }
        } else {
            "x".to_string()
        };
        let alloc = run(name, &RunConfig::new(RuntimeKind::TmiAlloc).scale(scale));
        let detect = run(name, &RunConfig::new(RuntimeKind::TmiDetect).scale(scale));
        assert!(detect.ok(), "{name} tmi-detect: {:?}", detect.verified);
        detect_over.push(norm(&detect));

        table.row(vec![
            name.to_string(),
            sheriff_cell,
            format!("{:.2}", norm(&alloc)),
            format!("{:.2}", norm(&detect)),
        ]);
    }

    println!("Fig. 7: detection overhead, normalized to pthreads (8 threads, scale {scale})\n");
    table.print();
    println!();
    println!(
        "tmi-detect mean overhead: {:+.1}%   (paper: +2% mean, +17% max)",
        (mean(&detect_over) - 1.0) * 100.0
    );
    println!(
        "tmi-detect max overhead:  {:+.1}%",
        (detect_over.iter().cloned().fold(f64::MIN, f64::max) - 1.0) * 100.0
    );
    println!(
        "sheriff-compatible workloads: {sheriff_compat} of {}   (paper: 11 of 35)",
        tmi_workloads::SUITE.len()
    );
}
