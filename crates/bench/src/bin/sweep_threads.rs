//! Extension ablation (not a paper figure): how false-sharing cost and
//! TMI's recovered fraction scale with thread count. The paper evaluates
//! at fixed 4 (repair) and 8 (detection) threads; this sweep shows the
//! contention growing superlinearly with sharers and TMI tracking the
//! manual fix across the range.

use tmi_bench::report::{ratio, Table};
use tmi_bench::{run, RunConfig, RuntimeKind};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lreg".to_string());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let mut table = Table::new(&["threads", "FS slowdown (buggy/fixed)", "TMI speedup", "TMI % of manual"]);

    for threads in [2usize, 4, 8, 16] {
        let cfg = |rt| {
            let mut c = RunConfig::repair(rt).scale(scale).misaligned();
            c.threads = threads;
            c
        };
        let base = run(&name, &cfg(RuntimeKind::Pthreads));
        let fixed = {
            let mut c = RunConfig::repair(RuntimeKind::Pthreads).scale(scale).fixed();
            c.threads = threads;
            run(&name, &c)
        };
        let tmi = run(&name, &cfg(RuntimeKind::TmiProtect));
        assert!(base.ok() && fixed.ok() && tmi.ok(), "{name} @ {threads}");
        let manual = base.cycles as f64 / fixed.cycles as f64;
        let s_tmi = base.cycles as f64 / tmi.cycles as f64;
        table.row(vec![
            threads.to_string(),
            ratio(manual),
            ratio(s_tmi),
            format!("{:.0}%", 100.0 * s_tmi / manual),
        ]);
    }

    println!("Thread-count sweep on {name} (scale {scale})\n");
    table.print();
    println!("\n(extension: more sharers per line → more invalidation traffic per write →");
    println!(" larger false-sharing penalty; TMI's repair tracks the manual fix throughout)");
}
