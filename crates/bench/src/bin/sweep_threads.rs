//! Extension ablation (not a paper figure): false-sharing cost and TMI's
//! recovered fraction vs thread count. Rendering lives in
//! [`tmi_bench::figures::sweep_threads`].

use tmi_bench::Executor;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "lreg".to_string());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    print!(
        "{}",
        tmi_bench::figures::sweep_threads(&Executor::from_env(), &name, scale)
    );
}
