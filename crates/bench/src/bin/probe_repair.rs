//! Internal probe: repair effectiveness across the Fig. 9 suite.
use std::time::Instant;
use tmi_bench::{Experiment, RuntimeKind};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    for name in tmi_workloads::REPAIR_SUITE {
        let cfg = |rt| {
            Experiment::repair(name)
                .runtime(rt)
                .scale(scale)
                .misaligned()
        };
        let t0 = Instant::now();
        let base = cfg(RuntimeKind::Pthreads).run();
        let manual = Experiment::repair(name).scale(scale).fixed().run();
        let tmi = cfg(RuntimeKind::TmiProtect).run();
        let laser = cfg(RuntimeKind::Laser).run();
        let sp = |r: &tmi_bench::RunResult| base.cycles as f64 / r.cycles as f64;
        println!(
            "{name:14} manual={:5.2}x tmi={:5.2}x (rep={} commits={}) laser={:5.2}x (rep={}) ok={}{}{} host={:.1}s",
            sp(&manual), sp(&tmi), tmi.repaired, tmi.commits, sp(&laser), laser.repaired,
            base.ok() as u8, manual.ok() as u8, tmi.ok() as u8,
            t0.elapsed().as_secs_f64()
        );
    }
}
