//! Fig. 3 — "A simple assembly program that reveals the semantics of
//! aligned multi-byte stores... the assert can never fail. However, it can
//! fail with PTSBs."
//!
//! Two threads store `0xAB00` and `0x00CD` to the same aligned 2-byte
//! location `x`. Every hardware memory model guarantees aligned multi-byte
//! store atomicity (AMBSA), so natively `x` ends as one of the two stored
//! values. A page-twinning store buffer diffs pages at *byte*
//! granularity: each thread's unchanged zero byte is invisible to the
//! diff, the merges interleave, and `x` becomes `0xABCD` — a value no
//! thread ever wrote.
//!
//! This binary runs the litmus natively (pthreads), under Sheriff's
//! guard-less PTSB (tearing expected), and under TMI with code-centric
//! consistency (the stores sit in an assembly region, so they are routed
//! to shared memory and AMBSA holds).

use tmi_baselines::{SheriffConfig, SheriffRuntime};
use tmi_bench::report::Table;
use tmi_machine::{VAddr, Width, FRAME_SIZE};
use tmi_os::MapRequest;
use tmi_program::{InstrKind, Op, SequenceProgram};
use tmi_sim::{Engine, EngineConfig, NullRuntime, RuntimeHooks};
use tmi::{AppLayout, TmiConfig, TmiRuntime};

const APP: u64 = 0x10_0000;
const INTERNAL: u64 = 0x80_0000;

fn litmus<R: RuntimeHooks>(runtime: R, in_asm_region: bool) -> u64 {
    let mut e = Engine::new(EngineConfig::with_cores(2), runtime);
    let app_obj = e.core_mut().kernel.create_object(16 * FRAME_SIZE);
    let int_obj = e.core_mut().kernel.create_object(4 * FRAME_SIZE);
    let aspace = e.core_mut().kernel.create_aspace();
    e.core_mut()
        .kernel
        .map(aspace, MapRequest::object(VAddr::new(APP), 16 * FRAME_SIZE, app_obj, 0))
        .unwrap();
    e.core_mut()
        .kernel
        .map(aspace, MapRequest::object(VAddr::new(INTERNAL), 4 * FRAME_SIZE, int_obj, 0))
        .unwrap();
    e.create_root_process(aspace);

    let x = VAddr::new(APP + 0x100); // 2-byte aligned
    let st = e.core_mut().code.asm_instr("litmus::store_x", InstrKind::Store, Width::W2);
    for value in [0xAB00u64, 0x00CD] {
        let mut ops = Vec::new();
        if in_asm_region {
            ops.push(Op::AsmEnter);
        }
        ops.push(Op::Store { pc: st, addr: x, width: Width::W2, value });
        if in_asm_region {
            ops.push(Op::AsmExit);
        }
        e.add_thread(Box::new(SequenceProgram::new(ops)));
    }
    let r = e.run();
    assert!(r.completed(), "litmus must complete: {:?}", r.halt);
    let pa = e.core_mut().kernel.object_paddr(aspace, x).unwrap();
    e.core_mut().kernel.physmem().read(pa, Width::W2)
}

fn layout() -> AppLayout {
    AppLayout {
        app_obj: tmi_os::ObjId(0),
        app_start: VAddr::new(APP),
        app_len: 16 * FRAME_SIZE,
        internal_obj: tmi_os::ObjId(1),
        internal_start: VAddr::new(INTERNAL),
        internal_len: 4 * FRAME_SIZE,
        huge_pages: false,
    }
}

fn main() {
    let mut table = Table::new(&["execution", "final x", "AMBSA"]);
    let verdict = |x: u64| {
        if x == 0xAB00 || x == 0x00CD {
            "preserved".to_string()
        } else {
            format!("VIOLATED (x = {x:#06x}, written by no thread)")
        }
    };

    let native = litmus(NullRuntime, true);
    table.row(vec!["native (pthreads)".into(), format!("{native:#06x}"), verdict(native)]);

    // Sheriff: whole-heap PTSB, no consistency guard → word tearing.
    let sheriff = litmus(SheriffRuntime::new(SheriffConfig::protect(), layout()), true);
    table.row(vec!["sheriff-protect".into(), format!("{sheriff:#06x}"), verdict(sheriff)]);

    // TMI with code-centric consistency, PTSB-everywhere armed via the
    // ablation config plus a pre-triggered repair: asm-region stores are
    // routed to shared memory, so AMBSA holds even with the page armed.
    let tmi = litmus(TmiRuntime::new(TmiConfig::protect(), layout()), true);
    table.row(vec!["tmi-protect".into(), format!("{tmi:#06x}"), verdict(tmi)]);

    println!("Fig. 3: the AMBSA word-tearing litmus\n");
    table.print();
    println!(
        "\nThe merge interleaving (Fig. 2/3): each thread's diff sees only its one\n\
         changed byte, so both bytes land in shared memory: 0xABCD.\n\
         (tmi-sim's twin-store unit tests exercise the same tearing deterministically:\n\
         crates/core/src/twins.rs::word_tearing_is_reproducible_at_byte_granularity)"
    );
}
