//! Fig. 3 — the AMBSA word-tearing litmus (see
//! [`tmi_bench::figures::fig3`] for the full story).

fn main() {
    print!("{}", tmi_bench::figures::fig3());
}
