//! Fig. 4 — "Performance and precision of HITM events reported by perf
//! with various sampling periods on leveldb." Rendering lives in
//! [`tmi_bench::figures::fig4`].

use tmi_bench::Executor;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    print!("{}", tmi_bench::figures::fig4(&Executor::from_env(), scale));
}
