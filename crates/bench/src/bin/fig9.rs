//! Fig. 9 — "Speedup over pthreads for benchmarks where TMI automatically
//! repairs false sharing." Rendering lives in
//! [`tmi_bench::figures::fig9`].

use tmi_bench::Executor;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    print!("{}", tmi_bench::figures::fig9(&Executor::from_env(), scale));
}
