//! Fig. 9 — "Speedup over pthreads (higher is better) for benchmarks where
//! TMI automatically repairs false sharing."
//!
//! For each workload of the repair suite, runs: the buggy baseline
//! (pthreads, with the misaligned allocation that exposes the bug, §4.3),
//! the manual source fix, Sheriff-protect (where compatible), LASER, and
//! TMI-protect, all at 4 threads (§4.1). Prints speedups over the buggy
//! baseline and the average fraction of the manual speedup TMI attains
//! (the paper reports 88 %, and a 5.2× mean TMI speedup).

use tmi_bench::report::{mean, ratio, Table};
use tmi_bench::{run, RunConfig, RuntimeKind};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let mut table = Table::new(&["workload", "manual", "sheriff-protect", "LASER", "TMI-protect"]);
    let mut tmi_speedups = Vec::new();
    let mut manual_fracs = Vec::new();

    for name in tmi_workloads::REPAIR_SUITE {
        let spec = tmi_workloads::by_name(name).unwrap().spec();
        let cfg = |rt| RunConfig::repair(rt).scale(scale).misaligned();
        let base = run(name, &cfg(RuntimeKind::Pthreads));
        assert!(base.ok(), "{name} baseline failed: {:?}", base.verified);
        let speedup = |r: &tmi_bench::RunResult| {
            if r.ok() {
                base.cycles as f64 / r.cycles as f64
            } else {
                f64::NAN
            }
        };

        let manual = run(name, &RunConfig::repair(RuntimeKind::Pthreads).scale(scale).fixed());
        let tmi = run(name, &cfg(RuntimeKind::TmiProtect));
        let laser = run(name, &cfg(RuntimeKind::Laser));
        let sheriff = spec
            .sheriff_compatible
            .then(|| run(name, &cfg(RuntimeKind::SheriffProtect)));

        let s_manual = speedup(&manual);
        let s_tmi = speedup(&tmi);
        tmi_speedups.push(s_tmi);
        manual_fracs.push(s_tmi / s_manual);

        table.row(vec![
            name.to_string(),
            ratio(s_manual),
            sheriff
                .as_ref()
                .map(|r| {
                    if r.ok() {
                        ratio(speedup(r))
                    } else {
                        "broken".to_string()
                    }
                })
                .unwrap_or_else(|| "incompatible".to_string()),
            ratio(speedup(&laser)),
            ratio(s_tmi),
        ]);
    }

    println!("Fig. 9: repair speedups over pthreads (4 threads, scale {scale})\n");
    table.print();
    println!();
    println!(
        "TMI mean speedup: {:.2}x   (paper: 5.2x mean across the repaired programs)",
        mean(&tmi_speedups)
    );
    println!(
        "TMI fraction of manual speedup: {:.0}%   (paper: 88%)",
        mean(&manual_fracs) * 100.0
    );
}
