//! Wall-clock throughput gate for the fast-path memory pipeline
//! (`scripts/bench.sh`).
//!
//! ```text
//! bench_perf [--quick] [--out BENCH_perf.json] [--run-all-wall FAST REF]
//!            [--par-wall THREADS SECS]...
//! bench_perf --profile
//! bench_perf --check BENCH_perf.json
//! ```
//!
//! `--run-all-wall FAST REF` embeds externally measured `run_all --quick`
//! wall times (seconds, fast path vs `TMI_FASTPATH=off` reference) as a
//! `run_all_quick` object — `scripts/bench.sh` measures and passes them.
//!
//! `--par-wall THREADS SECS` (repeatable) embeds externally measured
//! `run_all --quick` wall times at different `TMI_SIM_THREADS` shard
//! counts. Each non-baseline count becomes a `sim/run_all_par{N}` cell
//! whose `fast` variant is the N-shard wall and whose `reference` is the
//! 1-shard wall, so `speedup` reads as parallel scaling. Both walls run
//! the fast accelerator path, so the ratio isolates host sharding. The
//! simulated output is byte-identical across shard counts
//! (`scripts/bench.sh` diffs it); only the wall clock moves. The report
//! records the host's core count (`host_cores`), and any cell whose
//! shard count exceeds it is marked `"advisory": true` — oversubscribed
//! workers cannot speed anything up, they only measure scheduling
//! overhead.
//!
//! `--profile` runs a synthetic engine workload twice — speculation on
//! and off — with host-phase attribution enabled and prints where the
//! wall time goes (walk / commit / replay / barrier). This is the
//! observability face of the speculative-prefetch work: with speculation
//! on, private memory ops migrate from the serial replay into the
//! parallel walk + barrier commit, and the replay's wall share drops.
//!
//! Every cell times the same workload with the fast-path accelerators
//! (software TLBs, sharer/owner directory) forced on and forced off, and
//! reports host-time throughput for both plus the speedup. The simulated
//! behavior of the two variants is byte-identical (see
//! `tests/fastpath_equivalence.rs`); only host time may differ.
//!
//! Wall-clock ratios on shared machines are noisy, so each microbenchmark
//! cell runs several back-to-back fast/reference pairs and reports the
//! quietest pair — the one with the smallest combined wall time (ambient
//! load only ever adds time). Both variants are taken from the same pair
//! so that slow host-speed drift (frequency scaling, hypervisor steal)
//! cancels out of the ratio instead of biasing whichever variant caught
//! the lucky window. Rep sizes are fixed; `--quick` only reduces the
//! number of pairs. The end-to-end cell stays single-shot — it runs
//! seconds, not milliseconds, and amortizes its own noise. Cells:
//!
//! * `machine/local_hit` — repeated private-cache hits: the flat tag
//!   array's best case, no coherence traffic.
//! * `machine/false_sharing_pingpong` — two cores alternating stores to
//!   one line: every access probes for a remote modified copy.
//! * `machine/snoop_storm` — 32 cores streaming over a shared working
//!   set: the directory absorbs the O(cores) broadcast snoops.
//! * `os/translate_hit` — the kernel translation fast path over resident
//!   pages: TLB hit vs full page-table walk.
//! * `sim/histogram_e2e` — one full harness experiment end to end
//!   (`ops` counts runs, not accesses), toggled via the typed
//!   [`tmi_sim::FastPath`] configuration.
//!
//! `--check` re-parses an emitted report and fails (exit 1) if it is
//! malformed: wrong schema tag, no cells, or non-positive timings. It
//! deliberately does not gate on a speedup threshold — wall-clock ratios
//! on shared CI machines are advisory, the JSON contract is not.

use std::process::exit;
use std::time::Instant;

use tmi_bench::{Experiment, RuntimeKind};
use tmi_machine::{AccessKind, Machine, MachineConfig, PhysAddr, Width};
use tmi_telemetry::json::{self, Json};

/// One timed variant: total ops, elapsed seconds and derived rates.
#[derive(Clone, Copy, Debug)]
struct Sample {
    secs: f64,
    ns_per_op: f64,
    ops_per_sec: f64,
}

fn sample(ops: u64, f: impl FnOnce()) -> Sample {
    let t0 = Instant::now();
    f();
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Sample {
        secs,
        ns_per_op: secs * 1e9 / ops as f64,
        ops_per_sec: ops as f64 / secs,
    }
}

/// Runs `reps` back-to-back (fast, reference) pairs of `cell` and returns
/// the pair with the smallest combined wall time. Both reported variants
/// come from the *same* pair on purpose: on hosts whose effective CPU
/// speed drifts slowly (frequency scaling, hypervisor steal), per-variant
/// minima land in different time windows and a lucky window for one
/// variant alone skews the ratio, while within one back-to-back pair the
/// drift cancels out of it.
fn best_of(ops: u64, reps: usize, cell: impl Fn(u64, bool) -> Sample) -> (Sample, Sample) {
    let mut best: Option<(Sample, Sample)> = None;
    for _ in 0..reps {
        let fast = cell(ops, true);
        let reference = cell(ops, false);
        let better = match &best {
            None => true,
            Some((bf, br)) => fast.secs + reference.secs < bf.secs + br.secs,
        };
        if better {
            best = Some((fast, reference));
        }
    }
    best.expect("reps is positive")
}

struct Cell {
    name: String,
    ops: u64,
    fast: Sample,
    reference: Sample,
    /// True when the cell's conditions make its ratio informational only
    /// (e.g. a parallel-scaling shard count above the host's core count).
    advisory: bool,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.reference.ns_per_op / self.fast.ns_per_op
    }
}

/// The host's logical core count, as a scaling ceiling for the
/// `sim/run_all_par{N}` cells.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn machine(cores: usize, directory: bool) -> Machine {
    Machine::new(MachineConfig {
        directory,
        ..MachineConfig::with_cores(cores)
    })
}

/// Repeated loads of one resident line on one core.
fn local_hit(ops: u64, directory: bool) -> Sample {
    let mut m = machine(4, directory);
    let a = PhysAddr::new(0x1000);
    m.access(0, a, AccessKind::Store, Width::W8);
    sample(ops, || {
        for _ in 0..ops {
            m.access(0, a, AccessKind::Load, Width::W8);
        }
    })
}

/// Two cores alternating stores to the same line: a HITM per access.
fn pingpong(ops: u64, directory: bool) -> Sample {
    let mut m = machine(2, directory);
    let a = PhysAddr::new(0x2000);
    sample(ops, || {
        for i in 0..ops {
            m.access((i & 1) as usize, a, AccessKind::Store, Width::W8);
        }
    })
}

/// 32 cores streaming a mixed load/store pattern over a working set
/// larger than any private cache — fills, evictions and invalidations
/// dominate, so the reference path broadcasts snoops to 31 siblings.
fn snoop_storm(ops: u64, directory: bool) -> Sample {
    const CORES: usize = 32;
    let mut m = machine(CORES, directory);
    let mut x = 0x9E37_79B9u64;
    sample(ops, || {
        for i in 0..ops {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 4096;
            let kind = if x & 3 == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            m.access(
                (i as usize) % CORES,
                PhysAddr::new(line * 64),
                kind,
                Width::W8,
            );
        }
    })
}

/// The kernel translation fast path over a resident working set.
fn translate_hit(ops: u64, tlb: bool) -> Sample {
    use tmi_machine::{VAddr, FRAME_SIZE};
    use tmi_os::{Kernel, MapRequest};
    const PAGES: u64 = 64;
    let mut k = Kernel::with_tlb(tlb);
    let obj = k.create_object(PAGES * FRAME_SIZE);
    let aspace = k.create_aspace();
    k.map(
        aspace,
        MapRequest::object(VAddr::new(0x10000), PAGES * FRAME_SIZE, obj, 0),
    )
    .expect("map");
    for p in 0..PAGES {
        k.handle_fault(aspace, VAddr::new(0x10000 + p * FRAME_SIZE), true)
            .expect("fault in");
    }
    sample(ops, || {
        for i in 0..ops {
            let addr = VAddr::new(0x10000 + (i % PAGES) * FRAME_SIZE + (i * 8) % FRAME_SIZE);
            let _ = std::hint::black_box(k.translate(aspace, addr, false));
        }
    })
}

/// One full harness experiment end to end; the reference variant disables
/// the accelerators through the typed [`tmi_sim::FastPath`] config — the
/// same knob `TMI_FASTPATH=off` snapshots at startup — so no process
/// environment is mutated mid-run (the old `set_var`/`remove_var` toggle
/// raced with the parallel executor's worker threads).
fn histogram_e2e(runs: u64, fastpath: bool) -> Sample {
    let fp = if fastpath {
        tmi_sim::FastPath::enabled()
    } else {
        tmi_sim::FastPath::reference()
    };
    sample(runs, || {
        for _ in 0..runs {
            let r = Experiment::repair("histogram")
                .runtime(RuntimeKind::TmiProtect)
                .scale(0.05)
                .misaligned()
                .fast_path(fp)
                .run();
            assert!(r.ok(), "histogram experiment failed");
        }
    })
}

fn run_cells(quick: bool) -> Vec<Cell> {
    // Rep sizes are fixed per cell — small enough that one fast/reference
    // pair completes inside a host-speed drift window, large enough to
    // amortize timer and dispatch overhead. `--quick` reduces the number
    // of pairs, not their size, so both modes measure the same thing and
    // differ only in how hard they squeeze the noise.
    let reps = |full: usize| if quick { (full / 3).max(2) } else { full };
    let micro = |name: &'static str, ops: u64, n_reps: usize, cell: fn(u64, bool) -> Sample| {
        let (fast, reference) = best_of(ops, n_reps, cell);
        Cell {
            name: name.to_string(),
            ops,
            fast,
            reference,
            advisory: false,
        }
    };
    let cells = vec![
        micro("machine/local_hit", 4_000_000, reps(15), local_hit),
        micro(
            "machine/false_sharing_pingpong",
            4_000_000,
            reps(15),
            pingpong,
        ),
        micro("machine/snoop_storm", 1_000_000, reps(9), snoop_storm),
        micro("os/translate_hit", 4_000_000, reps(9), translate_hit),
        Cell {
            name: "sim/histogram_e2e".to_string(),
            ops: 1,
            fast: histogram_e2e(1, true),
            reference: histogram_e2e(1, false),
            advisory: false,
        },
    ];
    cells
}

/// Synthesizes the `sim/run_all_par{N}` parallel-scaling cells from
/// externally measured `run_all --quick` walls (`--par-wall`). The
/// 1-shard wall is the reference of every cell; each other shard count
/// is a `fast` variant, so the reported speedup is the scaling ratio —
/// a fast-path-vs-fast-path comparison by construction (both walls come
/// from the same accelerator configuration, only `TMI_SIM_THREADS`
/// differs). Cells whose shard count exceeds the host's cores are
/// advisory: the extra workers can only contend.
fn par_scale_cells(walls: &[(usize, f64)], cores: usize) -> Vec<Cell> {
    let wall_sample = |secs: f64| {
        let secs = secs.max(1e-9);
        Sample {
            secs,
            ns_per_op: secs * 1e9,
            ops_per_sec: 1.0 / secs,
        }
    };
    let Some(&(_, base)) = walls.iter().find(|(n, _)| *n == 1) else {
        if !walls.is_empty() {
            eprintln!("--par-wall needs a 1-thread baseline; ignoring parallel-scaling cells");
        }
        return Vec::new();
    };
    walls
        .iter()
        .filter(|(n, _)| *n != 1)
        .map(|&(n, secs)| Cell {
            name: format!("sim/run_all_par{n}"),
            ops: 1,
            fast: wall_sample(secs),
            reference: wall_sample(base),
            advisory: n > cores,
        })
        .collect()
}

fn render_json(cells: &[Cell], quick: bool, run_all_wall: Option<(f64, f64)>) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"tmi-bench-perf/1\",");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"host_cores\": {},", host_cores());
    if let Some((fast, reference)) = run_all_wall {
        let _ = writeln!(
            s,
            "  \"run_all_quick\": {{\"fast_secs\": {}, \"reference_secs\": {}, \"speedup\": {}}},",
            json::fmt_f64(fast),
            json::fmt_f64(reference),
            json::fmt_f64(reference / fast.max(1e-9))
        );
    }
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", c.name);
        let _ = writeln!(s, "      \"ops\": {},", c.ops);
        if c.advisory {
            let _ = writeln!(s, "      \"advisory\": true,");
        }
        for (label, v) in [("fast", c.fast), ("reference", c.reference)] {
            let _ = writeln!(
                s,
                "      \"{label}\": {{\"secs\": {}, \"ns_per_op\": {}, \"ops_per_sec\": {}}},",
                json::fmt_f64(v.secs),
                json::fmt_f64(v.ns_per_op),
                json::fmt_f64(v.ops_per_sec)
            );
        }
        let _ = writeln!(s, "      \"speedup\": {}", json::fmt_f64(c.speedup()));
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

fn check(path: &str) -> Result<usize, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("failed to read {path}: {e}"))?;
    let root = json::parse(&doc).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    match root.get("schema").and_then(Json::as_str) {
        Some("tmi-bench-perf/1") => {}
        other => return Err(format!("unexpected schema {other:?}")),
    }
    if let Some(cores) = root.get("host_cores") {
        let v = cores
            .as_f64()
            .ok_or("\"host_cores\" is not a number".to_string())?;
        if v < 1.0 {
            return Err(format!("\"host_cores\" = {v} is not positive"));
        }
    }
    if let Some(wall) = root.get("run_all_quick") {
        for field in ["fast_secs", "reference_secs", "speedup"] {
            let v = wall
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("run_all_quick has no numeric \"{field}\""))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("run_all_quick \"{field}\" = {v} is not positive"));
            }
        }
    }
    let cells = root
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or("no \"cells\" array")?;
    if cells.is_empty() {
        return Err("empty \"cells\" array".to_string());
    }
    for (i, cell) in cells.iter().enumerate() {
        cell.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("cell {i} has no \"name\""))?;
        let ops = cell
            .get("ops")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cell {i} has no numeric \"ops\""))?;
        if ops <= 0.0 {
            return Err(format!("cell {i} has non-positive ops"));
        }
        for variant in ["fast", "reference"] {
            for field in ["secs", "ns_per_op", "ops_per_sec"] {
                let v = cell
                    .get(variant)
                    .and_then(|x| x.get(field))
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("cell {i} has no numeric \"{variant}.{field}\""))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!(
                        "cell {i} \"{variant}.{field}\" = {v} is not positive"
                    ));
                }
            }
        }
        let speedup = cell
            .get("speedup")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("cell {i} has no numeric \"speedup\""))?;
        if !speedup.is_finite() || speedup <= 0.0 {
            return Err(format!("cell {i} speedup {speedup} is not positive"));
        }
    }
    Ok(cells.len())
}

/// `--profile`: host-wall phase attribution of the epoch engine, run on
/// a synthetic workload whose memory ops are mostly provably private —
/// the speculation target. Prints one row per configuration; the point
/// of comparison is the replay column's share of the total, which drops
/// when speculation moves the private ops into the walk + commit.
fn profile_mode() {
    use tmi_machine::{VAddr, FRAME_SIZE};
    use tmi_os::MapRequest;
    use tmi_program::{InstrKind, Op, SequenceProgram};
    use tmi_sim::{Engine, EngineConfig, NullRuntime, SimTuning};

    const THREADS: u64 = 4;
    const ROUNDS: u64 = 30_000;
    let run = |speculation: bool| {
        let mut cfg = EngineConfig::with_cores(THREADS as usize);
        cfg.tuning = if speculation {
            SimTuning::sequential()
        } else {
            SimTuning::sequential().without_speculation()
        };
        let mut e = Engine::new(cfg, NullRuntime);
        let obj = e.core_mut().kernel.create_object(64 * FRAME_SIZE);
        let aspace = e.core_mut().kernel.create_aspace();
        e.core_mut()
            .kernel
            .map(
                aspace,
                MapRequest::object(VAddr::new(0x10000), 64 * FRAME_SIZE, obj, 0),
            )
            .expect("map");
        e.create_root_process(aspace);
        let st = e
            .core_mut()
            .code
            .instr("prof::st", InstrKind::Store, Width::W8);
        let ld = e
            .core_mut()
            .code
            .instr("prof::ld", InstrKind::Load, Width::W8);
        let barrier = VAddr::new(0x10000);
        for i in 0..THREADS {
            let base = 0x10000 + 0x400 * (i + 1);
            let mut ops = Vec::with_capacity(3 * ROUNDS as usize);
            for j in 0..ROUNDS {
                ops.push(Op::Compute {
                    cycles: 40 + i * 3 + j % 7,
                });
                ops.push(Op::Store {
                    pc: st,
                    addr: VAddr::new(base + (j % 8) * 64),
                    width: Width::W8,
                    value: i * 1_000 + j,
                });
                ops.push(Op::Load {
                    pc: ld,
                    addr: VAddr::new(base + (j % 8) * 64),
                    width: Width::W8,
                });
                if j % 4_096 == 4_095 {
                    ops.push(Op::BarrierWait { barrier });
                }
            }
            e.add_thread(Box::new(SequenceProgram::new(ops)));
        }
        e.enable_host_profile();
        let r = e.run();
        assert!(r.completed(), "profile workload failed: {:?}", r.halt);
        let phases = e.take_host_profile().expect("profiling was enabled");
        (phases, *e.core().par_stats())
    };

    println!(
        "epoch phase attribution ({THREADS} sim threads x {ROUNDS} rounds, host wall seconds)"
    );
    println!(
        "{:16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>12}",
        "config", "walk", "commit", "replay", "barrier", "total", "replay%", "spec_ops"
    );
    for (label, speculation) in [("speculation", true), ("no_speculation", false)] {
        let (p, par) = run(speculation);
        println!(
            "{:16} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>7.1}% {:>12}",
            label,
            p.walk_secs,
            p.commit_secs,
            p.replay_secs,
            p.barrier_secs,
            p.total_secs,
            100.0 * p.replay_share(),
            par.speculated_ops
        );
    }
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut profile = false;
    let mut run_all_wall: Option<(f64, f64)> = None;
    let mut par_walls: Vec<(usize, f64)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} expects a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(value("--out")),
            "--check" => check_path = Some(value("--check")),
            "--profile" => profile = true,
            "--run-all-wall" => {
                let parse = |s: String| {
                    s.parse::<f64>().unwrap_or_else(|_| {
                        eprintln!("--run-all-wall expects two numbers, got {s:?}");
                        exit(2);
                    })
                };
                let fast = parse(value("--run-all-wall"));
                let reference = parse(value("--run-all-wall"));
                run_all_wall = Some((fast, reference));
            }
            "--par-wall" => {
                let threads = value("--par-wall").parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("--par-wall expects a thread count and seconds");
                    exit(2);
                });
                let secs = value("--par-wall").parse::<f64>().unwrap_or_else(|_| {
                    eprintln!("--par-wall expects a thread count and seconds");
                    exit(2);
                });
                par_walls.push((threads, secs));
            }
            _ => {
                eprintln!(
                    "usage: bench_perf [--quick] [--out FILE] [--run-all-wall FAST REF] \
                     [--par-wall THREADS SECS]... | bench_perf --profile | \
                     bench_perf --check FILE"
                );
                exit(2);
            }
        }
    }

    if let Some(path) = check_path {
        match check(&path) {
            Ok(n) => {
                println!("bench report: {path} ok ({n} cells)");
                return;
            }
            Err(e) => {
                eprintln!("bench report gate failed: {e}");
                exit(1);
            }
        }
    }

    if profile {
        profile_mode();
        return;
    }

    let mut cells = run_cells(quick);
    cells.extend(par_scale_cells(&par_walls, host_cores()));
    println!(
        "{:32} {:>12} {:>12} {:>12} {:>8}",
        "cell", "fast ns/op", "ref ns/op", "fast ops/s", "speedup"
    );
    for c in &cells {
        println!(
            "{:32} {:>12.1} {:>12.1} {:>12.0} {:>7.2}x{}",
            c.name,
            c.fast.ns_per_op,
            c.reference.ns_per_op,
            c.fast.ops_per_sec,
            c.speedup(),
            if c.advisory { " (advisory)" } else { "" }
        );
    }
    if let Some((fast, reference)) = run_all_wall {
        println!(
            "{:32} {:>12.2} {:>12.2} {:>12} {:>7.2}x",
            "run_all --quick (secs)",
            fast,
            reference,
            "-",
            reference / fast.max(1e-9)
        );
    }
    let doc = render_json(&cells, quick, run_all_wall);
    let path = out.unwrap_or_else(|| "BENCH_perf.json".to_string());
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("failed to write {path}: {e}");
        exit(1);
    }
    println!("wrote {path}");
}
