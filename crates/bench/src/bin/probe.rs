//! Internal probe: times suite workloads under a configurable spec.
//! Used during development; kept as a diagnostic.
//!
//! Accepts the shared [`JobSpec`] flag set (`--runtime`, `--scale`,
//! `--threads`, `--seed`, ...). With `--workload` it probes that one
//! workload; without, it sweeps the whole suite under the given spec. A
//! bare leading number is still accepted as the scale, matching the old
//! invocation.
use std::time::Instant;

use tmi_bench::{Executor, JobSpec};

fn main() {
    let mut spec = JobSpec::new("");
    spec.cfg.scale = 0.03;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Ok(scale) = arg.parse::<f64>() {
            spec.cfg.scale = scale;
            continue;
        }
        match spec.apply_cli_arg(&arg, &mut || args.next()) {
            Ok(true) => {}
            Ok(false) => {
                eprintln!("unknown argument {arg:?}");
                eprintln!("usage: probe [SCALE] {}", JobSpec::cli_usage());
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    let exec = Executor::from_env();
    let names: Vec<String> = if spec.workload.is_empty() {
        tmi_workloads::SUITE.iter().map(|s| s.to_string()).collect()
    } else {
        vec![spec.workload.clone()]
    };
    for name in names {
        let one = JobSpec {
            workload: name.clone(),
            ..spec.clone()
        };
        let t0 = Instant::now();
        let job = exec.run_spec(&one);
        match &job.outcome {
            Ok(r) => println!(
                "{name:15} host={:6.2}s ops={:9} cycles={:12} hitm={:9} ok={}",
                t0.elapsed().as_secs_f64(),
                r.ops,
                r.cycles,
                r.hitm_events,
                r.ok()
            ),
            Err(e) => println!("{name:15} FAILED: {e}"),
        }
    }
}
