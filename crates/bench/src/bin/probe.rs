//! Internal probe: times each suite workload under the baseline at small
//! scale. Used during development; kept as a diagnostic.
use std::time::Instant;
use tmi_bench::Experiment;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.03);
    for name in tmi_workloads::SUITE {
        let t0 = Instant::now();
        let r = Experiment::new(name).scale(scale).run();
        println!(
            "{name:15} host={:6.2}s ops={:9} cycles={:12} hitm={:9} ok={}",
            t0.elapsed().as_secs_f64(),
            r.ops,
            r.cycles,
            r.hitm_events,
            r.ok()
        );
    }
}
