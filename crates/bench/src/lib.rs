#![warn(missing_docs)]

//! # tmi-bench — experiment harness for every table and figure
//!
//! One binary per table/figure of the paper's evaluation (§4), each
//! printing the same rows/series the paper reports, regenerated from the
//! simulation:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — requirements matrix |
//! | `fig3`   | Fig. 3 — AMBSA word-tearing litmus |
//! | `fig4`   | Fig. 4 — runtime & HITM records vs perf period |
//! | `fig7`   | Fig. 7 — detection overhead across the suite |
//! | `fig8`   | Fig. 8 — memory overhead across the suite |
//! | `fig9`   | Fig. 9 — repair speedups vs manual/Sheriff/LASER |
//! | `table3` | Table 3 — repair characterization |
//! | `fig10`  | Fig. 10 — 4 KiB vs 2 MiB huge pages |
//! | `fig11`  | Fig. 11 — canneal corruption without code-centric consistency |
//! | `fig12`  | Fig. 12 — cholesky hang without code-centric consistency |
//! | `ablate_ptsb_everywhere` | §4.3 — targeted repair vs PTSB-everywhere |
//! | `sweep_threads` | extension: FS penalty & repair quality vs thread count |
//! | `run_all` | all of the above in-process, writing `BENCH_harness.json` |
//! | `fuzz_consistency` | differential litmus fuzz of the repair path vs the SC oracle ([`tmi_oracle`]) |
//!
//! The public API is the [`Experiment`] builder for a single run and
//! [`ExperimentSet`] / [`Executor`] ([`exec`]) for deterministic parallel
//! batches; [`figures`] holds the rendering behind each binary, and
//! [`harness`] is the machine-assembly layer underneath.

pub mod exec;
pub mod figures;
pub mod fuzz;
pub mod harness;
pub mod report;
pub mod spec;
pub mod telemetry;

pub use harness::{RunConfig, RunResult, RuntimeKind};
pub use harness::{APP_START, INTERNAL_LEN, INTERNAL_START};

pub use exec::{pool_map, Executor, Experiment, ExperimentSet, JobResult};
pub use fuzz::{check_spec, run_campaign, CampaignResult, FuzzConfig};
pub use report::SpeedupTable;
pub use spec::JobSpec;
