//! Smoke tests for the harness: every workload completes and verifies
//! under the baseline, and the key repair behaviours reproduce at small
//! scale.

use tmi_bench::{Experiment, RunConfig, RunResult, RuntimeKind};

fn run(name: &str, cfg: &RunConfig) -> RunResult {
    Experiment::new(name).config(*cfg).run()
}

fn small(runtime: RuntimeKind) -> RunConfig {
    RunConfig::new(runtime).scale(0.03)
}

#[test]
fn whole_suite_completes_under_pthreads() {
    for name in tmi_workloads::SUITE {
        let r = run(name, &small(RuntimeKind::Pthreads));
        assert!(r.ok(), "{name}: halt={:?} verify={:?}", r.halt, r.verified);
        assert!(r.cycles > 0);
    }
}

#[test]
fn false_sharing_workloads_generate_hitm_storms() {
    for name in ["histogramfs", "lreg", "shptr-relaxed", "leveldb-fs"] {
        let r = run(name, &small(RuntimeKind::Pthreads));
        assert!(r.ok(), "{name}");
        assert!(
            r.hitm_events > 5_000,
            "{name}: only {} HITM events",
            r.hitm_events
        );
    }
}

#[test]
fn quiet_workloads_do_not() {
    for name in ["blackscholes", "swaptions", "matrix"] {
        let r = run(name, &small(RuntimeKind::Pthreads));
        assert!(r.ok(), "{name}");
        assert!(
            r.hitm_events < 2_000,
            "{name}: unexpectedly {} HITM events",
            r.hitm_events
        );
    }
}

#[test]
fn tmi_protect_repairs_lreg_at_small_scale() {
    let base = run("lreg", &RunConfig::new(RuntimeKind::Pthreads).scale(0.3));
    let tmi = run("lreg", &RunConfig::new(RuntimeKind::TmiProtect).scale(0.3));
    assert!(
        base.ok() && tmi.ok(),
        "{:?} {:?}",
        base.verified,
        tmi.verified
    );
    assert!(tmi.repaired, "repair should trigger on lreg");
    assert!(
        tmi.cycles < base.cycles,
        "TMI {} vs baseline {}",
        tmi.cycles,
        base.cycles
    );
}
