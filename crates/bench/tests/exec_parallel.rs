//! The executor's determinism contract: pool size must not change
//! results, their order, or their values in any way, and a panicking
//! cell must fail alone instead of killing the batch.

use tmi_bench::{Executor, Experiment, ExperimentSet, JobResult, RuntimeKind};

const WORKLOADS: [&str; 4] = ["histogram", "lreg", "blackscholes", "stringmatch"];

fn build_set() -> ExperimentSet {
    let mut set = ExperimentSet::new();
    for name in WORKLOADS {
        set.push(Experiment::new(name).scale(0.05));
        set.push(
            Experiment::repair(name)
                .runtime(RuntimeKind::TmiProtect)
                .scale(0.05)
                .misaligned(),
        );
    }
    set
}

fn fingerprint(r: &JobResult) -> (usize, String, u64, u64, u64, u64, bool, Result<(), String>) {
    let run = r.result();
    (
        r.index,
        r.spec.workload.clone(),
        run.cycles,
        run.ops,
        run.hitm_events,
        run.commits,
        run.repaired,
        run.verified.clone(),
    )
}

#[test]
fn pool_size_one_and_four_produce_identical_result_streams() {
    let serial = build_set().run_on(&Executor::new(1));
    let parallel = build_set().run_on(&Executor::new(4));
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), 2 * WORKLOADS.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(fingerprint(a), fingerprint(b));
        assert_eq!(a.result().runtime, b.result().runtime);
    }
}

#[test]
fn panicking_job_marks_one_cell_failed_and_spares_the_rest() {
    let mut set = ExperimentSet::new();
    for name in WORKLOADS {
        set.push(Experiment::new(name).scale(0.03));
    }
    let bad = set.push(Experiment::new("no-such-workload").scale(0.03));
    let results = set.run_on(&Executor::new(4));

    assert_eq!(results.len(), WORKLOADS.len() + 1);
    let failed: Vec<&JobResult> = results.iter().filter(|r| r.outcome.is_err()).collect();
    assert_eq!(failed.len(), 1, "exactly the injected cell fails");
    assert_eq!(failed[0].index, bad);
    assert_eq!(failed[0].spec.workload, "no-such-workload");
    for (i, r) in results.iter().enumerate() {
        if i != bad {
            assert!(r.ok(), "{}: {:?}", r.spec.workload, r.outcome);
        }
    }
}

#[test]
fn identical_cells_dedupe_at_submission_and_memoize_across_batches() {
    let mut set = ExperimentSet::new();
    let first = set.push(Experiment::new("histogram").scale(0.03));
    let dup = set.push(Experiment::new("histogram").scale(0.03));
    assert_eq!(first, dup, "equal experiments share one submission slot");
    assert_eq!(set.len(), 1);

    let exec = Executor::new(2);
    let batch1 = set.run_on(&exec);
    assert!(!batch1[first].from_cache);

    let mut again = ExperimentSet::new();
    again.push(Experiment::new("histogram").scale(0.03));
    let batch2 = again.run_on(&exec);
    assert!(batch2[0].from_cache, "second batch must hit the memo cache");
    assert_eq!(batch1[first].result().cycles, batch2[0].result().cycles);

    let log = exec.job_log();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].status, "ok");
    assert_eq!(log[1].status, "cached");
    assert_eq!(log[1].sim_cycles, log[0].sim_cycles);
}

#[test]
fn job_log_json_has_the_documented_shape() {
    let exec = Executor::new(1);
    let mut set = ExperimentSet::new();
    set.push(Experiment::new("histogram").scale(0.03));
    set.run_on(&exec);
    let json = exec.to_json();
    for needle in [
        "\"schema\": \"tmi-bench-harness/2\"",
        "\"pool_workers\": 1",
        "\"jobs\": 1",
        "\"cache_hits\": 0",
        "\"workload\": \"histogram\"",
        "\"runtime\": \"pthreads\"",
        "\"scale\": 0.03",
        "\"status\": \"ok\"",
        "\"metrics\": {",
        "\"machine.hitm_events\":",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}
