#![warn(missing_docs)]

//! # tmi-oracle — differential consistency oracle and litmus fuzzer
//!
//! TMI's repair path (PTSB page twinning, COW isolation, diff-and-merge
//! commits, code-centric consistency) is only correct if, for data-race-
//! free programs, the repaired execution is indistinguishable from an
//! unrepaired one. This crate turns that claim into an executable oracle:
//!
//! * [`Litmus`] — a deterministic, seeded generator of small 2–4 thread
//!   programs mixing plain accesses, relaxed/ordering atomics, inline-asm
//!   regions, mutexes, spinlocks and a barrier, exercising every row of
//!   the paper's Table 2 while keeping each program data-race-free by
//!   construction (each shared slot has a single synchronization
//!   discipline).
//! * [`Interp`] — a reference interpreter that replays the engine's
//!   recorded schedule directly against flat shared memory under
//!   sequential consistency. Same interleaving, no page twins, no store
//!   buffer: what a correct repair must be equivalent to.
//! * [`check_litmus`] / [`check_seed`] — the differential checker: run
//!   the program through the full TMI stack with repair forced on, replay
//!   the trace through the interpreter, and compare per-step observations,
//!   final shared memory, and aligned-multi-byte-store atomicity
//!   ([`DivergenceKind::TornValue`]). Divergent programs are minimized
//!   and rendered with the seed command that reproduces them.
//!
//! With code-centric consistency ON every seed must check clean; with the
//! `--ablate-code-centric` ablation the same seeds reproduce the stale
//! atomic reads, lost updates and torn words of the paper's Figs. 11–12.
//!
//! The *transistency* extension fuzzes VM operations × consistency:
//! [`Litmus::generate_vm`] interleaves explicit `mprotect`, COW-break,
//! T2P-conversion, twin-commit and TLB-shootdown ops with the consistency
//! vocabulary, [`Litmus::vm_variants`] deterministically enumerates VM-op
//! placements over a small base program (DPOR-lite), and
//! [`check_transistency_seed`] / [`check_transistency_variants`] run them
//! through the same differential checker. With TMI on every transistency
//! seed must check clean; with `--ablate-shootdown` (drop precise per-PTE
//! TLB shootdowns, [`CheckConfig::ablate_shootdown`]) stale translations
//! surface as value, final-memory and permission divergences.
//!
//! ```
//! use tmi_oracle::{check_seed, CheckConfig};
//!
//! let report = check_seed(7, &CheckConfig::default());
//! assert!(report.clean(), "{}", report.render());
//! ```

pub mod diff;
pub mod interp;
pub mod litmus;

pub use diff::{
    check_litmus, check_seed, check_transistency_seed, check_transistency_variants,
    derive_fault_seed, run_seed_raw, run_seed_raw_tuned, run_transistency_seed_raw,
    run_transistency_seed_raw_tuned, trace_seed, CheckConfig, CheckReport, Divergence,
    DivergenceKind, FaultSummary, RawRun,
};
pub use interp::{Interp, RefStep};
pub use litmus::{Coverage, Guard, GuardKind, Litmus, Slot, SlotClass};
