//! The sequentially consistent reference interpreter.
//!
//! [`Interp`] executes the same per-thread [`Op`] lists the engine runs,
//! but directly against one flat shared memory: every store is globally
//! visible the instant it executes, every load reads the latest store in
//! schedule order — sequential consistency *per schedule*. Driving it with
//! the exact schedule recorded by [`tmi_sim::Engine::take_trace`] yields
//! the value-oracle for the differential checker: under code-centric
//! consistency, a data-race-free litmus program run through the full TMI
//! repair path (COW, twins, PTSB commits) must produce exactly the values
//! the interpreter produces for the same interleaving.
//!
//! The interpreter mirrors the engine's synchronization semantics
//! operation for operation — FIFO mutex handoff, spinlock acquire
//! attempts that fail without advancing the program, all-thread barriers —
//! so an engine trace replays step for step, including the repeated
//! `spin_lock` steps of a contended acquire.

use std::collections::{HashMap, VecDeque};

use tmi_machine::{VAddr, Width};
use tmi_program::{width_mask, Op};

/// One interpreted step: the op the scheduled thread executed and the
/// value it produced, shaped exactly like [`tmi_sim::TraceStep`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RefStep {
    /// The thread that was stepped.
    pub thread: u32,
    /// The op it executed (a failed spinlock attempt repeats the op).
    pub op: Op,
    /// The value produced (loads, RMW old values, CAS observations).
    pub value: Option<u64>,
}

#[derive(Debug, Default)]
struct MutexSt {
    owner: Option<u32>,
    waiters: VecDeque<u32>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Blocked,
    Done,
}

/// Per-thread program state.
#[derive(Debug)]
struct ThreadCtx {
    ops: Vec<Op>,
    cursor: usize,
    /// A spinlock op that failed and must be re-executed.
    replay: Option<Op>,
    state: ThreadState,
    asm_depth: u32,
}

impl ThreadCtx {
    fn peek(&self) -> Op {
        self.replay
            .unwrap_or_else(|| self.ops.get(self.cursor).copied().unwrap_or(Op::Exit))
    }
}

/// The reference interpreter (see the module docs).
#[derive(Debug)]
pub struct Interp {
    mem: HashMap<u64, u8>,
    mutexes: HashMap<u64, MutexSt>,
    spins: HashMap<u64, Option<u32>>,
    barrier_arrived: HashMap<u64, Vec<u32>>,
    threads: Vec<ThreadCtx>,
}

impl Interp {
    /// Creates an interpreter over per-thread op lists. Memory starts
    /// zeroed, like the engine's demand-paged object frames.
    pub fn new(threads: Vec<Vec<Op>>) -> Interp {
        Interp {
            mem: HashMap::new(),
            mutexes: HashMap::new(),
            spins: HashMap::new(),
            barrier_arrived: HashMap::new(),
            threads: threads
                .into_iter()
                .map(|ops| ThreadCtx {
                    ops,
                    cursor: 0,
                    replay: None,
                    state: ThreadState::Runnable,
                    asm_depth: 0,
                })
                .collect(),
        }
    }

    /// Reads `width` bytes at `addr` from the interpreter's memory.
    pub fn read(&self, addr: VAddr, width: Width) -> u64 {
        let mut v = 0u64;
        for i in (0..width.bytes()).rev() {
            v = (v << 8) | u64::from(*self.mem.get(&(addr.raw() + i)).unwrap_or(&0));
        }
        v
    }

    fn write(&mut self, addr: VAddr, width: Width, value: u64) {
        let v = value & width_mask(width);
        for i in 0..width.bytes() {
            self.mem.insert(addr.raw() + i, (v >> (8 * i)) as u8);
        }
    }

    /// True once every thread has executed its `Exit`.
    pub fn all_done(&self) -> bool {
        self.threads.iter().all(|t| t.state == ThreadState::Done)
    }

    /// Executes the next op of `thread` under sequential consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of why the step is infeasible: the thread is
    /// blocked or finished, a region is unbalanced, or a lock is released
    /// by a non-owner. When replaying an engine trace any of these means
    /// the trace cannot be an execution of the program — a divergence in
    /// itself.
    pub fn step(&mut self, thread: u32) -> Result<RefStep, String> {
        let idx = thread as usize;
        if idx >= self.threads.len() {
            return Err(format!("no such thread t{thread}"));
        }
        match self.threads[idx].state {
            ThreadState::Done => return Err(format!("t{thread} stepped after exit")),
            ThreadState::Blocked => return Err(format!("t{thread} stepped while blocked")),
            ThreadState::Runnable => {}
        }
        let op = self.threads[idx].peek();
        self.threads[idx].replay = None;
        let mut advanced = true;
        let mut value = None;
        match op {
            Op::Load { addr, width, .. } => value = Some(self.read(addr, width)),
            Op::Store {
                addr, width, value, ..
            } => self.write(addr, width, value),
            Op::AtomicLoad { addr, width, .. } => value = Some(self.read(addr, width)),
            Op::AtomicStore {
                addr, width, value, ..
            } => self.write(addr, width, value),
            Op::AtomicRmw {
                addr,
                width,
                rmw,
                operand,
                ..
            } => {
                let old = self.read(addr, width);
                self.write(addr, width, rmw.apply(old, operand, width));
                value = Some(old);
            }
            Op::Cas {
                addr,
                width,
                expected,
                desired,
                ..
            } => {
                let observed = self.read(addr, width);
                if observed == expected {
                    self.write(addr, width, desired);
                }
                value = Some(observed);
            }
            Op::Fence { .. } | Op::Compute { .. } => {}
            Op::AsmEnter => self.threads[idx].asm_depth += 1,
            Op::AsmExit => {
                if self.threads[idx].asm_depth == 0 {
                    return Err(format!("t{thread}: asm_exit without asm_enter"));
                }
                self.threads[idx].asm_depth -= 1;
            }
            Op::MutexLock { lock } => {
                let m = self.mutexes.entry(lock.raw()).or_default();
                match m.owner {
                    None => m.owner = Some(thread),
                    Some(o) if o == thread => {
                        return Err(format!("t{thread}: relock of held mutex {lock}"))
                    }
                    Some(_) => {
                        m.waiters.push_back(thread);
                        self.threads[idx].state = ThreadState::Blocked;
                    }
                }
            }
            Op::MutexUnlock { lock } => {
                let m = self.mutexes.entry(lock.raw()).or_default();
                if m.owner != Some(thread) {
                    return Err(format!("t{thread}: unlock of mutex {lock} it does not own"));
                }
                m.owner = m.waiters.pop_front();
                if let Some(next) = m.owner {
                    self.threads[next as usize].state = ThreadState::Runnable;
                }
            }
            Op::SpinLock { lock } => {
                let s = self.spins.entry(lock.raw()).or_default();
                match *s {
                    None => *s = Some(thread),
                    Some(_) => {
                        // Failed exchange: the engine re-issues the op.
                        self.threads[idx].replay = Some(op);
                        advanced = false;
                    }
                }
            }
            Op::SpinUnlock { lock } => {
                let s = self.spins.entry(lock.raw()).or_default();
                if *s != Some(thread) {
                    return Err(format!(
                        "t{thread}: release of spinlock {lock} it does not hold"
                    ));
                }
                *s = None;
            }
            Op::BarrierWait { barrier } => {
                let arrived = self.barrier_arrived.entry(barrier.raw()).or_default();
                arrived.push(thread);
                if arrived.len() >= self.threads.len() {
                    for t in std::mem::take(arrived) {
                        self.threads[t as usize].state = ThreadState::Runnable;
                    }
                } else {
                    self.threads[idx].state = ThreadState::Blocked;
                }
            }
            // VM operations are memory-transparent under SC: mprotect, COW
            // breaks, T2P conversions, twin commits and shootdowns change
            // *mappings*, never the values a correct engine lets the program
            // observe. The engine reports an outcome code through the trace
            // value slot; the interpreter has no mapping state, so it yields
            // no value and the differential checker skips value comparison
            // for these steps (outcome codes are checked fast-vs-reference
            // path instead).
            Op::Vm { .. } => {}
            Op::Exit => {
                if self.threads[idx].asm_depth != 0 {
                    return Err(format!("t{thread}: exit inside asm region"));
                }
                self.threads[idx].state = ThreadState::Done;
            }
        }
        if advanced && self.threads[idx].cursor < self.threads[idx].ops.len() {
            self.threads[idx].cursor += 1;
        }
        Ok(RefStep { thread, op, value })
    }

    /// Runs a full explicit schedule (`schedule[k]` is the thread stepped
    /// at step `k`), returning every step.
    ///
    /// # Errors
    ///
    /// Propagates the first infeasible step, with its index.
    pub fn run_schedule(&mut self, schedule: &[u32]) -> Result<Vec<RefStep>, (usize, String)> {
        schedule
            .iter()
            .enumerate()
            .map(|(k, &t)| self.step(t).map_err(|e| (k, e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmi_program::{MemOrder, OpBuilder, Pc, RmwOp};

    const PC: Pc = Pc(0x40_0000);
    const X: VAddr = VAddr::new(0x10_0000);
    const Y: VAddr = VAddr::new(0x10_0008);
    const LOCK: VAddr = VAddr::new(0x10_8040);
    const BAR: VAddr = VAddr::new(0x10_8000);

    #[test]
    fn store_load_roundtrip_with_masking() {
        let mut it = Interp::new(vec![OpBuilder::new()
            .store(PC, X, Width::W2, 0xABCD_EF01)
            .load(PC, X, Width::W2)
            .load(PC, X, Width::W8)
            .build()]);
        assert_eq!(it.step(0).unwrap().value, None);
        assert_eq!(it.step(0).unwrap().value, Some(0xEF01), "truncated store");
        assert_eq!(it.step(0).unwrap().value, Some(0xEF01), "upper bytes zero");
        assert!(matches!(it.step(0).unwrap().op, Op::Exit));
        assert!(it.all_done());
    }

    #[test]
    fn rmw_and_cas_semantics_match_the_engine() {
        let mut it = Interp::new(vec![OpBuilder::new()
            .rmw(PC, X, Width::W8, RmwOp::Add, 5, MemOrder::Relaxed)
            .rmw(PC, X, Width::W8, RmwOp::Add, 5, MemOrder::SeqCst)
            .cas(PC, X, Width::W8, 10, 99, MemOrder::SeqCst)
            .cas(PC, X, Width::W8, 10, 7, MemOrder::SeqCst)
            .build()]);
        assert_eq!(it.step(0).unwrap().value, Some(0), "old value");
        assert_eq!(it.step(0).unwrap().value, Some(5));
        assert_eq!(it.step(0).unwrap().value, Some(10), "successful CAS");
        assert_eq!(it.step(0).unwrap().value, Some(99), "failed CAS observes");
        assert_eq!(it.read(X, Width::W8), 99);
    }

    #[test]
    fn mutex_blocks_and_hands_off_fifo() {
        let cs = |v: u64| {
            OpBuilder::new()
                .locked(LOCK, |b| b.store(PC, X, Width::W8, v))
                .build()
        };
        let mut it = Interp::new(vec![cs(1), cs(2), cs(3)]);
        it.step(0).unwrap(); // t0 takes the lock
        it.step(1).unwrap(); // t1 blocks
        it.step(2).unwrap(); // t2 blocks behind t1
        assert!(it.step(1).is_err(), "blocked thread cannot be stepped");
        it.step(0).unwrap(); // t0 store
        it.step(0).unwrap(); // t0 unlock -> t1 owns
        it.step(1).unwrap(); // t1 store
        assert!(it.step(2).is_err(), "t2 still blocked");
        it.step(1).unwrap(); // t1 unlock -> t2 owns
        it.step(2).unwrap();
        it.step(2).unwrap();
        assert_eq!(it.read(X, Width::W8), 3, "FIFO order");
    }

    #[test]
    fn failed_spin_attempt_repeats_the_op() {
        let mut it = Interp::new(vec![
            OpBuilder::new()
                .spin_locked(LOCK, |b| b.store(PC, X, Width::W8, 1))
                .build(),
            OpBuilder::new()
                .spin_locked(LOCK, |b| b.store(PC, X, Width::W8, 2))
                .build(),
        ]);
        it.step(0).unwrap(); // t0 acquires
        let s = it.step(1).unwrap(); // t1 attempt fails
        assert!(matches!(s.op, Op::SpinLock { .. }));
        let s = it.step(1).unwrap(); // fails again, op repeated
        assert!(matches!(s.op, Op::SpinLock { .. }));
        it.step(0).unwrap(); // t0 store
        it.step(0).unwrap(); // t0 release
        it.step(1).unwrap(); // t1 acquires now
        it.step(1).unwrap(); // t1 store
        assert_eq!(it.read(X, Width::W8), 2);
    }

    #[test]
    fn barrier_releases_all_threads_at_once() {
        let prog = |v: u64| {
            OpBuilder::new()
                .store(PC, VAddr::new(Y.raw() + 8 * v), Width::W8, v + 1)
                .barrier(BAR)
                .load(PC, Y, Width::W8)
                .build()
        };
        let mut it = Interp::new(vec![prog(0), prog(1)]);
        it.step(0).unwrap();
        it.step(1).unwrap();
        it.step(0).unwrap(); // t0 arrives, blocks
        assert!(it.step(0).is_err());
        it.step(1).unwrap(); // t1 arrives, opens the barrier
        assert_eq!(it.step(0).unwrap().value, Some(1));
        assert_eq!(it.step(1).unwrap().value, Some(1));
    }

    #[test]
    fn misuse_is_reported_as_infeasible() {
        let mut it = Interp::new(vec![
            vec![Op::MutexUnlock { lock: LOCK }],
            vec![Op::AsmExit],
            vec![Op::SpinUnlock { lock: LOCK }],
        ]);
        assert!(it.step(0).is_err());
        assert!(it.step(1).is_err());
        assert!(it.step(2).is_err());
        assert!(it.step(9).is_err(), "unknown thread");
    }

    #[test]
    fn run_schedule_reports_the_failing_step() {
        let mut it = Interp::new(vec![OpBuilder::new().store(PC, X, Width::W8, 4).build()]);
        // store, exit, then one step too many.
        let err = it.run_schedule(&[0, 0, 0]).unwrap_err();
        assert_eq!(err.0, 2);
    }
}
