//! The differential consistency checker.
//!
//! [`check_litmus`] executes a litmus program twice:
//!
//! 1. **Repaired run** — through the full TMI stack: an [`Engine`] with a
//!    [`TmiRuntime`] in protect mode, the program's data pages PTSB-armed
//!    up front via [`TmiRuntime::force_repair`], execution tracing on.
//!    This exercises T2P conversion, COW faults, twin snapshots,
//!    diff-and-merge commits and the code-centric routing of every access.
//! 2. **Reference run** — the recorded schedule replayed step for step by
//!    the sequentially consistent [`Interp`].
//!
//! The two runs are compared on per-step load/RMW/CAS observations, on
//! final shared-memory contents of every slot, and by an AMBSA detector
//! that flags *torn* values: observations of a multi-byte slot that no
//! thread ever stored, the Fig. 3 word-tearing signature of byte-granular
//! PTSB merges. With code-centric consistency ON and the generator's
//! data-race-free slot discipline, every check must come back clean; with
//! the `code_centric` ablation the same seeds reproduce the stale-atomic,
//! lost-update and torn-value failures of Figs. 11–12.
//!
//! A divergent program is greedily minimized (drop the post-barrier
//! phase, drop the barrier, truncate threads at region-balanced cut
//! points) while the original divergence kind persists, and the report
//! carries the full listing plus the `fuzz_consistency` command that
//! reproduces it from the seed alone.

use std::fmt;

use tmi::{AppLayout, GovernorState, RepairStats, TmiConfig, TmiRuntime};
use tmi_faultpoint::{FaultInjector, FaultPlan, FaultStats};
use tmi_machine::{VAddr, Width};
use tmi_os::{AsId, MapRequest, ObjId};
use tmi_program::{width_mask, Op, SequenceProgram};
use tmi_sim::{Engine, EngineConfig, FastPath, Halt, SimTuning, TraceStep};

use crate::interp::Interp;
use crate::litmus::{self, Coverage, Litmus};

/// Checker configuration.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Code-centric consistency on (the real system) or off (the
    /// Sheriff-style ablation that is *expected* to diverge).
    pub code_centric: bool,
    /// Minimize divergent programs before reporting.
    pub minimize: bool,
    /// Cap on recorded per-step divergences.
    pub max_divergences: usize,
    /// Fault-campaign base seed: `Some(base)` runs the repaired execution
    /// under a seeded fault schedule derived from
    /// [`derive_fault_seed`]`(base, program_seed)`, so `(program seed,
    /// fault seed)` reproduces any failure. Repair may retry, degrade,
    /// roll back or revert under the schedule — results still may not
    /// diverge from the oracle.
    pub faults: Option<u64>,
    /// Transistency ablation: run the repaired execution with precise
    /// per-PTE TLB shootdowns disabled (the "forgotten IPI" bug class) and
    /// the software TLB forced on so stale translations can actually
    /// serve. Expected to diverge on VM-op programs — the proof that the
    /// oracle can see transistency violations.
    pub ablate_shootdown: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            code_centric: true,
            minimize: true,
            max_divergences: 8,
            faults: None,
            ablate_shootdown: false,
        }
    }
}

/// Derives the per-program fault seed from the campaign's base fault seed
/// — the `(program seed, fault seed)` reproduction convention.
pub fn derive_fault_seed(base: u64, program_seed: u64) -> u64 {
    base ^ program_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// What the fault schedule did to one checked seed.
#[derive(Clone, Debug)]
pub struct FaultSummary {
    /// The campaign's base fault seed (`--faults` argument).
    pub base_seed: u64,
    /// The derived per-program fault seed that drove the schedule.
    pub fault_seed: u64,
    /// Per-point roll/fire counts.
    pub stats: FaultStats,
    /// Governor counters after the run (retries, recoveries, rollbacks,
    /// degraded pages, efficacy reverts).
    pub governor: RepairStats,
    /// Governor lifecycle state at end of run.
    pub state: GovernorState,
}

impl fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = &self.governor;
        write!(
            f,
            "faults(seed {}): {}; governor: retries={} recoveries={} \
             rollbacks={} degraded={} reverts={} state={:?}",
            self.fault_seed,
            self.stats,
            g.retries,
            g.transient_recoveries,
            g.rollbacks,
            g.pages_degraded,
            g.efficacy_reverts,
            self.state
        )
    }
}

/// What kind of disagreement was found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// A load/RMW/CAS observed a different value than the oracle.
    ValueMismatch,
    /// The engine executed a different op than the program prescribes.
    OpMismatch,
    /// Final shared-memory contents of a slot differ.
    FinalMemory,
    /// An observed or final value of a multi-byte slot was never stored
    /// by any thread (AMBSA violation — word tearing).
    TornValue,
    /// The engine schedule cannot be replayed against the program.
    ScheduleInfeasible,
    /// The repaired run did not complete (hang or fault).
    Halted,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DivergenceKind::ValueMismatch => "value-mismatch",
            DivergenceKind::OpMismatch => "op-mismatch",
            DivergenceKind::FinalMemory => "final-memory",
            DivergenceKind::TornValue => "torn-value",
            DivergenceKind::ScheduleInfeasible => "schedule-infeasible",
            DivergenceKind::Halted => "halted",
        };
        f.write_str(s)
    }
}

/// One recorded disagreement between the repaired run and the oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Classification.
    pub kind: DivergenceKind,
    /// Trace step it was detected at (`None` for end-of-run checks).
    pub step: Option<usize>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some(k) => write!(f, "[{}] step {k}: {}", self.kind, self.detail),
            None => write!(f, "[{}] {}", self.kind, self.detail),
        }
    }
}

/// Result of checking one litmus program.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Seed of the checked program.
    pub seed: u64,
    /// Consistency mode of the repaired run.
    pub code_centric: bool,
    /// Whether precise TLB shootdowns were ablated for the repaired run.
    pub ablate_shootdown: bool,
    /// Trace length of the (possibly minimized) repaired run.
    pub steps: usize,
    /// Divergences found (empty means the oracle agrees).
    pub divergences: Vec<Divergence>,
    /// Static coverage of the reported program.
    pub coverage: Coverage,
    /// The reported program (minimized if divergent and enabled).
    pub litmus: Litmus,
    /// True if the program was successfully shrunk.
    pub minimized: bool,
    /// Fault-schedule summary of the original (unminimized) run, present
    /// only in fault-campaign mode.
    pub faults: Option<FaultSummary>,
}

impl CheckReport {
    /// True if the repaired run matched the oracle everywhere.
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Full report: verdict, divergences, program listing and the exact
    /// command reproducing it from the seed.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mode = match (self.code_centric, self.ablate_shootdown) {
            (true, false) => "code-centric on",
            (false, false) => "code-centric OFF",
            (true, true) => "code-centric on, shootdown OFF",
            (false, true) => "code-centric OFF, shootdown OFF",
        };
        let vm_flag = if self.litmus.has_vm_ops() {
            " --transistency"
        } else {
            ""
        };
        let shootdown_flag = if self.ablate_shootdown {
            " --ablate-shootdown"
        } else {
            ""
        };
        let mut s = String::new();
        if self.clean() {
            let _ = writeln!(
                s,
                "seed {} ({mode}): CLEAN over {} steps [{}]",
                self.seed, self.steps, self.coverage
            );
            if let Some(fs) = &self.faults {
                let _ = writeln!(s, "  {fs}");
                let _ = writeln!(
                    s,
                    "  reproduce: fuzz_consistency -- --start {} --seeds 1{vm_flag} --faults {}",
                    self.seed, fs.base_seed
                );
            }
            return s;
        }
        let _ = writeln!(
            s,
            "seed {} ({mode}): {} divergence(s) in {} steps{}",
            self.seed,
            self.divergences.len(),
            self.steps,
            if self.minimized { " [minimized]" } else { "" }
        );
        for d in &self.divergences {
            let _ = writeln!(s, "  {d}");
        }
        let _ = writeln!(s, "coverage: {}", self.coverage);
        if let Some(fs) = &self.faults {
            let _ = writeln!(s, "{fs}");
        }
        let _ = writeln!(s, "program:");
        for line in self.litmus.listing().lines() {
            let _ = writeln!(s, "  {line}");
        }
        let faults_flag = match &self.faults {
            Some(fs) => format!(" --faults {}", fs.base_seed),
            None => String::new(),
        };
        let _ = writeln!(
            s,
            "reproduce: fuzz_consistency -- --start {} --seeds 1{vm_flag}{}{shootdown_flag}{faults_flag}",
            self.seed,
            if self.code_centric {
                ""
            } else {
                " --ablate-code-centric"
            }
        );
        s
    }
}

/// Generates the litmus program for `seed` and checks it.
pub fn check_seed(seed: u64, cfg: &CheckConfig) -> CheckReport {
    check_litmus(&Litmus::generate(seed), cfg)
}

/// Generates the *transistency* litmus program for `seed` — VM operations
/// (`mprotect`, COW break, T2P conversion, twin commit, TLB shootdown)
/// interleaved with the consistency vocabulary — and checks it.
pub fn check_transistency_seed(seed: u64, cfg: &CheckConfig) -> CheckReport {
    check_litmus(&Litmus::generate_vm(seed), cfg)
}

/// The bounded schedule-enumeration (DPOR-lite) mode: checks every
/// deterministic VM-op placement of `seed`'s small base program (see
/// [`Litmus::vm_variants`]), up to `cap` variants. Returns one report per
/// variant, in enumeration order.
pub fn check_transistency_variants(seed: u64, cap: usize, cfg: &CheckConfig) -> Vec<CheckReport> {
    Litmus::vm_variants(seed, cap)
        .iter()
        .map(|lit| check_litmus(lit, cfg))
        .collect()
}

/// Checks `seed`'s litmus program once (no minimization) with telemetry
/// tracing enabled, and returns the report together with the Chrome
/// `trace_event` JSON of the repaired run — the full repair episode
/// (trigger → fork/T2P → twin snapshots → commits) on the litmus fixture.
pub fn trace_seed(seed: u64, cfg: &CheckConfig) -> (CheckReport, String) {
    let lit = Litmus::generate(seed);
    let tracer = tmi_telemetry::Tracer::enabled();
    let (divergences, steps, faults) = run_traced(&lit, cfg, &tracer);
    let report = CheckReport {
        seed: lit.seed,
        code_centric: cfg.code_centric,
        ablate_shootdown: cfg.ablate_shootdown,
        steps,
        divergences,
        coverage: lit.coverage(),
        litmus: lit,
        minimized: false,
        faults,
    };
    let events = tracer.take_events();
    let trace = tmi_telemetry::chrome::export_trace(
        &events,
        &tracer.phases(),
        tmi_machine::LatencyModel::CLOCK_HZ,
        None,
    );
    (report, trace)
}

/// Every observable of one repaired litmus run, captured for the
/// fast-path equivalence suite: how the run halted, its simulated clocks,
/// the executed schedule with all load observations, and the full flat
/// metrics snapshot (machine, OS, accelerator and runtime counters).
#[derive(Clone, Debug)]
pub struct RawRun {
    /// Why the run stopped.
    pub halt: Halt,
    /// Wall time of the run in simulated cycles.
    pub cycles: u64,
    /// Final clock of each thread.
    pub thread_cycles: Vec<u64>,
    /// Dynamic operations executed.
    pub ops: u64,
    /// The executed schedule and every value observed along it.
    pub trace: Vec<TraceStep>,
    /// Flat metrics snapshot (`machine.*`, `machine.dir.*`, `os.*`,
    /// `os.tlb.*`, `tmi.*`).
    pub metrics: tmi_telemetry::MetricsSnapshot,
}

/// Runs `seed`'s litmus program through the full repaired TMI stack with
/// the fast-path accelerators (per-address-space software TLBs and the
/// sharer/owner directory) forced on or off, and returns every observable
/// of the run. The accelerators are required to be behaviorally
/// invisible, so for any seed the two variants must agree on everything
/// except the `os.tlb.*` / `machine.dir.*` counters themselves — the
/// contract `tests/fastpath_equivalence.rs` enforces.
pub fn run_seed_raw(seed: u64, fastpath: bool) -> RawRun {
    run_seed_raw_tuned(seed, fastpath, 1)
}

/// [`run_seed_raw`] with an explicit host-thread count for the engine's
/// epoch-parallel stepping. The parallel path is required to be
/// bit-identical to the sequential one, so for any `(seed, fastpath)` the
/// returned observables must not depend on `host_threads` — the contract
/// `tests/parallel_equivalence.rs` enforces.
pub fn run_seed_raw_tuned(seed: u64, fastpath: bool, host_threads: usize) -> RawRun {
    run_litmus_raw(&Litmus::generate(seed), fastpath, host_threads)
}

/// [`run_seed_raw`] over the transistency program of `seed`: the same
/// accelerator-invisibility contract, but the run now exercises explicit
/// VM operations — whose outcome codes land in the trace value slots and
/// therefore must also be byte-identical across the two variants.
pub fn run_transistency_seed_raw(seed: u64, fastpath: bool) -> RawRun {
    run_transistency_seed_raw_tuned(seed, fastpath, 1)
}

/// [`run_transistency_seed_raw`] with an explicit host-thread count (see
/// [`run_seed_raw_tuned`]).
pub fn run_transistency_seed_raw_tuned(seed: u64, fastpath: bool, host_threads: usize) -> RawRun {
    run_litmus_raw(&Litmus::generate_vm(seed), fastpath, host_threads)
}

fn run_litmus_raw(lit: &Litmus, fastpath: bool, host_threads: usize) -> RawRun {
    let cfg = CheckConfig::default();
    let fast_path = if fastpath {
        FastPath::enabled()
    } else {
        FastPath::reference()
    };
    let (mut engine, _aspace) = build_fixture(
        lit,
        &cfg,
        &tmi_telemetry::Tracer::disabled(),
        None,
        fast_path,
        SimTuning::with_threads(host_threads),
    );
    let run = engine.run();
    let trace = engine.take_trace();
    let metrics = engine.metrics("tmi");
    RawRun {
        halt: run.halt,
        cycles: run.cycles,
        thread_cycles: run.thread_cycles,
        ops: run.ops,
        trace,
        metrics,
    }
}

/// Checks one litmus program (see the module docs).
pub fn check_litmus(lit: &Litmus, cfg: &CheckConfig) -> CheckReport {
    let (mut divergences, mut steps, faults) = run_once(lit, cfg);
    let mut litmus = lit.clone();
    let mut minimized = false;
    if let (Some(first), true) = (divergences.first(), cfg.minimize) {
        let target = first.kind;
        let small = minimize(lit, cfg, target);
        if small != *lit {
            // The fault summary stays that of the original run — the
            // minimized replay re-derives the same schedule but fires
            // fewer points, and the campaign aggregates full-run stats.
            let (d, s, _) = run_once(&small, cfg);
            if d.iter().any(|x| x.kind == target) {
                divergences = d;
                steps = s;
                litmus = small;
                minimized = true;
            }
        }
    }
    CheckReport {
        seed: lit.seed,
        code_centric: cfg.code_centric,
        ablate_shootdown: cfg.ablate_shootdown,
        steps,
        divergences,
        coverage: litmus.coverage(),
        litmus,
        minimized,
        faults,
    }
}

/// Builds the standard litmus fixture, runs the repaired execution, and
/// diffs it against the schedule-replaying oracle.
fn run_once(lit: &Litmus, cfg: &CheckConfig) -> (Vec<Divergence>, usize, Option<FaultSummary>) {
    run_traced(lit, cfg, &tmi_telemetry::Tracer::disabled())
}

/// Builds the standard litmus fixture: a 4-core engine running a
/// protect-mode [`TmiRuntime`], the app and internal objects mapped, one
/// engine thread per litmus thread, repair forced on the program's data
/// pages, and execution tracing enabled. Shared by the differential
/// checker and the fast-path equivalence suite ([`run_seed_raw`]).
fn build_fixture(
    lit: &Litmus,
    cfg: &CheckConfig,
    tracer: &tmi_telemetry::Tracer,
    injector: Option<&FaultInjector>,
    fast_path: FastPath,
    tuning: SimTuning,
) -> (Engine<TmiRuntime>, AsId) {
    let mut ecfg = EngineConfig::with_cores(4);
    ecfg.fast_path = fast_path;
    ecfg.tuning = tuning;
    // Litmus runs are far too short for the sampling detector; repair is
    // forced below and the detection thread never ticks.
    ecfg.tick_interval = u64::MAX;
    if cfg.ablate_shootdown {
        // The ablation models a forgotten shootdown IPI, which is only
        // observable if cached translations can actually serve — force
        // the TLB on (independent of the configured fast path); per-PTE
        // shootdowns are dropped on the built kernel below.
        ecfg.fast_path.tlb = true;
    }
    let layout = AppLayout {
        app_obj: ObjId(0),
        app_start: VAddr::new(litmus::APP_START),
        app_len: litmus::APP_LEN,
        internal_obj: ObjId(1),
        internal_start: VAddr::new(litmus::INTERNAL_START),
        internal_len: litmus::INTERNAL_LEN,
        huge_pages: false,
    };
    let mut tcfg = TmiConfig {
        code_centric: cfg.code_centric,
        fs_threshold_per_sec: f64::INFINITY,
        ..TmiConfig::protect()
    };
    if let Some(inj) = injector {
        // Litmus runs are far shorter than the paper's sampling period, so
        // sample every HITM — otherwise the PEBS-drop fault point never
        // sees a record to lose.
        tcfg.perf.period = 1;
        if inj.efficacy_probe() {
            // Efficacy-probe schedules run the detection thread and judge
            // any commit overhead a net loss, so the first post-repair
            // window with commits reverts repair mid-run.
            ecfg.tick_interval = 25_000;
            tcfg.efficacy_revert_threshold = 0.0;
        }
    }
    let mut rt = TmiRuntime::new(tcfg, layout);
    rt.set_tracer(tracer.clone());
    if let Some(inj) = injector {
        rt.set_fault_injector(inj.clone());
    }
    let mut engine = Engine::new(ecfg, rt);
    let k = &mut engine.core_mut().kernel;
    if let Some(inj) = injector {
        k.set_fault_injector(inj.clone());
    }
    if cfg.ablate_shootdown {
        k.set_tlb_shootdown(false);
    }
    let app = k.create_object(litmus::APP_LEN);
    let internal = k.create_object(litmus::INTERNAL_LEN);
    let aspace = k.create_aspace();
    // Fixture maps tolerate injected transient map failures (burst length
    // is bounded well below this retry budget).
    k.map_retrying(
        aspace,
        MapRequest::object(VAddr::new(litmus::APP_START), litmus::APP_LEN, app, 0),
        8,
    )
    .expect("map app object");
    k.map_retrying(
        aspace,
        MapRequest::object(
            VAddr::new(litmus::INTERNAL_START),
            litmus::INTERNAL_LEN,
            internal,
            0,
        ),
        8,
    )
    .expect("map internal object");
    engine.create_root_process(aspace);
    for ops in &lit.threads {
        engine.add_thread(Box::new(SequenceProgram::new(ops.clone())));
    }
    if !lit.has_vm_ops() {
        // Transistency programs carry a mandatory pre-barrier T2P op and
        // trigger repair *mid-schedule* themselves — forcing it up front
        // would erase exactly the conversion window they probe.
        let pages = lit.data_pages();
        let (rt, core) = engine.runtime_and_core();
        rt.force_repair(core, &pages);
    }
    engine.enable_trace();
    (engine, aspace)
}

/// [`run_once`] with an explicit telemetry tracer (disabled in the fuzz
/// hot path so checking stays allocation-lean).
fn run_traced(
    lit: &Litmus,
    cfg: &CheckConfig,
    tracer: &tmi_telemetry::Tracer,
) -> (Vec<Divergence>, usize, Option<FaultSummary>) {
    let max_div = cfg.max_divergences;
    let faults = cfg.faults.map(|base| {
        let fseed = derive_fault_seed(base, lit.seed);
        (base, fseed, FaultInjector::new(FaultPlan::from_seed(fseed)))
    });
    let (mut engine, aspace) = build_fixture(
        lit,
        cfg,
        tracer,
        faults.as_ref().map(|(_, _, inj)| inj),
        FastPath::from_env(),
        SimTuning::from_env(),
    );
    let run = engine.run();
    let trace = engine.take_trace();
    let steps = trace.len();

    let mut divs = Vec::new();
    if !run.completed() {
        divs.push(Divergence {
            kind: DivergenceKind::Halted,
            step: None,
            detail: format!("repaired run ended with {:?} after {steps} steps", run.halt),
        });
    } else {
        // Replay the exact schedule through the SC oracle.
        let mut interp = Interp::new(lit.threads.clone());
        let mut replay_complete = true;
        for (k, st) in trace.iter().enumerate() {
            match interp.step(st.thread) {
                Err(e) => {
                    divs.push(Divergence {
                        kind: DivergenceKind::ScheduleInfeasible,
                        step: Some(k),
                        detail: e,
                    });
                    replay_complete = false;
                    break;
                }
                Ok(r) => {
                    if r.op != st.op {
                        divs.push(Divergence {
                            kind: DivergenceKind::OpMismatch,
                            step: Some(k),
                            detail: format!(
                                "t{}: engine executed `{}`, program prescribes `{}`",
                                st.thread, st.op, r.op
                            ),
                        });
                        replay_complete = false;
                        break;
                    }
                    // VM-op trace values are engine outcome codes, not
                    // memory observations — the SC oracle has no mapping
                    // state to predict them (they are checked fast-vs-
                    // reference path by the equivalence suite instead).
                    let vm = matches!(st.op, Op::Vm { .. });
                    if !vm && r.value != st.value && divs.len() < max_div {
                        divs.push(Divergence {
                            kind: DivergenceKind::ValueMismatch,
                            step: Some(k),
                            detail: format!(
                                "t{} `{}`: engine {}, oracle {}",
                                st.thread,
                                st.op,
                                fmt_val(st.value),
                                fmt_val(r.value)
                            ),
                        });
                    }
                }
            }
        }

        // Final shared-memory contents, slot by slot, straight from the
        // object frames (the view every process shares after commits).
        if replay_complete {
            for (i, slot) in lit.slots.iter().enumerate() {
                let engine_v = shared_read(&mut engine, aspace, slot.addr, slot.width);
                let oracle_v = interp.read(slot.addr, slot.width);
                if engine_v != oracle_v {
                    divs.push(Divergence {
                        kind: DivergenceKind::FinalMemory,
                        step: None,
                        detail: format!(
                            "slot s{i} @ {}: engine {engine_v:#x}, oracle {oracle_v:#x}",
                            slot.addr
                        ),
                    });
                }
            }
        }

        // AMBSA: no multi-byte slot may ever expose a value nobody stored.
        torn_values(lit, &trace, &mut engine, aspace, &mut divs);
    }

    let summary = faults.map(|(base, fseed, inj)| FaultSummary {
        base_seed: base,
        fault_seed: fseed,
        stats: inj.stats(),
        governor: engine.runtime().observe().repair().stats().clone(),
        state: engine.runtime().observe().repair().state(),
    });
    (divs, steps, summary)
}

fn fmt_val(v: Option<u64>) -> String {
    match v {
        Some(v) => format!("{v:#x}"),
        None => "none".to_string(),
    }
}

fn shared_read<R: tmi_sim::RuntimeHooks>(
    engine: &mut Engine<R>,
    aspace: AsId,
    addr: VAddr,
    width: Width,
) -> u64 {
    let pa = engine
        .core_mut()
        .kernel
        .object_paddr(aspace, addr)
        .expect("slot is object backed");
    engine.core_mut().kernel.physmem().read(pa, width)
}

/// Scans the trace for aligned-multi-byte-store-atomicity violations: a
/// value observed from (or left in) a slot that is in no prefix of the
/// slot's store history — the byte-mixed result of overlapping PTSB
/// commits (Fig. 3).
fn torn_values(
    lit: &Litmus,
    trace: &[TraceStep],
    engine: &mut Engine<TmiRuntime>,
    aspace: AsId,
    divs: &mut Vec<Divergence>,
) {
    for (i, slot) in lit.slots.iter().enumerate() {
        if slot.width == Width::W1 {
            continue; // single bytes cannot tear
        }
        let mask = width_mask(slot.width);
        let mut candidates: Vec<u64> = vec![0];
        let mut reported = 0usize;
        let note = |candidates: &mut Vec<u64>, v: u64| {
            if !candidates.contains(&v) {
                candidates.push(v);
            }
        };
        for (k, st) in trace.iter().enumerate() {
            let observe = |candidates: &mut Vec<u64>, v: u64, reported: &mut usize| -> bool {
                let torn = !candidates.contains(&v);
                if torn {
                    // Remember it so one torn value isn't reported per read.
                    candidates.push(v);
                }
                torn && {
                    *reported += 1;
                    *reported <= 2
                }
            };
            match st.op {
                Op::Store {
                    addr, width, value, ..
                }
                | Op::AtomicStore {
                    addr, width, value, ..
                } if addr == slot.addr && width == slot.width => {
                    note(&mut candidates, value & mask);
                }
                Op::AtomicRmw {
                    addr,
                    width,
                    rmw,
                    operand,
                    ..
                } if addr == slot.addr && width == slot.width => {
                    let old = st.value.unwrap_or(0);
                    if observe(&mut candidates, old, &mut reported) {
                        divs.push(torn(i, slot.addr, k, old));
                    }
                    note(&mut candidates, rmw.apply(old, operand, width));
                }
                Op::Cas {
                    addr,
                    width,
                    expected,
                    desired,
                    ..
                } if addr == slot.addr && width == slot.width => {
                    let obs = st.value.unwrap_or(0);
                    if observe(&mut candidates, obs, &mut reported) {
                        divs.push(torn(i, slot.addr, k, obs));
                    }
                    if obs == expected {
                        note(&mut candidates, desired & mask);
                    }
                }
                Op::Load { addr, width, .. } | Op::AtomicLoad { addr, width, .. }
                    if addr == slot.addr && width == slot.width =>
                {
                    let obs = st.value.unwrap_or(0);
                    if observe(&mut candidates, obs, &mut reported) {
                        divs.push(torn(i, slot.addr, k, obs));
                    }
                }
                _ => {}
            }
        }
        let final_v = shared_read(engine, aspace, slot.addr, slot.width);
        if !candidates.contains(&final_v) {
            divs.push(Divergence {
                kind: DivergenceKind::TornValue,
                step: None,
                detail: format!(
                    "slot s{i} @ {}: final value {final_v:#x} was never stored by any thread",
                    slot.addr
                ),
            });
        }
    }
}

fn torn(slot: usize, addr: VAddr, step: usize, v: u64) -> Divergence {
    Divergence {
        kind: DivergenceKind::TornValue,
        step: Some(step),
        detail: format!("slot s{slot} @ {addr}: observed {v:#x}, never stored by any thread"),
    }
}

/// Greedy shrinking: drop the post-barrier phase, drop the barrier, then
/// repeatedly truncate threads at region-balanced cut points — accepting
/// each candidate only if a divergence of the original kind persists.
fn minimize(lit: &Litmus, cfg: &CheckConfig, target: DivergenceKind) -> Litmus {
    let budget = std::cell::Cell::new(48usize);
    let diverges = |cand: &Litmus| -> bool {
        if budget.get() == 0 {
            return false;
        }
        budget.set(budget.get() - 1);
        run_once(cand, cfg).0.iter().any(|d| d.kind == target)
    };

    let mut cur = lit.clone();
    let cand = truncate_after_barrier(&cur);
    if cand != cur && diverges(&cand) {
        cur = cand;
    }
    let cand = remove_barrier(&cur);
    if cand != cur && diverges(&cand) {
        cur = cand;
    }
    // Drop VM ops one at a time, back to front so indices stay valid.
    // They are depth-neutral single ops, so removal never unbalances a
    // region; even the generator's mandatory T2P may go if the divergence
    // survives without it.
    for t in 0..cur.threads.len() {
        let mut i = cur.threads[t].len();
        while i > 0 {
            i -= 1;
            if matches!(cur.threads[t][i], Op::Vm { .. }) {
                let mut cand = cur.clone();
                cand.threads[t].remove(i);
                if diverges(&cand) {
                    cur = cand;
                }
            }
        }
    }
    loop {
        let mut improved = false;
        for t in 0..cur.threads.len() {
            while let Some(cut) = last_balanced_cut(&cur.threads[t]) {
                let mut cand = cur.clone();
                cand.threads[t].truncate(cut);
                if diverges(&cand) {
                    cur = cand;
                    improved = true;
                } else {
                    break;
                }
            }
        }
        if !improved || budget.get() == 0 {
            break;
        }
    }
    cur
}

fn truncate_after_barrier(lit: &Litmus) -> Litmus {
    let mut out = lit.clone();
    for ops in &mut out.threads {
        if let Some(b) = ops.iter().position(|o| matches!(o, Op::BarrierWait { .. })) {
            ops.truncate(b + 1);
        }
    }
    out
}

fn remove_barrier(lit: &Litmus) -> Litmus {
    let mut out = lit.clone();
    for ops in &mut out.threads {
        ops.retain(|o| !matches!(o, Op::BarrierWait { .. }));
    }
    out
}

/// The largest strict prefix length at which no asm region or critical
/// section is open and the thread's barrier (if any) is retained.
fn last_balanced_cut(ops: &[Op]) -> Option<usize> {
    let barrier = ops.iter().position(|o| matches!(o, Op::BarrierWait { .. }));
    let floor = barrier.map_or(0, |b| b + 1);
    let mut depth = 0i32;
    let mut best = None;
    for (i, op) in ops.iter().enumerate() {
        if i >= floor && depth == 0 && i < ops.len() {
            best = Some(i);
        }
        match op {
            Op::AsmEnter | Op::MutexLock { .. } | Op::SpinLock { .. } => depth += 1,
            Op::AsmExit | Op::MutexUnlock { .. } | Op::SpinUnlock { .. } => depth -= 1,
            _ => {}
        }
    }
    // `best` is the last depth-0 position strictly before the end; cutting
    // there removes at least one op.
    best.filter(|&b| b < ops.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_seed_replays_clean() {
        let cfg = CheckConfig::default();
        let r = check_seed(1, &cfg);
        assert!(r.clean(), "unexpected divergences:\n{}", r.render());
        assert!(r.steps > 0);
        assert!(r.render().contains("CLEAN"));
    }

    #[test]
    fn ablation_diverges_and_reports_reproducibly() {
        let cfg = CheckConfig {
            code_centric: false,
            ..CheckConfig::default()
        };
        let seed = (0..64)
            .find(|&s| !check_seed(s, &cfg).clean())
            .expect("some seed must diverge with code-centric off");
        let a = check_seed(seed, &cfg);
        let b = check_seed(seed, &cfg);
        assert_eq!(a.render(), b.render(), "report must be deterministic");
        assert!(a.render().contains("reproduce: fuzz_consistency"));
        assert!(a.render().contains("--ablate-code-centric"));
        assert!(a.litmus.total_ops() > 0);
    }

    #[test]
    fn minimizer_shrinks_divergent_programs() {
        let cfg = CheckConfig {
            code_centric: false,
            ..CheckConfig::default()
        };
        let seed = (0..64)
            .find(|&s| !check_seed(s, &cfg).clean())
            .expect("some seed must diverge with code-centric off");
        let original = Litmus::generate(seed);
        let r = check_seed(seed, &cfg);
        assert!(
            r.litmus.total_ops() <= original.total_ops(),
            "minimization never grows the program"
        );
        // The minimized program still diverges with the same first kind.
        let kinds: Vec<DivergenceKind> = r.divergences.iter().map(|d| d.kind).collect();
        assert!(!kinds.is_empty());
    }

    #[test]
    fn fault_mode_checks_clean_and_is_deterministic() {
        use tmi_faultpoint::FaultPoint;
        let cfg = CheckConfig {
            faults: Some(0xF00D),
            ..CheckConfig::default()
        };
        let a = check_seed(5, &cfg);
        let b = check_seed(5, &cfg);
        assert!(
            a.clean(),
            "faults may abort repair, never diverge:\n{}",
            a.render()
        );
        assert_eq!(
            a.render(),
            b.render(),
            "(program seed, fault seed) must reproduce the run exactly"
        );
        let fs = a.faults.as_ref().expect("fault summary present");
        assert_eq!(fs.base_seed, 0xF00D);
        assert_eq!(fs.fault_seed, derive_fault_seed(0xF00D, 5));
        let rolls: u64 = FaultPoint::ALL.iter().map(|&p| fs.stats.get(p).rolls).sum();
        assert!(rolls > 0, "the repair path must roll fault points");
        assert!(a.render().contains("--faults 61453"), "{}", a.render());
    }

    #[test]
    fn fault_free_check_reports_no_fault_summary() {
        let r = check_seed(5, &CheckConfig::default());
        assert!(r.faults.is_none());
        assert!(!r.render().contains("faults("));
    }

    #[test]
    fn transistency_seeds_check_clean_with_tmi_on() {
        let cfg = CheckConfig::default();
        for seed in 0..8 {
            let r = check_transistency_seed(seed, &cfg);
            assert!(
                r.litmus.has_vm_ops(),
                "seed {seed}: transistency program must carry VM ops"
            );
            assert!(r.clean(), "seed {seed} diverged:\n{}", r.render());
        }
    }

    #[test]
    fn enumerated_vm_variants_check_clean() {
        let cfg = CheckConfig::default();
        let reports = check_transistency_variants(11, 12, &cfg);
        assert!(!reports.is_empty());
        for (k, r) in reports.iter().enumerate() {
            assert!(r.clean(), "variant {k} diverged:\n{}", r.render());
        }
    }

    #[test]
    fn shootdown_ablation_diverges_deterministically_and_minimizes() {
        let cfg = CheckConfig {
            ablate_shootdown: true,
            ..CheckConfig::default()
        };
        let seed = (0..64)
            .find(|&s| !check_transistency_seed(s, &cfg).clean())
            .expect("some transistency seed must diverge with shootdowns ablated");
        let a = check_transistency_seed(seed, &cfg);
        let b = check_transistency_seed(seed, &cfg);
        assert_eq!(a.render(), b.render(), "report must be deterministic");
        assert!(a.render().contains("--transistency"), "{}", a.render());
        assert!(a.render().contains("--ablate-shootdown"), "{}", a.render());
        assert!(
            a.litmus.total_ops() <= Litmus::generate_vm(seed).total_ops(),
            "minimization never grows the program"
        );
    }

    #[test]
    fn balanced_cut_respects_regions_and_barrier() {
        let lit = Litmus::generate(3);
        for ops in &lit.threads {
            if let Some(cut) = last_balanced_cut(ops) {
                let mut depth = 0i32;
                for op in &ops[..cut] {
                    match op {
                        Op::AsmEnter | Op::MutexLock { .. } | Op::SpinLock { .. } => depth += 1,
                        Op::AsmExit | Op::MutexUnlock { .. } | Op::SpinUnlock { .. } => depth -= 1,
                        _ => {}
                    }
                }
                assert_eq!(depth, 0, "cut leaves a region open");
                assert!(
                    ops[..cut]
                        .iter()
                        .any(|o| matches!(o, Op::BarrierWait { .. })),
                    "cut must not drop the barrier"
                );
            }
        }
    }
}
