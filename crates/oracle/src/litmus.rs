//! Deterministic litmus-program generation.
//!
//! A litmus program is a small multi-threaded [`Op`] program designed to
//! exercise every row of the paper's Table 2 consistency matrix on
//! PTSB-armed pages: plain loads/stores, relaxed and ordering C++11
//! atomics, inline-assembly regions, mutexes, spinlocks, barriers and
//! fences. Generation is a pure function of the seed — no wall clock, no
//! global RNG — so any divergence the differential checker finds is
//! reproducible from `(seed, config)` alone.
//!
//! ## The data-race-free slot discipline
//!
//! Every memory location a litmus program touches is a *slot* with a
//! class, and the generator only emits accesses the class permits:
//!
//! * [`SlotClass::Atomic`] — accessed exclusively through atomic ops, by
//!   any thread.
//! * [`SlotClass::Asm`] — accessed exclusively inside `asm` regions
//!   (plain ops allowed, races allowed: asm accesses get TSO semantics
//!   and bypass the PTSB entirely).
//! * [`SlotClass::Guarded`] — plain ops, only inside the critical section
//!   of one specific mutex or spinlock.
//! * [`SlotClass::Private`] — plain ops, only by the owning thread.
//! * [`SlotClass::Phase`] — plain-stored by one writer thread before the
//!   barrier, plain-loaded by anyone after it.
//!
//! Under code-centric consistency this discipline makes the program free
//! of *unsynchronized* plain-access races, so the repaired execution must
//! be value-equivalent to a sequentially consistent interpretation of the
//! same schedule ([`crate::interp`]). With the `code_centric` ablation the
//! atomic, asm and spinlock rules lose their PTSB bypass/flush semantics
//! and the same programs reproduce the paper's Fig. 11/12 failure modes.
//!
//! Lock words, the barrier word and spinlock words live on a dedicated
//! *sync page* that is never PTSB-armed, mirroring TMI's process-shared
//! internal lock objects (§3.2).

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use tmi_machine::{VAddr, Vpn, Width, FRAME_SIZE};
use tmi_program::{MemOrder, Op, OpBuilder, Pc, RmwOp, VmOp};

/// Base of the application shared object every litmus program maps.
pub const APP_START: u64 = 0x10_0000;
/// Length of the application object.
pub const APP_LEN: u64 = 64 * FRAME_SIZE;
/// Base of the TMI-internal region (lock redirection target).
pub const INTERNAL_START: u64 = 0x100_0000;
/// Length of the internal region.
pub const INTERNAL_LEN: u64 = 16 * FRAME_SIZE;

/// Number of PTSB-armed data pages at the start of the app region.
const DATA_PAGE_COUNT: u64 = 2;
/// App-region page index of the (never armed) sync page.
const SYNC_PAGE_INDEX: u64 = 8;

const PC_LD: Pc = Pc(0x40_0000);
const PC_ST: Pc = Pc(0x40_0010);
const PC_ALD: Pc = Pc(0x40_0020);
const PC_AST: Pc = Pc(0x40_0030);
const PC_RMW: Pc = Pc(0x40_0040);
const PC_CAS: Pc = Pc(0x40_0050);
const PC_ASM_LD: Pc = Pc(0x40_0060);
const PC_ASM_ST: Pc = Pc(0x40_0070);

const LOAD_ORDERS: [MemOrder; 3] = [MemOrder::Relaxed, MemOrder::Acquire, MemOrder::SeqCst];
const STORE_ORDERS: [MemOrder; 3] = [MemOrder::Relaxed, MemOrder::Release, MemOrder::SeqCst];
const ALL_ORDERS: [MemOrder; 5] = [
    MemOrder::Relaxed,
    MemOrder::Acquire,
    MemOrder::Release,
    MemOrder::AcqRel,
    MemOrder::SeqCst,
];
const RMW_OPS: [RmwOp; 6] = [
    RmwOp::Add,
    RmwOp::Sub,
    RmwOp::And,
    RmwOp::Or,
    RmwOp::Xor,
    RmwOp::Xchg,
];

/// How a slot may be accessed (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotClass {
    /// Atomic ops only, any thread.
    Atomic,
    /// Inside asm regions only, any thread, races allowed.
    Asm,
    /// Plain ops inside the critical section of `guard` only.
    Guarded {
        /// Index into [`Litmus::guards`].
        guard: usize,
    },
    /// Plain ops by the owning thread only.
    Private {
        /// Thread index.
        owner: usize,
    },
    /// Plain-stored by `writer` before the barrier, loaded after it.
    Phase {
        /// Thread index of the sole phase-0 writer.
        writer: usize,
    },
}

/// One memory location under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Address on a PTSB-armed data page.
    pub addr: VAddr,
    /// The one width every access to this slot uses.
    pub width: Width,
    /// Access discipline.
    pub class: SlotClass,
}

/// Kind of a synchronization guard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardKind {
    /// `pthread_mutex`-style lock (commits the PTSB via `on_sync`).
    Mutex,
    /// Spinlock (commits only through its ordering-atomic exchange, i.e.
    /// only under code-centric consistency).
    Spin,
}

/// A lock object on the sync page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Guard {
    /// Lock-word address (sync page, never armed).
    pub addr: VAddr,
    /// Mutex or spinlock.
    pub kind: GuardKind,
}

/// Static Table 2 coverage counters of a litmus program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Plain loads/stores outside asm regions.
    pub plain: u64,
    /// Relaxed atomic operations.
    pub atomic_relaxed: u64,
    /// Ordering (acquire/release/acq-rel/seq-cst) atomic operations.
    pub atomic_ordering: u64,
    /// Accesses inside asm regions.
    pub asm_accesses: u64,
    /// Mutex lock/unlock pairs' operations.
    pub mutex_ops: u64,
    /// Spinlock acquire/release operations.
    pub spin_ops: u64,
    /// Barrier arrivals.
    pub barrier_ops: u64,
    /// Fences.
    pub fences: u64,
    /// Explicit `mprotect` VM ops (transistency programs only; all the
    /// `vm_*` counters stay zero for [`Litmus::generate`] programs).
    pub vm_mprotect: u64,
    /// Explicit COW-break VM ops.
    pub vm_cow_break: u64,
    /// Explicit T2P-conversion VM ops.
    pub vm_t2p: u64,
    /// Explicit twin-commit VM ops.
    pub vm_twin_commit: u64,
    /// Explicit TLB-shootdown VM ops.
    pub vm_shootdown: u64,
}

impl Coverage {
    /// Accumulates another program's counters.
    pub fn add(&mut self, o: &Coverage) {
        self.plain += o.plain;
        self.atomic_relaxed += o.atomic_relaxed;
        self.atomic_ordering += o.atomic_ordering;
        self.asm_accesses += o.asm_accesses;
        self.mutex_ops += o.mutex_ops;
        self.spin_ops += o.spin_ops;
        self.barrier_ops += o.barrier_ops;
        self.fences += o.fences;
        self.vm_mprotect += o.vm_mprotect;
        self.vm_cow_break += o.vm_cow_break;
        self.vm_t2p += o.vm_t2p;
        self.vm_twin_commit += o.vm_twin_commit;
        self.vm_shootdown += o.vm_shootdown;
    }

    /// True if every Table 2 access row (regular, relaxed atomic, ordering
    /// atomic, asm) appears.
    pub fn all_table2_rows(&self) -> bool {
        self.plain > 0
            && self.atomic_relaxed > 0
            && self.atomic_ordering > 0
            && self.asm_accesses > 0
    }

    /// Total explicit VM operations of every kind.
    pub fn vm_ops(&self) -> u64 {
        self.vm_mprotect + self.vm_cow_break + self.vm_t2p + self.vm_twin_commit + self.vm_shootdown
    }

    /// True if all five VM-op kinds appear (the transistency analogue of
    /// [`Coverage::all_table2_rows`]).
    pub fn all_vm_kinds(&self) -> bool {
        self.vm_mprotect > 0
            && self.vm_cow_break > 0
            && self.vm_t2p > 0
            && self.vm_twin_commit > 0
            && self.vm_shootdown > 0
    }
}

impl std::fmt::Display for Coverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "plain={} atomic(relaxed={} ordering={}) asm={} sync(mutex={} spin={} barrier={}) fence={}",
            self.plain,
            self.atomic_relaxed,
            self.atomic_ordering,
            self.asm_accesses,
            self.mutex_ops,
            self.spin_ops,
            self.barrier_ops,
            self.fences
        )?;
        if self.vm_ops() > 0 {
            write!(
                f,
                " vm(mprotect={} cow={} t2p={} commit={} shootdown={})",
                self.vm_mprotect,
                self.vm_cow_break,
                self.vm_t2p,
                self.vm_twin_commit,
                self.vm_shootdown
            )?;
        }
        Ok(())
    }
}

/// A generated litmus program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Litmus {
    /// The seed it was generated from.
    pub seed: u64,
    /// Per-thread op lists (the engine appends the final `Exit`).
    pub threads: Vec<Vec<Op>>,
    /// The slots under test.
    pub slots: Vec<Slot>,
    /// The lock objects.
    pub guards: Vec<Guard>,
}

/// Address of the shared barrier every litmus thread arrives at once.
pub fn barrier_addr() -> VAddr {
    VAddr::new(APP_START + SYNC_PAGE_INDEX * FRAME_SIZE)
}

fn guard_addr(i: usize) -> VAddr {
    VAddr::new(APP_START + SYNC_PAGE_INDEX * FRAME_SIZE + 64 * (i as u64 + 1))
}

fn pick(rng: &mut StdRng, n: u64) -> u64 {
    rng.next_u64() % n
}

fn pick_width(rng: &mut StdRng) -> Width {
    match pick(rng, 20) {
        0..=9 => Width::W8,
        10..=14 => Width::W4,
        15..=17 => Width::W2,
        _ => Width::W1,
    }
}

impl Litmus {
    /// Generates the litmus program for `seed` (pure, deterministic).
    ///
    /// The RNG draw order of this entry point is a stability contract:
    /// golden replay gates and fixed-seed campaigns depend on
    /// `generate(seed)` producing byte-identical programs across
    /// releases. Transistency programs therefore live behind the
    /// separate [`Litmus::generate_vm`] entry point instead of a flag
    /// that would perturb the shared draw sequence.
    pub fn generate(seed: u64) -> Litmus {
        Self::generate_with(seed, false)
    }

    /// Generates the transistency litmus program for `seed`: the same
    /// program family as [`Litmus::generate`], with explicit VM
    /// operations (`mprotect`, COW break, T2P conversion, twin commit,
    /// TLB shootdown) interleaved at balanced positions, plus one
    /// guaranteed pre-barrier T2P in thread 0 so every program forces a
    /// repair episode to start *mid-schedule* rather than being armed up
    /// front by the checker.
    pub fn generate_vm(seed: u64) -> Litmus {
        Self::generate_with(seed, true)
    }

    fn generate_with(seed: u64, vm: bool) -> Litmus {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_threads = 2 + pick(&mut rng, 3) as usize;
        let n_mutex = 1 + pick(&mut rng, 2) as usize;
        let n_spin = pick(&mut rng, 2) as usize;
        let guards: Vec<Guard> = (0..n_mutex + n_spin)
            .map(|i| Guard {
                addr: guard_addr(i),
                kind: if i < n_mutex {
                    GuardKind::Mutex
                } else {
                    GuardKind::Spin
                },
            })
            .collect();

        let n_slots = 8 + pick(&mut rng, 9) as usize;
        let mut slots = Vec::with_capacity(n_slots);
        for i in 0..n_slots {
            let page = (i % DATA_PAGE_COUNT as usize) as u64;
            let addr = VAddr::new(APP_START + page * FRAME_SIZE + (i as u64 / DATA_PAGE_COUNT) * 8);
            let mut width = pick_width(&mut rng);
            let class = if i == 0 {
                SlotClass::Atomic
            } else if i == 1 {
                SlotClass::Asm
            } else {
                match pick(&mut rng, 100) {
                    0..=19 => SlotClass::Atomic,
                    20..=34 => SlotClass::Asm,
                    35..=59 => SlotClass::Guarded {
                        guard: pick(&mut rng, guards.len() as u64) as usize,
                    },
                    60..=79 => SlotClass::Private {
                        owner: pick(&mut rng, n_threads as u64) as usize,
                    },
                    _ => SlotClass::Phase {
                        writer: pick(&mut rng, n_threads as u64) as usize,
                    },
                }
            };
            // Single-byte "atomics" cannot tear; keep atomic slots
            // multi-byte so the AMBSA detector has something to check.
            if class == SlotClass::Atomic && width == Width::W1 {
                width = Width::W8;
            }
            slots.push(Slot { addr, width, class });
        }

        let ctx = Ctx::new(&slots, &guards, n_threads);
        let mut threads = Vec::with_capacity(n_threads);
        for t in 0..n_threads {
            let mut ops = gen_phase(&mut rng, 0, t, &ctx, vm);
            ops.push(Op::BarrierWait {
                barrier: barrier_addr(),
            });
            ops.extend(gen_phase(&mut rng, 1, t, &ctx, vm));
            threads.push(ops);
        }

        // Guarantee every phase slot is actually written before the
        // barrier: prepend a store to its writer's phase-0 ops.
        for (s, slot) in slots.iter().enumerate() {
            if let SlotClass::Phase { writer } = slot.class {
                let value = rng.next_u64();
                threads[writer].insert(
                    0,
                    Op::Store {
                        pc: PC_ST,
                        addr: slot.addr,
                        width: slot.width,
                        value,
                    },
                );
                let _ = s;
            }
        }

        if vm {
            // Guarantee the repair episode starts mid-run: one T2P on the
            // first data page, at a random balanced pre-barrier position
            // in thread 0. Everything before it runs unrepaired (plain
            // shared memory, still SC), everything after runs armed.
            let points = vm_insertion_points(&threads[0]);
            let pos = points[pick(&mut rng, points.len() as u64) as usize];
            threads[0].insert(
                pos,
                Op::Vm {
                    op: VmOp::T2p,
                    addr: VAddr::new(APP_START),
                },
            );
        }

        Litmus {
            seed,
            threads,
            slots,
            guards,
        }
    }

    /// True if any thread issues an explicit VM operation (i.e. this is a
    /// transistency program; the checker then lets the program trigger
    /// repair itself instead of arming pages up front).
    pub fn has_vm_ops(&self) -> bool {
        self.threads
            .iter()
            .flatten()
            .any(|op| matches!(op, Op::Vm { .. }))
    }

    /// The PTSB-armed pages the checker must hand to `force_repair`.
    pub fn data_pages(&self) -> Vec<Vpn> {
        (0..DATA_PAGE_COUNT)
            .map(|i| Vpn(APP_START / FRAME_SIZE + i))
            .collect()
    }

    /// Total static op count across threads.
    pub fn total_ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Static Table 2 coverage of this program.
    pub fn coverage(&self) -> Coverage {
        let mut c = Coverage::default();
        for ops in &self.threads {
            let mut depth = 0u32;
            for op in ops {
                match *op {
                    Op::AsmEnter => depth += 1,
                    Op::AsmExit => depth -= 1,
                    Op::Load { .. } | Op::Store { .. } => {
                        if depth > 0 {
                            c.asm_accesses += 1;
                        } else {
                            c.plain += 1;
                        }
                    }
                    Op::AtomicLoad { order, .. }
                    | Op::AtomicStore { order, .. }
                    | Op::AtomicRmw { order, .. }
                    | Op::Cas { order, .. } => {
                        if order.is_ordering() {
                            c.atomic_ordering += 1;
                        } else {
                            c.atomic_relaxed += 1;
                        }
                    }
                    Op::MutexLock { .. } | Op::MutexUnlock { .. } => c.mutex_ops += 1,
                    Op::SpinLock { .. } | Op::SpinUnlock { .. } => c.spin_ops += 1,
                    Op::BarrierWait { .. } => c.barrier_ops += 1,
                    Op::Fence { .. } => c.fences += 1,
                    Op::Vm { op, .. } => match op {
                        VmOp::Mprotect => c.vm_mprotect += 1,
                        VmOp::CowBreak => c.vm_cow_break += 1,
                        VmOp::T2p => c.vm_t2p += 1,
                        VmOp::TwinCommit => c.vm_twin_commit += 1,
                        VmOp::Shootdown => c.vm_shootdown += 1,
                    },
                    Op::Compute { .. } | Op::Exit => {}
                }
            }
        }
        c
    }

    /// Bounded schedule enumeration (DPOR-lite) for `seed`: a small
    /// two-thread base program, with the VM-op "sync points" — one T2P in
    /// thread 0, one seed-chosen second op in thread 1, one seed-chosen
    /// trailing op in thread 0 — placed at *every* pair of balanced
    /// pre-barrier positions, in deterministic order, capped at `cap`
    /// variants. Where the seeded mode samples VM-op placements randomly,
    /// this mode exhausts them for programs small enough to afford it:
    /// the transistency analogue of enumerating interleavings around sync
    /// points rather than fuzzing them.
    pub fn vm_variants(seed: u64, cap: usize) -> Vec<Litmus> {
        let base = Litmus::generate_small(seed);
        // Draws for the movable ops' kinds come from a distinct stream so
        // they cannot perturb (or be perturbed by) base-program growth.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7472_616E_7369_7374); // "transist"
        let second = vm_op_kind(&mut rng);
        let trailing = vm_op_kind(&mut rng);
        let p0 = vm_insertion_points(&base.threads[0]);
        let p1 = vm_insertion_points(&base.threads[1]);
        let mut out = Vec::new();
        for &i in &p0 {
            for &j in &p1 {
                if out.len() >= cap {
                    return out;
                }
                let mut v = base.clone();
                v.threads[0].insert(
                    i,
                    Op::Vm {
                        op: VmOp::T2p,
                        addr: VAddr::new(APP_START),
                    },
                );
                v.threads[1].insert(
                    j,
                    Op::Vm {
                        op: second,
                        addr: VAddr::new(APP_START + (DATA_PAGE_COUNT - 1) * FRAME_SIZE),
                    },
                );
                v.threads[0].push(Op::Vm {
                    op: trailing,
                    addr: VAddr::new(APP_START),
                });
                out.push(v);
            }
        }
        out
    }

    /// A deliberately small two-thread program for the enumeration mode:
    /// few slots, short phases, one mutex — enough surface for VM-op
    /// placements to interact with real accesses while keeping the
    /// placement cross-product tractable.
    fn generate_small(seed: u64) -> Litmus {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let n_threads = 2;
        let guards = vec![Guard {
            addr: guard_addr(0),
            kind: GuardKind::Mutex,
        }];
        let n_slots = 4 + pick(&mut rng, 3) as usize;
        let mut slots = Vec::with_capacity(n_slots);
        for i in 0..n_slots {
            let page = (i % DATA_PAGE_COUNT as usize) as u64;
            let addr = VAddr::new(APP_START + page * FRAME_SIZE + (i as u64 / DATA_PAGE_COUNT) * 8);
            let mut width = pick_width(&mut rng);
            let class = if i == 0 {
                SlotClass::Atomic
            } else if i == 1 {
                SlotClass::Asm
            } else {
                match pick(&mut rng, 100) {
                    0..=24 => SlotClass::Guarded { guard: 0 },
                    25..=59 => SlotClass::Private {
                        owner: pick(&mut rng, n_threads as u64) as usize,
                    },
                    _ => SlotClass::Phase {
                        writer: pick(&mut rng, n_threads as u64) as usize,
                    },
                }
            };
            if class == SlotClass::Atomic && width == Width::W1 {
                width = Width::W8;
            }
            slots.push(Slot { addr, width, class });
        }
        let ctx = Ctx::new(&slots, &guards, n_threads);
        let mut threads = Vec::with_capacity(n_threads);
        for t in 0..n_threads {
            let pre = 2 + pick(&mut rng, 2);
            let mut ops = gen_phase_n(&mut rng, 0, t, &ctx, false, pre);
            ops.push(Op::BarrierWait {
                barrier: barrier_addr(),
            });
            let post = 2 + pick(&mut rng, 2);
            ops.extend(gen_phase_n(&mut rng, 1, t, &ctx, false, post));
            threads.push(ops);
        }
        for slot in slots.iter() {
            if let SlotClass::Phase { writer } = slot.class {
                let value = rng.next_u64();
                threads[writer].insert(
                    0,
                    Op::Store {
                        pc: PC_ST,
                        addr: slot.addr,
                        width: slot.width,
                        value,
                    },
                );
            }
        }
        Litmus {
            seed,
            threads,
            slots,
            guards,
        }
    }

    /// Human-readable program listing for divergence reports.
    pub fn listing(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "litmus seed {}: {} threads, {} slots, {} guards",
            self.seed,
            self.threads.len(),
            self.slots.len(),
            self.guards.len()
        );
        for (i, slot) in self.slots.iter().enumerate() {
            let class = match slot.class {
                SlotClass::Atomic => "atomic".to_string(),
                SlotClass::Asm => "asm".to_string(),
                SlotClass::Guarded { guard } => format!("guarded(g{guard})"),
                SlotClass::Private { owner } => format!("private(t{owner})"),
                SlotClass::Phase { writer } => format!("phase(writer t{writer})"),
            };
            let _ = writeln!(s, "  s{i}: {} {} {class}", slot.addr, slot.width);
        }
        for (i, g) in self.guards.iter().enumerate() {
            let kind = match g.kind {
                GuardKind::Mutex => "mutex",
                GuardKind::Spin => "spin",
            };
            let _ = writeln!(s, "  g{i}: {} {kind}", g.addr);
        }
        for (t, ops) in self.threads.iter().enumerate() {
            let _ = writeln!(s, "thread {t}:");
            for (k, op) in ops.iter().enumerate() {
                let _ = writeln!(s, "  {k:3}: {op}");
            }
        }
        s
    }
}

/// Immutable slot-index tables the action generator draws from.
struct Ctx {
    atomic: Vec<usize>,
    asm: Vec<usize>,
    phase: Vec<usize>,
    by_guard: Vec<Vec<usize>>,
    by_owner: Vec<Vec<usize>>,
    slots: Vec<Slot>,
    guards: Vec<Guard>,
}

impl Ctx {
    fn new(slots: &[Slot], guards: &[Guard], n_threads: usize) -> Ctx {
        let mut ctx = Ctx {
            atomic: Vec::new(),
            asm: Vec::new(),
            phase: Vec::new(),
            by_guard: vec![Vec::new(); guards.len()],
            by_owner: vec![Vec::new(); n_threads],
            slots: slots.to_vec(),
            guards: guards.to_vec(),
        };
        for (i, s) in slots.iter().enumerate() {
            match s.class {
                SlotClass::Atomic => ctx.atomic.push(i),
                SlotClass::Asm => ctx.asm.push(i),
                SlotClass::Guarded { guard } => ctx.by_guard[guard].push(i),
                SlotClass::Private { owner } => ctx.by_owner[owner].push(i),
                SlotClass::Phase { .. } => ctx.phase.push(i),
            }
        }
        ctx
    }

    fn pick_slot(&self, rng: &mut StdRng, from: &[usize]) -> Slot {
        self.slots[from[pick(rng, from.len() as u64) as usize]]
    }
}

fn plain_op(rng: &mut StdRng, slot: Slot, b: OpBuilder, in_asm: bool) -> OpBuilder {
    let (ld, st) = if in_asm {
        (PC_ASM_LD, PC_ASM_ST)
    } else {
        (PC_LD, PC_ST)
    };
    if pick(rng, 2) == 0 {
        b.load(ld, slot.addr, slot.width)
    } else {
        let v = rng.next_u64();
        b.store(st, slot.addr, slot.width, v)
    }
}

fn atomic_op(rng: &mut StdRng, slot: Slot, b: OpBuilder) -> OpBuilder {
    match pick(rng, 4) {
        0 => b.atomic_load(
            PC_ALD,
            slot.addr,
            slot.width,
            LOAD_ORDERS[pick(rng, 3) as usize],
        ),
        1 => {
            let v = rng.next_u64();
            b.atomic_store(
                PC_AST,
                slot.addr,
                slot.width,
                v,
                STORE_ORDERS[pick(rng, 3) as usize],
            )
        }
        2 => {
            let op = RMW_OPS[pick(rng, 6) as usize];
            let operand = rng.next_u64();
            b.rmw(
                PC_RMW,
                slot.addr,
                slot.width,
                op,
                operand,
                ALL_ORDERS[pick(rng, 5) as usize],
            )
        }
        _ => {
            // Half the CAS ops expect zero so some succeed early in the
            // run; the rest expect a random value and (almost) always fail.
            let expected = if pick(rng, 2) == 0 { 0 } else { rng.next_u64() };
            let desired = rng.next_u64();
            b.cas(
                PC_CAS,
                slot.addr,
                slot.width,
                expected,
                desired,
                ALL_ORDERS[pick(rng, 5) as usize],
            )
        }
    }
}

fn gen_phase(rng: &mut StdRng, phase: usize, t: usize, ctx: &Ctx, vm: bool) -> Vec<Op> {
    let n_actions = 3 + pick(rng, 6);
    gen_phase_n(rng, phase, t, ctx, vm, n_actions)
}

fn gen_phase_n(
    rng: &mut StdRng,
    phase: usize,
    t: usize,
    ctx: &Ctx,
    vm: bool,
    n_actions: u64,
) -> Vec<Op> {
    let mut b = OpBuilder::new();
    for _ in 0..n_actions {
        b = gen_action(rng, phase, t, ctx, vm, b);
    }
    b.build()
}

/// Balanced insertion points in a thread's pre-barrier prefix: indices
/// where a depth-neutral op can go without landing inside an asm region
/// or a critical section. Includes the position just before the barrier.
fn vm_insertion_points(ops: &[Op]) -> Vec<usize> {
    let mut points = Vec::new();
    let mut depth = 0i32;
    let mut held = false;
    for (i, op) in ops.iter().enumerate() {
        if depth == 0 && !held {
            points.push(i);
        }
        match op {
            Op::AsmEnter => depth += 1,
            Op::AsmExit => depth -= 1,
            Op::MutexLock { .. } | Op::SpinLock { .. } => held = true,
            Op::MutexUnlock { .. } | Op::SpinUnlock { .. } => held = false,
            Op::BarrierWait { .. } => return points,
            _ => {}
        }
    }
    points.push(ops.len());
    points
}

fn vm_op_kind(rng: &mut StdRng) -> VmOp {
    match pick(rng, 5) {
        0 => VmOp::Mprotect,
        1 => VmOp::CowBreak,
        2 => VmOp::T2p,
        3 => VmOp::TwinCommit,
        _ => VmOp::Shootdown,
    }
}

fn gen_action(
    rng: &mut StdRng,
    phase: usize,
    t: usize,
    ctx: &Ctx,
    vm: bool,
    b: OpBuilder,
) -> OpBuilder {
    if vm && pick(rng, 100) < 18 {
        // Transistency mode: interleave a VM operation on one of the
        // armed data pages. gen_action only runs at depth 0 outside
        // critical sections (lock/asm bodies are built by closures), so
        // the op lands at a balanced position by construction.
        let kind = vm_op_kind(rng);
        let page = pick(rng, DATA_PAGE_COUNT);
        return b.vm(kind, VAddr::new(APP_START + page * FRAME_SIZE));
    }
    match pick(rng, 100) {
        0..=24 => {
            let slot = ctx.pick_slot(rng, &ctx.atomic);
            atomic_op(rng, slot, b)
        }
        25..=44 => {
            let g = pick(rng, ctx.guards.len() as u64) as usize;
            let lock = ctx.guards[g].addr;
            let kind = ctx.guards[g].kind;
            let n_inner = 1 + pick(rng, 3);
            let body = |mut bb: OpBuilder| {
                if ctx.by_guard[g].is_empty() {
                    return bb.compute(50);
                }
                for _ in 0..n_inner {
                    let slot = ctx.pick_slot(rng, &ctx.by_guard[g]);
                    bb = plain_op(rng, slot, bb, false);
                }
                bb
            };
            match kind {
                GuardKind::Mutex => b.locked(lock, body),
                GuardKind::Spin => b.spin_locked(lock, body),
            }
        }
        45..=59 => {
            let n_inner = 1 + pick(rng, 2);
            b.asm(|mut bb| {
                for _ in 0..n_inner {
                    let slot = ctx.pick_slot(rng, &ctx.asm);
                    bb = plain_op(rng, slot, bb, true);
                }
                bb
            })
        }
        60..=71 => {
            if ctx.by_owner[t].is_empty() {
                return b.compute(100 + pick(rng, 400));
            }
            let slot = ctx.pick_slot(rng, &ctx.by_owner[t]);
            plain_op(rng, slot, b, false)
        }
        72..=81 => {
            if phase == 0 {
                // Phase-0: only this thread's own phase slots may be
                // (re)written; nobody may read them yet.
                let mine: Vec<usize> = ctx
                    .phase
                    .iter()
                    .copied()
                    .filter(|&i| ctx.slots[i].class == SlotClass::Phase { writer: t })
                    .collect();
                if mine.is_empty() {
                    return b.compute(100 + pick(rng, 400));
                }
                let slot = ctx.pick_slot(rng, &mine);
                let v = rng.next_u64();
                b.store(PC_ST, slot.addr, slot.width, v)
            } else {
                if ctx.phase.is_empty() {
                    return b.compute(100 + pick(rng, 400));
                }
                let slot = ctx.pick_slot(rng, &ctx.phase);
                b.load(PC_LD, slot.addr, slot.width)
            }
        }
        82..=89 => b.fence(ALL_ORDERS[pick(rng, 5) as usize]),
        _ => b.compute(100 + pick(rng, 400)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Litmus::generate(42), Litmus::generate(42));
        assert_ne!(Litmus::generate(42), Litmus::generate(43));
    }

    #[test]
    fn programs_are_structurally_well_formed() {
        for seed in 0..64 {
            for lit in [Litmus::generate(seed), Litmus::generate_vm(seed)] {
                check_structure(&lit, seed);
            }
        }
        for (k, lit) in Litmus::vm_variants(3, 64).iter().enumerate() {
            check_structure(lit, k as u64);
        }
    }

    fn check_structure(lit: &Litmus, seed: u64) {
        {
            assert!((2..=4).contains(&lit.threads.len()), "seed {seed}");
            let data_pages = lit.data_pages();
            for ops in &lit.threads {
                let mut depth = 0i32;
                let mut barriers = 0;
                let mut held: Option<VAddr> = None;
                for op in ops {
                    match *op {
                        Op::AsmEnter => depth += 1,
                        Op::AsmExit => {
                            depth -= 1;
                            assert!(depth >= 0, "seed {seed}: unbalanced asm");
                        }
                        Op::MutexLock { lock } | Op::SpinLock { lock } => {
                            assert_eq!(held, None, "seed {seed}: nested lock");
                            held = Some(lock);
                        }
                        Op::MutexUnlock { lock } | Op::SpinUnlock { lock } => {
                            assert_eq!(held, Some(lock), "seed {seed}: unlock mismatch");
                            held = None;
                        }
                        Op::BarrierWait { barrier } => {
                            barriers += 1;
                            assert_eq!(barrier, barrier_addr());
                            assert_eq!(held, None, "seed {seed}: barrier inside lock");
                        }
                        Op::AtomicLoad { addr, width, .. }
                        | Op::AtomicStore { addr, width, .. }
                        | Op::AtomicRmw { addr, width, .. }
                        | Op::Cas { addr, width, .. } => {
                            assert!(addr.is_aligned(width), "seed {seed}: unaligned atomic");
                            assert!(data_pages.contains(&addr.vpn()));
                        }
                        Op::Load { addr, .. } | Op::Store { addr, .. } => {
                            assert!(data_pages.contains(&addr.vpn()), "seed {seed}");
                        }
                        Op::Vm { addr, .. } => {
                            assert!(data_pages.contains(&addr.vpn()), "seed {seed}");
                            assert_eq!(depth, 0, "seed {seed}: vm op inside asm");
                            assert_eq!(held, None, "seed {seed}: vm op inside lock");
                        }
                        Op::Fence { .. } | Op::Compute { .. } | Op::Exit => {}
                    }
                }
                assert_eq!(depth, 0, "seed {seed}: asm region left open");
                assert_eq!(held, None, "seed {seed}: lock left held");
                assert_eq!(barriers, 1, "seed {seed}: exactly one barrier per thread");
            }
        }
    }

    #[test]
    fn slot_discipline_is_respected() {
        for seed in 0..64 {
            for lit in [Litmus::generate(seed), Litmus::generate_vm(seed)] {
                let slot_of = |addr: VAddr| lit.slots.iter().find(|s| s.addr == addr);
                for (t, ops) in lit.threads.iter().enumerate() {
                    let mut depth = 0u32;
                    let mut held: Option<VAddr> = None;
                    let mut past_barrier = false;
                    for op in ops {
                        match *op {
                            Op::AsmEnter => depth += 1,
                            Op::AsmExit => depth -= 1,
                            Op::MutexLock { lock } | Op::SpinLock { lock } => held = Some(lock),
                            Op::MutexUnlock { .. } | Op::SpinUnlock { .. } => held = None,
                            Op::BarrierWait { .. } => past_barrier = true,
                            Op::Load { addr, .. } | Op::Store { addr, .. } => {
                                let slot = slot_of(addr).expect("plain access to a known slot");
                                match slot.class {
                                    SlotClass::Asm => assert!(depth > 0, "seed {seed}"),
                                    SlotClass::Guarded { guard } => {
                                        assert_eq!(
                                            held,
                                            Some(lit.guards[guard].addr),
                                            "seed {seed}"
                                        );
                                    }
                                    SlotClass::Private { owner } => assert_eq!(owner, t),
                                    SlotClass::Phase { writer } => {
                                        let is_store = matches!(op, Op::Store { .. });
                                        if past_barrier {
                                            assert!(
                                                !is_store,
                                                "seed {seed}: phase store after barrier"
                                            );
                                        } else {
                                            assert!(is_store && writer == t, "seed {seed}");
                                        }
                                    }
                                    SlotClass::Atomic => {
                                        panic!("seed {seed}: plain op on atomic slot")
                                    }
                                }
                            }
                            Op::AtomicLoad { addr, .. }
                            | Op::AtomicStore { addr, .. }
                            | Op::AtomicRmw { addr, .. }
                            | Op::Cas { addr, .. } => {
                                let slot = slot_of(addr).expect("atomic access to a known slot");
                                assert_eq!(slot.class, SlotClass::Atomic, "seed {seed}");
                                assert_eq!(slot.width, atomic_width(op), "seed {seed}");
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    fn atomic_width(op: &Op) -> Width {
        match *op {
            Op::AtomicLoad { width, .. }
            | Op::AtomicStore { width, .. }
            | Op::AtomicRmw { width, .. }
            | Op::Cas { width, .. } => width,
            _ => unreachable!(),
        }
    }

    #[test]
    fn a_few_seeds_cover_every_table2_row() {
        let mut c = Coverage::default();
        for seed in 0..32 {
            c.add(&Litmus::generate(seed).coverage());
        }
        assert!(c.all_table2_rows(), "{c}");
        assert!(c.mutex_ops > 0 && c.barrier_ops > 0 && c.fences > 0, "{c}");
        assert!(c.spin_ops > 0, "{c}");
    }

    #[test]
    fn vm_generation_is_deterministic_and_distinct_from_plain() {
        assert_eq!(Litmus::generate_vm(42), Litmus::generate_vm(42));
        // The plain entry point is a stability contract: adding the VM
        // mode must not have perturbed its draw sequence, so plain
        // programs contain no VM ops and differ from the VM variant.
        let plain = Litmus::generate(42);
        assert!(!plain.has_vm_ops());
        let vm = Litmus::generate_vm(42);
        assert!(vm.has_vm_ops());
        assert_ne!(plain, vm);
    }

    #[test]
    fn every_vm_program_forces_a_pre_barrier_t2p() {
        for seed in 0..64 {
            let lit = Litmus::generate_vm(seed);
            let pre_barrier_t2p = lit.threads[0]
                .iter()
                .take_while(|op| !matches!(op, Op::BarrierWait { .. }))
                .any(|op| matches!(op, Op::Vm { op: VmOp::T2p, .. }));
            assert!(pre_barrier_t2p, "seed {seed}: no guaranteed T2p");
        }
    }

    #[test]
    fn vm_seeds_cover_every_vm_kind() {
        let mut c = Coverage::default();
        for seed in 0..64 {
            c.add(&Litmus::generate_vm(seed).coverage());
        }
        assert!(c.all_vm_kinds(), "{c}");
        assert!(c.all_table2_rows(), "{c}");
        // Plain programs never contain VM ops.
        for seed in 0..64 {
            assert_eq!(Litmus::generate(seed).coverage().vm_ops(), 0);
        }
    }

    #[test]
    fn vm_variants_enumerate_deterministically_and_respect_the_cap() {
        let a = Litmus::vm_variants(9, 32);
        let b = Litmus::vm_variants(9, 32);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.len() <= 32);
        assert_eq!(Litmus::vm_variants(9, 4).len(), 4);
        assert_eq!(Litmus::vm_variants(9, 4), a[..4].to_vec());
        // Every variant is a distinct placement of the same base program.
        for (i, v) in a.iter().enumerate() {
            assert_eq!(v.threads.len(), 2, "variant {i}");
            assert!(v.has_vm_ops(), "variant {i}");
            for w in &a[i + 1..] {
                assert_ne!(v.threads, w.threads, "duplicate placement");
            }
        }
    }

    #[test]
    fn listing_mentions_every_thread() {
        let lit = Litmus::generate(7);
        let text = lit.listing();
        assert!(text.contains("litmus seed 7"));
        for t in 0..lit.threads.len() {
            assert!(text.contains(&format!("thread {t}:")));
        }
    }
}
