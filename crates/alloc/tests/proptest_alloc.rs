//! Property tests for the allocator: live allocations never overlap,
//! alignment promises hold, and the policies place things where their
//! docs say.

use proptest::prelude::*;
use tmi_alloc::{AllocConfig, AllocPolicy, SimAllocator, MIN_ALIGN};
use tmi_machine::{VAddr, LINE_SIZE};

#[derive(Clone, Copy, Debug)]
enum AllocOp {
    Alloc {
        arena: usize,
        size: u64,
        align_pow: u32,
    },
    Padded {
        arena: usize,
        size: u64,
    },
    FreeOldest,
}

fn op_strategy() -> impl Strategy<Value = AllocOp> {
    prop_oneof![
        4 => (0..4usize, 1..3000u64, 4..8u32)
            .prop_map(|(arena, size, align_pow)| AllocOp::Alloc { arena, size, align_pow }),
        2 => (0..4usize, 1..500u64).prop_map(|(arena, size)| AllocOp::Padded { arena, size }),
        1 => Just(AllocOp::FreeOldest),
    ]
}

fn policies() -> impl Strategy<Value = AllocPolicy> {
    prop_oneof![Just(AllocPolicy::Glibc), Just(AllocPolicy::Lockless)]
}

proptest! {
    /// No two live allocations overlap, under any policy, any op sequence.
    #[test]
    fn live_allocations_never_overlap(
        policy in policies(),
        misalign in prop_oneof![Just(0u64), Just(8), Just(24)],
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let mut a = SimAllocator::new(
            VAddr::new(0x100000),
            8 << 20,
            AllocConfig { policy, misalign, chunk: 4096 },
        );
        let mut live: Vec<(u64, u64)> = Vec::new(); // (start, size)
        for op in ops {
            match op {
                AllocOp::Alloc { arena, size, align_pow } => {
                    let align = 1u64 << align_pow;
                    let p = a.alloc_aligned(arena, size, align).raw();
                    prop_assert_eq!(p % align.max(MIN_ALIGN) % 8, 0);
                    for &(s, sz) in &live {
                        prop_assert!(
                            p + size <= s || s + sz <= p,
                            "[{p:#x},+{size}) overlaps [{s:#x},+{sz})"
                        );
                    }
                    live.push((p, size));
                }
                AllocOp::Padded { arena, size } => {
                    let p = a.alloc_line_padded(arena, size).raw();
                    prop_assert_eq!(p % LINE_SIZE, 0, "padded must be line aligned");
                    let padded = size.next_multiple_of(LINE_SIZE);
                    for &(s, sz) in &live {
                        prop_assert!(p + padded <= s || s + sz <= p);
                    }
                    live.push((p, padded));
                }
                AllocOp::FreeOldest => {
                    if !live.is_empty() {
                        let (p, sz) = live.remove(0);
                        a.free(VAddr::new(p), sz);
                    }
                }
            }
        }
    }

    /// Alignment: default allocations are 16-byte aligned plus the
    /// configured misalignment, and explicit alignments are honored when
    /// no misalignment is forced.
    #[test]
    fn alignment_contract(
        policy in policies(),
        sizes in proptest::collection::vec(1..4000u64, 1..40),
    ) {
        let mut a = SimAllocator::new(VAddr::new(0x100000), 4 << 20, AllocConfig {
            policy,
            misalign: 0,
            chunk: 8192,
        });
        for (i, &size) in sizes.iter().enumerate() {
            let p = a.alloc(i % 4, size);
            prop_assert_eq!(p.raw() % MIN_ALIGN, 0);
            let q = a.alloc_aligned(i % 4, size, 64);
            prop_assert_eq!(q.raw() % 64, 0);
        }
    }

    /// Lockless policy: small allocations from different arenas never
    /// share a cache line (the property that auto-repairs lu-ncb, §4.3).
    #[test]
    fn lockless_separates_arenas(
        sizes in proptest::collection::vec(1..512u64, 2..30),
    ) {
        let mut a = SimAllocator::new(
            VAddr::new(0x100000),
            8 << 20,
            AllocConfig { policy: AllocPolicy::Lockless, misalign: 0, chunk: 4096 },
        );
        let mut by_arena: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for (i, &size) in sizes.iter().enumerate() {
            let arena = i % 4;
            let p = a.alloc(arena, size);
            by_arena[arena].push(p.raw() / LINE_SIZE);
        }
        for i in 0..4 {
            for j in i + 1..4 {
                for &la in &by_arena[i] {
                    prop_assert!(
                        !by_arena[j].contains(&la),
                        "arenas {i} and {j} share line {la:#x}"
                    );
                }
            }
        }
    }

    /// Accounting: live bytes equals the sum of live allocation sizes and
    /// peak never decreases.
    #[test]
    fn stats_accounting(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut a = SimAllocator::new(VAddr::new(0x100000), 8 << 20, AllocConfig::default());
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut peak = 0;
        for op in ops {
            match op {
                AllocOp::Alloc { arena, size, .. } => {
                    let p = a.alloc(arena, size);
                    live.push((p.raw(), size));
                }
                AllocOp::Padded { arena, size } => {
                    let p = a.alloc_line_padded(arena, size);
                    live.push((p.raw(), size.next_multiple_of(LINE_SIZE)));
                }
                AllocOp::FreeOldest => {
                    if !live.is_empty() {
                        let (p, sz) = live.remove(0);
                        a.free(VAddr::new(p), sz);
                    }
                }
            }
            let expect: u64 = live.iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(a.stats().live_bytes, expect);
            prop_assert!(a.stats().peak_bytes >= peak);
            peak = a.stats().peak_bytes;
        }
    }
}
