#![warn(missing_docs)]

//! # tmi-alloc — simulated memory allocator
//!
//! The paper's evaluation is allocator-sensitive in three ways:
//!
//! 1. The **baseline** uses the Lockless allocator (16 % faster than glibc
//!    on their suite, §4.1), whose per-thread arenas also change *which*
//!    allocations end up adjacent — `lu-ncb`'s false sharing is repaired by
//!    the allocator switch alone (§4.3).
//! 2. **TMI's allocator** redirects all requests to TMI's process-shared
//!    memory object (`tmi-alloc` bars in Fig. 7) so that pages can later be
//!    remapped per-process.
//! 3. Repair experiments **force misalignment** ("we force the discovered
//!    false sharing behavior by requiring a mis-aligned allocation when
//!    appropriate", §4.3).
//!
//! [`SimAllocator`] models all three: a placement policy (glibc-style
//! shared bump vs Lockless-style per-thread arenas), an optional forced
//! misalignment, and whichever backing VMA the harness mapped the region
//! with (anonymous for plain pthreads, shared-object for TMI). It manages
//! *virtual addresses only*; backing frames materialize through page
//! faults like any other memory.

use tmi_machine::{VAddr, LINE_SIZE};

/// Placement policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AllocPolicy {
    /// One shared bump region for all threads, glibc-style: consecutive
    /// allocations from different threads pack next to each other (the
    /// layout that creates cross-thread false sharing).
    Glibc,
    /// Per-thread arenas carved in chunks, Lockless-style: small
    /// allocations from different threads land in different chunks.
    #[default]
    Lockless,
}

/// Allocator configuration.
#[derive(Clone, Copy, Debug)]
pub struct AllocConfig {
    /// Placement policy.
    pub policy: AllocPolicy,
    /// Byte offset added to every allocation start, to force structures
    /// off cache-line boundaries (must keep 8-byte alignment; the repair
    /// experiments use 8–40). `0` disables.
    pub misalign: u64,
    /// Chunk size handed to each arena under [`AllocPolicy::Lockless`].
    pub chunk: u64,
}

impl Default for AllocConfig {
    fn default() -> Self {
        AllocConfig {
            policy: AllocPolicy::Lockless,
            misalign: 0,
            chunk: 16 * 1024,
        }
    }
}

impl AllocConfig {
    /// Lockless policy with a forced misalignment (repair experiments).
    pub fn misaligned(misalign: u64) -> Self {
        AllocConfig {
            misalign,
            ..Default::default()
        }
    }
}

/// Minimum allocation alignment (both modeled allocators guarantee 16).
pub const MIN_ALIGN: u64 = 16;

#[derive(Debug, Default, Clone, Copy)]
struct Arena {
    cursor: u64,
    end: u64,
}

/// Allocation statistics, for the memory-overhead experiment (Fig. 8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Total allocations performed.
    pub allocations: u64,
    /// Bytes of virtual address space consumed (bump high-water mark).
    pub reserved_bytes: u64,
}

impl tmi_telemetry::MetricSource for AllocStats {
    fn metrics(&self, out: &mut tmi_telemetry::MetricSink) {
        out.u64("live_bytes", self.live_bytes);
        out.u64("peak_bytes", self.peak_bytes);
        out.u64("allocations", self.allocations);
        out.u64("reserved_bytes", self.reserved_bytes);
    }
}

/// A deterministic size-class allocator over a pre-mapped virtual range.
///
/// ```
/// use tmi_alloc::{AllocConfig, AllocPolicy, SimAllocator};
/// use tmi_machine::{VAddr, LINE_SIZE};
///
/// let mut a = SimAllocator::new(VAddr::new(0x10000), 1 << 20, AllocConfig {
///     policy: AllocPolicy::Glibc,
///     misalign: 0,
///     chunk: 4096,
/// });
/// // glibc-style packing: two threads' records land on one line...
/// let x = a.alloc(0, 16);
/// let y = a.alloc(1, 16);
/// assert_eq!(x.raw() / LINE_SIZE, y.raw() / LINE_SIZE);
/// // ...which the manual fix pads apart.
/// let p = a.alloc_line_padded(0, 16);
/// assert_eq!(p.raw() % LINE_SIZE, 0);
/// ```
#[derive(Debug)]
pub struct SimAllocator {
    config: AllocConfig,
    start: VAddr,
    len: u64,
    bump: u64,
    arenas: Vec<Arena>,
    free_lists: Vec<Vec<VAddr>>, // indexed by size class
    /// Provenance of size-class blocks (the "chunk header" of a real
    /// allocator): only these may be recycled through the free lists —
    /// bypass allocations are exactly their requested size and recycling
    /// them as class blocks would hand out overlapping memory.
    class_blocks: std::collections::HashMap<VAddr, usize>,
    stats: AllocStats,
}

/// Size classes in bytes; larger requests are rounded to 64 and bump-fed.
const CLASSES: [u64; 9] = [16, 32, 48, 64, 128, 256, 512, 1024, 2048];

fn class_of(size: u64) -> Option<usize> {
    CLASSES.iter().position(|&c| size <= c)
}

impl SimAllocator {
    /// Creates an allocator over `[start, start+len)`, which the caller
    /// must have mapped (anonymously or object-backed).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not cache-line aligned or the misalignment is
    /// not a multiple of 8 (it would break natural alignment of 8-byte
    /// fields).
    pub fn new(start: VAddr, len: u64, config: AllocConfig) -> Self {
        assert!(
            start.raw().is_multiple_of(LINE_SIZE),
            "region must be line aligned"
        );
        assert!(
            config.misalign.is_multiple_of(8),
            "misalign must preserve 8B alignment"
        );
        SimAllocator {
            config,
            start,
            len,
            bump: 0,
            arenas: Vec::new(),
            free_lists: vec![Vec::new(); CLASSES.len()],
            class_blocks: std::collections::HashMap::new(),
            stats: AllocStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AllocConfig {
        &self.config
    }

    /// Allocation statistics.
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    fn bump_take(&mut self, size: u64, align: u64) -> VAddr {
        let base = self.start.raw() + self.bump;
        let aligned = base.next_multiple_of(align) + self.config.misalign;
        let end = aligned + size;
        assert!(
            end <= self.start.raw() + self.len,
            "simulated heap exhausted ({} of {} bytes)",
            end - self.start.raw(),
            self.len
        );
        self.bump = end - self.start.raw();
        self.stats.reserved_bytes = self.stats.reserved_bytes.max(self.bump);
        VAddr::new(aligned)
    }

    fn arena_take(&mut self, arena: usize, size: u64, align: u64) -> VAddr {
        while self.arenas.len() <= arena {
            self.arenas.push(Arena::default());
        }
        let need_new_chunk = {
            let a = &self.arenas[arena];
            a.cursor.next_multiple_of(align) + self.config.misalign + size > a.end
        };
        if need_new_chunk {
            let chunk = self.config.chunk.max(size + align + self.config.misalign);
            let base = self.bump_take(chunk, LINE_SIZE).raw() - self.config.misalign;
            self.arenas[arena] = Arena {
                cursor: base,
                end: base + chunk,
            };
        }
        let a = &mut self.arenas[arena];
        let aligned = a.cursor.next_multiple_of(align) + self.config.misalign;
        a.cursor = aligned + size;
        VAddr::new(aligned)
    }

    /// Allocates `size` bytes on behalf of thread/arena `arena` with the
    /// allocator's default (16-byte) alignment.
    pub fn alloc(&mut self, arena: usize, size: u64) -> VAddr {
        self.alloc_aligned(arena, size, MIN_ALIGN)
    }

    /// Allocates with an explicit alignment (≥ 16; the manual-fix variants
    /// use 64 to pad data onto private cache lines).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or the heap is exhausted.
    pub fn alloc_aligned(&mut self, arena: usize, size: u64, align: u64) -> VAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align = align.max(MIN_ALIGN);
        let size = size.max(1);
        self.stats.allocations += 1;
        self.stats.live_bytes += size;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);

        // Explicitly aligned or forcibly misaligned requests bypass free
        // lists so placement stays predictable.
        if align > MIN_ALIGN || self.config.misalign != 0 {
            return match self.config.policy {
                AllocPolicy::Glibc => self.bump_take(size, align),
                AllocPolicy::Lockless => self.arena_take(arena, size, align),
            };
        }
        if let Some(class) = class_of(size) {
            if let Some(addr) = self.free_lists[class].pop() {
                return addr;
            }
            let class_size = CLASSES[class];
            let addr = match self.config.policy {
                AllocPolicy::Glibc => self.bump_take(class_size, MIN_ALIGN),
                AllocPolicy::Lockless => self.arena_take(arena, class_size, MIN_ALIGN),
            };
            self.class_blocks.insert(addr, class);
            return addr;
        }
        match self.config.policy {
            AllocPolicy::Glibc => self.bump_take(size, LINE_SIZE),
            AllocPolicy::Lockless => self.arena_take(arena, size, LINE_SIZE),
        }
    }

    /// Allocates `size` bytes padded and aligned to a full cache line — the
    /// manual false-sharing fix (§2: "false sharing can always be resolved
    /// by introducing padding or changing memory alignment").
    pub fn alloc_line_padded(&mut self, arena: usize, size: u64) -> VAddr {
        let padded = size.next_multiple_of(LINE_SIZE);
        let save = self.config.misalign;
        self.config.misalign = 0;
        let addr = self.alloc_aligned(arena, padded, LINE_SIZE);
        self.config.misalign = save;
        addr
    }

    /// Returns `size` bytes at `addr` to the allocator. Only blocks that
    /// came from the size-class path are recycled; bypass allocations
    /// (explicit alignment, large, or misaligned) just drop their live
    /// accounting — their address space is not reused.
    pub fn free(&mut self, addr: VAddr, size: u64) {
        self.stats.live_bytes = self.stats.live_bytes.saturating_sub(size.max(1));
        if let Some(&class) = self.class_blocks.get(&addr) {
            self.free_lists[class].push(addr);
        }
    }

    /// One past the highest address handed out, for mapping validation.
    pub fn high_water(&self) -> VAddr {
        VAddr::new(self.start.raw() + self.bump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(policy: AllocPolicy, misalign: u64) -> SimAllocator {
        SimAllocator::new(
            VAddr::new(0x10000),
            1 << 20,
            AllocConfig {
                policy,
                misalign,
                chunk: 1024,
            },
        )
    }

    #[test]
    fn glibc_packs_cross_thread_allocations_adjacently() {
        let mut a = alloc(AllocPolicy::Glibc, 0);
        let x = a.alloc(0, 16);
        let y = a.alloc(1, 16);
        assert_eq!(y.raw() - x.raw(), 16, "adjacent: same cache line");
        assert_eq!(x.raw() / LINE_SIZE, y.raw() / LINE_SIZE);
    }

    #[test]
    fn lockless_separates_threads_into_chunks() {
        let mut a = alloc(AllocPolicy::Lockless, 0);
        let x = a.alloc(0, 16);
        let y = a.alloc(1, 16);
        assert!(
            y.raw().abs_diff(x.raw()) >= 1024,
            "different arenas: different chunks"
        );
        // Same-thread allocations stay adjacent.
        let x2 = a.alloc(0, 16);
        assert_eq!(x2.raw() - x.raw(), 16);
    }

    #[test]
    fn alignment_guarantees() {
        let mut a = alloc(AllocPolicy::Lockless, 0);
        for size in [1, 7, 16, 100, 5000] {
            let p = a.alloc(0, size);
            assert_eq!(p.raw() % MIN_ALIGN, 0, "size {size}");
        }
        let p = a.alloc_aligned(0, 10, 64);
        assert_eq!(p.raw() % 64, 0);
    }

    #[test]
    fn misalignment_forces_off_line_placement_but_keeps_8b() {
        let mut a = alloc(AllocPolicy::Lockless, 24);
        let p = a.alloc(0, 64);
        assert_eq!(p.raw() % 8, 0);
        assert_ne!(p.raw() % LINE_SIZE, 0, "must not be line aligned");
    }

    #[test]
    fn line_padded_is_line_aligned_even_with_misalign() {
        let mut a = alloc(AllocPolicy::Glibc, 24);
        let p = a.alloc_line_padded(0, 10);
        assert_eq!(p.raw() % LINE_SIZE, 0);
        let q = a.alloc_line_padded(0, 10);
        assert!(q.raw() - p.raw() >= LINE_SIZE, "padded to a full line");
    }

    #[test]
    fn free_list_recycles_size_classes() {
        let mut a = alloc(AllocPolicy::Glibc, 0);
        let p = a.alloc(0, 32);
        a.free(p, 32);
        let q = a.alloc(0, 30); // same class (48? no: 32-class) — reuse
        assert_eq!(p, q);
    }

    #[test]
    fn stats_track_live_and_peak() {
        let mut a = alloc(AllocPolicy::Glibc, 0);
        let p = a.alloc(0, 100);
        assert_eq!(a.stats().live_bytes, 100);
        a.free(p, 100);
        assert_eq!(a.stats().live_bytes, 0);
        assert_eq!(a.stats().peak_bytes, 100);
        assert_eq!(a.stats().allocations, 1);
    }

    #[test]
    #[should_panic(expected = "heap exhausted")]
    fn exhaustion_panics() {
        let mut a = SimAllocator::new(VAddr::new(0x10000), 4096, AllocConfig::default());
        let _ = a.alloc(0, 8192);
    }

    #[test]
    fn two_thread_16b_structs_share_a_line_under_glibc_only() {
        // The lu-ncb scenario: per-thread structs allocated back to back.
        let mut g = alloc(AllocPolicy::Glibc, 0);
        let a0 = g.alloc(0, 24);
        let a1 = g.alloc(1, 24);
        assert_eq!(
            a0.raw() / LINE_SIZE,
            a1.raw() / LINE_SIZE,
            "glibc: same line"
        );

        let mut l = alloc(AllocPolicy::Lockless, 0);
        let b0 = l.alloc(0, 24);
        let b1 = l.alloc(1, 24);
        assert_ne!(
            b0.raw() / LINE_SIZE,
            b1.raw() / LINE_SIZE,
            "lockless: separate"
        );
    }
}
