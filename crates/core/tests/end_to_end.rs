//! End-to-end tests: TMI running inside the full simulation, detecting and
//! repairing false sharing online.

use tmi::{AppLayout, TmiConfig, TmiRuntime};
use tmi_machine::{VAddr, Width, FRAME_SIZE};
use tmi_os::{AsId, MapRequest, ObjId};
use tmi_program::{InstrKind, MemOrder, Op, RmwOp, SequenceProgram};
use tmi_sim::{Engine, EngineConfig, NullRuntime, RuntimeHooks};

const APP_START: u64 = 0x10_0000;
const APP_LEN: u64 = 64 * FRAME_SIZE;
const INTERNAL_START: u64 = 0x200_0000;
const INTERNAL_LEN: u64 = 16 * FRAME_SIZE;

fn build_engine<R: RuntimeHooks>(runtime: R, cores: usize) -> (Engine<R>, AsId, AppLayout) {
    let mut cfg = EngineConfig::with_cores(cores);
    cfg.tick_interval = 200_000; // fast detection for small tests
    let mut e = Engine::new(cfg, runtime);
    let app_obj = e.core_mut().kernel.create_object(APP_LEN);
    let internal_obj = e.core_mut().kernel.create_object(INTERNAL_LEN);
    let aspace = e.core_mut().kernel.create_aspace();
    e.core_mut()
        .kernel
        .map(
            aspace,
            MapRequest::object(VAddr::new(APP_START), APP_LEN, app_obj, 0),
        )
        .unwrap();
    e.core_mut()
        .kernel
        .map(
            aspace,
            MapRequest::object(VAddr::new(INTERNAL_START), INTERNAL_LEN, internal_obj, 0),
        )
        .unwrap();
    e.create_root_process(aspace);
    let layout = AppLayout {
        app_obj,
        app_start: VAddr::new(APP_START),
        app_len: APP_LEN,
        internal_obj,
        internal_start: VAddr::new(INTERNAL_START),
        internal_len: INTERNAL_LEN,
        huge_pages: false,
    };
    (e, aspace, layout)
}

fn layout_only() -> AppLayout {
    AppLayout {
        app_obj: ObjId(0),
        app_start: VAddr::new(APP_START),
        app_len: APP_LEN,
        internal_obj: ObjId(1),
        internal_start: VAddr::new(INTERNAL_START),
        internal_len: INTERNAL_LEN,
        huge_pages: false,
    }
}

/// A counter-increment false-sharing workload: each thread hammers its own
/// 8-byte counter; counters are packed into one line (buggy) or padded
/// (fixed).
fn counter_threads(e: &mut Engine<impl RuntimeHooks>, stride: u64, iters: usize, threads: u64) {
    let ld = e
        .core_mut()
        .code
        .instr("ctr::ld", InstrKind::Load, Width::W8);
    let st = e
        .core_mut()
        .code
        .instr("ctr::st", InstrKind::Store, Width::W8);
    for i in 0..threads {
        let addr = VAddr::new(APP_START + i * stride);
        let mut ops = Vec::with_capacity(iters * 2);
        for n in 0..iters {
            ops.push(Op::Load {
                pc: ld,
                addr,
                width: Width::W8,
            });
            ops.push(Op::Store {
                pc: st,
                addr,
                width: Width::W8,
                value: n as u64,
            });
        }
        e.add_thread(Box::new(SequenceProgram::new(ops)));
    }
}

fn run_counters<R: RuntimeHooks>(runtime: R, stride: u64, iters: usize) -> (u64, Engine<R>) {
    let (mut e, _aspace, _l) = build_engine(runtime, 4);
    counter_threads(&mut e, stride, iters, 4);
    let r = e.run();
    assert!(r.completed(), "halt: {:?}", r.halt);
    (r.cycles, e)
}

#[test]
fn tmi_detects_false_sharing() {
    let runtime = TmiRuntime::new(TmiConfig::detect_only(), layout_only());
    let (_cycles, e) = run_counters(runtime, 8, 20_000);
    let stats = e.runtime().observe().stats();
    assert!(
        !stats.fs_lines.is_empty(),
        "detector must flag the packed counter line"
    );
    assert!(
        !e.runtime().observe().repaired(),
        "detect-only must not repair"
    );
    let hot = APP_START / 64;
    assert!(
        stats.fs_lines.contains(&hot),
        "fs lines: {:?}",
        stats.fs_lines
    );
}

#[test]
fn tmi_does_not_flag_padded_counters() {
    let runtime = TmiRuntime::new(TmiConfig::detect_only(), layout_only());
    let (_cycles, e) = run_counters(runtime, 64, 20_000);
    assert!(e.runtime().observe().stats().fs_lines.is_empty());
    assert!(e.runtime().observe().perf().events_seen() < 100);
}

#[test]
fn tmi_repairs_false_sharing_and_speeds_up() {
    // Long enough that the one-time detection latency and thread-to-process
    // conversion cost (~460k cycles for 4 threads) amortize, as they do over
    // the paper's minute-long workloads.
    let iters = 400_000;
    // Baseline: buggy layout under plain pthreads.
    let (buggy, _) = run_counters(NullRuntime, 8, iters);
    // Manual fix: padded layout under plain pthreads.
    let (manual, _) = run_counters(NullRuntime, 64, iters);
    // TMI: buggy layout, online repair.
    let (repaired, e) = run_counters(
        TmiRuntime::new(TmiConfig::protect(), layout_only()),
        8,
        iters,
    );

    assert!(
        e.runtime().observe().repair().active(),
        "repair must trigger"
    );
    let speedup = buggy as f64 / repaired as f64;
    let manual_speedup = buggy as f64 / manual as f64;
    assert!(
        speedup > 2.0,
        "TMI should speed the buggy run up substantially, got {speedup:.2}x (manual {manual_speedup:.2}x)"
    );
    assert!(
        speedup > 0.7 * manual_speedup,
        "TMI should get most of the manual speedup: {speedup:.2}x vs {manual_speedup:.2}x"
    );
}

#[test]
fn tmi_overhead_without_contention_is_small() {
    // Threads working on disjoint lines: TMI must stay out of the way.
    let iters = 30_000;
    let (base, _) = run_counters(NullRuntime, 256, iters);
    let (tmi, e) = run_counters(
        TmiRuntime::new(TmiConfig::protect(), layout_only()),
        256,
        iters,
    );
    assert!(!e.runtime().observe().repaired());
    let overhead = tmi as f64 / base as f64 - 1.0;
    assert!(
        overhead < 0.05,
        "overhead without contention should be tiny, got {:.1}%",
        overhead * 100.0
    );
}

#[test]
fn repaired_data_is_still_correct() {
    // Each thread increments its packed counter via load+store; after the
    // run the final values must be exactly iters-1 (last stored value),
    // visible in shared memory (commits must have merged everything).
    let iters = 60_000;
    let (mut e, aspace, layout) =
        build_engine(TmiRuntime::new(TmiConfig::protect(), layout_only()), 4);
    let _ = layout;
    counter_threads(&mut e, 8, iters, 4);
    let r = e.run();
    assert!(r.completed());
    assert!(e.runtime().observe().repair().active());
    for i in 0..4u64 {
        let addr = VAddr::new(APP_START + i * 8);
        // Read through the shared object view (what any new thread or the
        // monitoring process would see).
        let pa = e.core_mut().kernel.object_paddr(aspace, addr).unwrap();
        let v = e.core_mut().kernel.physmem().read(pa, Width::W8);
        assert_eq!(v, (iters - 1) as u64, "counter {i}");
    }
}

#[test]
fn atomic_counters_remain_atomic_under_repair() {
    // Threads concurrently RMW one shared atomic on a protected page while
    // also false-sharing plain counters on the same page. Code-centric
    // consistency routes the atomics to shared memory, so no increment is
    // lost.
    let (mut e, aspace, _l) = build_engine(TmiRuntime::new(TmiConfig::protect(), layout_only()), 4);
    let ld = e.core_mut().code.instr("w::ld", InstrKind::Load, Width::W8);
    let st = e
        .core_mut()
        .code
        .instr("w::st", InstrKind::Store, Width::W8);
    let rmw = e
        .core_mut()
        .code
        .atomic_instr("w::rmw", InstrKind::Rmw, Width::W8);
    let shared_ctr = VAddr::new(APP_START + 1024);
    let iters = 20_000usize;
    for i in 0..4u64 {
        let mine = VAddr::new(APP_START + i * 8);
        let mut ops = Vec::new();
        for n in 0..iters {
            ops.push(Op::Load {
                pc: ld,
                addr: mine,
                width: Width::W8,
            });
            ops.push(Op::Store {
                pc: st,
                addr: mine,
                width: Width::W8,
                value: n as u64,
            });
            if n % 20 == 0 {
                ops.push(Op::AtomicRmw {
                    pc: rmw,
                    addr: shared_ctr,
                    width: Width::W8,
                    rmw: RmwOp::Add,
                    operand: 1,
                    order: MemOrder::Relaxed,
                });
            }
        }
        e.add_thread(Box::new(SequenceProgram::new(ops)));
    }
    let r = e.run();
    assert!(r.completed());
    assert!(
        e.runtime().observe().repair().active(),
        "repair must have triggered"
    );
    let pa = e
        .core_mut()
        .kernel
        .object_paddr(aspace, shared_ctr)
        .unwrap();
    let v = e.core_mut().kernel.physmem().read(pa, Width::W8);
    assert_eq!(
        v as usize,
        4 * iters.div_ceil(20),
        "no lost atomic increments"
    );
}

#[test]
fn mutex_workload_commits_at_sync_and_stays_correct() {
    // A lock-protected shared counter plus per-thread false sharing: the
    // PTSB commits at every lock operation, so the critical-section data
    // stays coherent.
    let (mut e, aspace, _l) = build_engine(TmiRuntime::new(TmiConfig::protect(), layout_only()), 4);
    let ld = e.core_mut().code.instr("m::ld", InstrKind::Load, Width::W8);
    let st = e
        .core_mut()
        .code
        .instr("m::st", InstrKind::Store, Width::W8);
    let lock = VAddr::new(APP_START + 2048);
    let shared = VAddr::new(APP_START + 4096);
    let iters = 8_000usize;
    for i in 0..4u64 {
        let mine = VAddr::new(APP_START + i * 8);
        let mut ops = Vec::new();
        for n in 0..iters {
            ops.push(Op::Load {
                pc: ld,
                addr: mine,
                width: Width::W8,
            });
            ops.push(Op::Store {
                pc: st,
                addr: mine,
                width: Width::W8,
                value: n as u64,
            });
            if n % 200 == 0 {
                ops.push(Op::MutexLock { lock });
                ops.push(Op::Load {
                    pc: ld,
                    addr: shared,
                    width: Width::W8,
                });
                ops.push(Op::Store {
                    pc: st,
                    addr: shared,
                    width: Width::W8,
                    value: 0,
                });
                ops.push(Op::MutexUnlock { lock });
            }
        }
        e.add_thread(Box::new(SequenceProgram::new(ops)));
    }
    let r = e.run();
    assert!(r.completed(), "halt: {:?}", r.halt);
    if e.runtime().observe().repair().active() {
        assert!(e.runtime().observe().repair().stats().commits > 0);
    }
    let _ = aspace;
}
