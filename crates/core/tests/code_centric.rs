//! Engine-level litmus tests for the Table 2 code-centric consistency
//! matrix: with repair active, each kind of code region must interact
//! with the PTSB exactly as §3.4 specifies.
//!
//! Setup: thread 0 first hammers a falsely-shared line against thread 1 to
//! trigger repair, then both meet at a barrier and run the litmus phase on
//! the (now protected) page.

use tmi::{AppLayout, TmiConfig, TmiRuntime};
use tmi_machine::{VAddr, Width, FRAME_SIZE};
use tmi_os::MapRequest;
use tmi_program::{InstrKind, MemOrder, Op, Pc, SequenceProgram};
use tmi_sim::{Engine, EngineConfig};

const APP: u64 = 0x10_0000;
const APP_LEN: u64 = 64 * FRAME_SIZE;
const INTERNAL: u64 = 0x100_0000;
const INTERNAL_LEN: u64 = 16 * FRAME_SIZE;

struct Fixture {
    engine: Engine<TmiRuntime>,
    aspace: tmi_os::AsId,
    st: Pc,
    ld: Pc,
    ast: Pc,
    asm_st: Pc,
}

fn fixture(code_centric: bool) -> Fixture {
    let mut cfg = EngineConfig::with_cores(2);
    cfg.tick_interval = 150_000;
    let layout = AppLayout {
        app_obj: tmi_os::ObjId(0),
        app_start: VAddr::new(APP),
        app_len: APP_LEN,
        internal_obj: tmi_os::ObjId(1),
        internal_start: VAddr::new(INTERNAL),
        internal_len: INTERNAL_LEN,
        huge_pages: false,
    };
    let tmi_cfg = TmiConfig {
        code_centric,
        ..TmiConfig::protect()
    };
    let mut engine = Engine::new(cfg, TmiRuntime::new(tmi_cfg, layout));
    let k = &mut engine.core_mut().kernel;
    let app = k.create_object(APP_LEN);
    let internal = k.create_object(INTERNAL_LEN);
    let aspace = k.create_aspace();
    k.map(aspace, MapRequest::object(VAddr::new(APP), APP_LEN, app, 0))
        .unwrap();
    k.map(
        aspace,
        MapRequest::object(VAddr::new(INTERNAL), INTERNAL_LEN, internal, 0),
    )
    .unwrap();
    engine.create_root_process(aspace);
    let st = engine
        .core_mut()
        .code
        .instr("lit::st", InstrKind::Store, Width::W8);
    let ld = engine
        .core_mut()
        .code
        .instr("lit::ld", InstrKind::Load, Width::W8);
    let ast = engine
        .core_mut()
        .code
        .atomic_instr("lit::atomic_st", InstrKind::Store, Width::W8);
    let asm_st = engine
        .core_mut()
        .code
        .asm_instr("lit::asm_st", InstrKind::Store, Width::W8);
    Fixture {
        engine,
        aspace,
        st,
        ld,
        ast,
        asm_st,
    }
}

/// The FS warm-up phase: `iters` load/store pairs on thread-private words
/// packed into one line of the litmus page.
fn warmup_ops(f: &Fixture, thread: u64, iters: usize) -> Vec<Op> {
    let addr = VAddr::new(APP + thread * 8);
    let mut ops = Vec::new();
    for n in 0..iters {
        ops.push(Op::Load {
            pc: f.ld,
            addr,
            width: Width::W8,
        });
        ops.push(Op::Store {
            pc: f.st,
            addr,
            width: Width::W8,
            value: n as u64,
        });
    }
    ops
}

const BARRIER: u64 = APP + 8 * FRAME_SIZE;

fn run_litmus(
    f: &mut Fixture,
    t0_tail: Vec<Op>,
    t1_tail: Vec<Op>,
) -> (tmi_sim::RunReport, Vec<Option<u64>>) {
    let mut ops0 = warmup_ops(f, 0, 120_000);
    ops0.push(Op::BarrierWait {
        barrier: VAddr::new(BARRIER),
    });
    ops0.extend(t0_tail);
    let mut ops1 = warmup_ops(f, 1, 120_000);
    ops1.push(Op::BarrierWait {
        barrier: VAddr::new(BARRIER),
    });
    ops1.extend(t1_tail);
    let p0 = SequenceProgram::new(ops0);
    let p1 = SequenceProgram::new(ops1);
    let log1 = p1.log();
    f.engine.add_thread(Box::new(p0));
    f.engine.add_thread(Box::new(p1));
    let r = f.engine.run();
    let observed = log1.lock().unwrap().clone();
    (r, observed)
}

fn shared_value(f: &mut Fixture, addr: VAddr) -> u64 {
    let aspace = f.aspace;
    let pa = f
        .engine
        .core_mut()
        .kernel
        .object_paddr(aspace, addr)
        .unwrap();
    f.engine.core_mut().kernel.physmem().read(pa, Width::W8)
}

/// Case 2 (atomic × atomic): an ordering atomic store must flush the PTSB
/// and land in shared memory immediately.
#[test]
fn ordering_atomic_store_is_immediately_shared() {
    let mut f = fixture(true);
    let x = VAddr::new(APP + 16); // same protected line as the counters
    let t0 = vec![
        // A plain (bufferable) store, then a SeqCst atomic: the atomic
        // must flush the plain store and itself hit shared memory.
        Op::Store {
            pc: f.st,
            addr: x,
            width: Width::W8,
            value: 41,
        },
        Op::AtomicStore {
            pc: f.ast,
            addr: x.offset(8),
            width: Width::W8,
            value: 42,
            order: MemOrder::SeqCst,
        },
    ];
    let (r, _) = run_litmus(&mut f, t0, vec![Op::Compute { cycles: 1000 }]);
    assert!(r.completed());
    assert!(
        f.engine.runtime().observe().repair().active(),
        "warm-up must trigger repair"
    );
    assert_eq!(shared_value(&mut f, x), 41, "flushed by the atomic");
    assert_eq!(
        shared_value(&mut f, x.offset(8)),
        42,
        "atomic went to shared memory"
    );
}

/// Relaxed refinement: a relaxed atomic bypasses to shared memory but does
/// NOT flush buffered plain stores.
#[test]
fn relaxed_atomic_bypasses_without_flushing() {
    let mut f = fixture(true);
    let x = VAddr::new(APP + 16);
    let t0 = vec![
        Op::Store {
            pc: f.st,
            addr: x,
            width: Width::W8,
            value: 41,
        },
        Op::AtomicStore {
            pc: f.ast,
            addr: x.offset(8),
            width: Width::W8,
            value: 42,
            order: MemOrder::Relaxed,
        },
        // Park so thread 1 can observe before our exit-commit runs.
        Op::Compute { cycles: 500_000 },
    ];
    let t1 = vec![
        Op::Compute { cycles: 100_000 },
        Op::Load {
            pc: f.ld,
            addr: x.offset(8),
            width: Width::W8,
        },
    ];
    let (r, observed) = run_litmus(&mut f, t0, t1);
    assert!(r.completed());
    assert!(f.engine.runtime().observe().repair().active());
    let seen = observed.last().copied().flatten().unwrap();
    assert_eq!(
        seen, 42,
        "relaxed atomic visible to the other process at once"
    );
    // The plain store eventually commits (thread exit), but the relaxed
    // atomic must not have forced an early flush: commits at most at sync
    // points. We can't observe "not flushed" directly here beyond the
    // commit counter staying at the sync-point count.
    assert!(f.engine.runtime().observe().repair().stats().commits <= 4);
}

/// Case 5 (asm × asm): stores inside assembly regions get TSO semantics —
/// they bypass the PTSB and are immediately visible.
#[test]
fn asm_region_stores_are_immediately_shared() {
    let mut f = fixture(true);
    let x = VAddr::new(APP + 24);
    let t0 = vec![
        Op::AsmEnter,
        Op::Store {
            pc: f.asm_st,
            addr: x,
            width: Width::W8,
            value: 7,
        },
        Op::AsmExit,
        Op::Compute { cycles: 500_000 },
    ];
    let t1 = vec![
        Op::Compute { cycles: 100_000 },
        Op::Load {
            pc: f.ld,
            addr: x,
            width: Width::W8,
        },
    ];
    let (r, observed) = run_litmus(&mut f, t0, t1);
    assert!(r.completed());
    assert_eq!(observed.last().copied().flatten(), Some(7));
}

/// Case 1 (regular × regular, racy): plain stores to a protected page ARE
/// buffered — a concurrent reader in another process sees the stale value
/// until a synchronization commits (undefined behaviour territory, where
/// the PTSB is permitted).
#[test]
fn plain_racy_stores_are_buffered_until_sync() {
    let mut f = fixture(true);
    let x = VAddr::new(APP + 32);
    let t0 = vec![
        Op::Store {
            pc: f.st,
            addr: x,
            width: Width::W8,
            value: 9,
        },
        Op::Compute { cycles: 500_000 },
    ];
    let t1 = vec![
        Op::Compute { cycles: 100_000 },
        Op::Load {
            pc: f.ld,
            addr: x,
            width: Width::W8,
        },
    ];
    let (r, observed) = run_litmus(&mut f, t0, t1);
    assert!(r.completed());
    assert!(f.engine.runtime().observe().repair().active());
    assert_eq!(
        observed.last().copied().flatten(),
        Some(0),
        "racy plain store may hide in the PTSB until commit"
    );
    // After thread exit, the commit made it durable.
    assert_eq!(shared_value(&mut f, x), 9);
}

/// The ablation: with code-centric consistency OFF, even a SeqCst atomic
/// store hides in the private page — the Sheriff-style semantic breakage.
#[test]
fn without_code_centric_atomics_lose_their_semantics() {
    let mut f = fixture(false);
    let x = VAddr::new(APP + 40);
    let t0 = vec![
        Op::AtomicStore {
            pc: f.ast,
            addr: x,
            width: Width::W8,
            value: 13,
            order: MemOrder::SeqCst,
        },
        Op::Compute { cycles: 500_000 },
    ];
    let t1 = vec![
        Op::Compute { cycles: 100_000 },
        Op::Load {
            pc: f.ld,
            addr: x,
            width: Width::W8,
        },
    ];
    let (r, observed) = run_litmus(&mut f, t0, t1);
    assert!(r.completed());
    assert!(f.engine.runtime().observe().repair().active());
    assert_eq!(
        observed.last().copied().flatten(),
        Some(0),
        "the guard-less PTSB buffers even SeqCst atomics (the Sheriff flaw)"
    );
}
