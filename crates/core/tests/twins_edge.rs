//! Edge cases of the PTSB diff-and-merge commit ([`TwinStore::commit_page`])
//! that the inline unit tests don't reach: two processes committing
//! *overlapping* dirty words, committing again after a re-snapshot of the
//! same page, and the twin-memory accounting (`current_bytes` /
//! `peak_bytes`) across those sequences.

use tmi::{CommitCostModel, TwinStore};
use tmi_machine::{VAddr, Width, FRAME_SIZE};
use tmi_os::{AsId, Kernel, MapRequest};

const BASE: u64 = 0x40000;

fn setup(spaces: usize) -> (Kernel, Vec<AsId>) {
    let mut k = Kernel::new();
    let obj = k.create_object(4 * FRAME_SIZE);
    let ids = (0..spaces)
        .map(|_| {
            let a = k.create_aspace();
            k.map(
                a,
                MapRequest::object(VAddr::new(BASE), 4 * FRAME_SIZE, obj, 0),
            )
            .unwrap();
            a
        })
        .collect();
    (k, ids)
}

/// Arms `addr`'s page for `aspace`, breaks the COW, snapshots the twin
/// into `tw`, then writes `value` privately — the engine's exact sequence.
fn dirty(k: &mut Kernel, tw: &mut TwinStore, aspace: AsId, addr: VAddr, value: u64) {
    k.protect_page_cow(aspace, addr.vpn()).unwrap();
    k.handle_fault(aspace, addr, true).unwrap();
    tw.snapshot(k, aspace, addr.vpn());
    k.force_write(aspace, addr, Width::W8, value).unwrap();
}

fn shared_read(k: &mut Kernel, aspace: AsId, addr: VAddr, width: Width) -> u64 {
    let pa = k.object_paddr(aspace, addr).unwrap();
    k.physmem().read(pa, width)
}

#[test]
fn overlapping_words_resolve_per_byte_to_the_last_committer() {
    let (mut k, ids) = setup(2);
    let (a, b) = (ids[0], ids[1]);
    let addr = VAddr::new(BASE);
    let cost = CommitCostModel::standard();

    // Both processes dirty the SAME aligned word — a racy overlap the
    // PTSB resolves byte-wise. A changes the low half, B the high half.
    let mut tw_a = TwinStore::new();
    let mut tw_b = TwinStore::new();
    dirty(&mut k, &mut tw_a, a, addr, 0x0000_0000_1111_2222);
    dirty(&mut k, &mut tw_b, b, addr, 0x3333_4444_0000_0000);

    let pa = tw_a
        .commit_page(&mut k, a, addr.vpn(), &cost, false)
        .unwrap();
    let pb = tw_b
        .commit_page(&mut k, b, addr.vpn(), &cost, false)
        .unwrap();
    // Each writer changed 4 of the 8 bytes relative to its twin (both
    // twins saw the word as 0).
    assert_eq!(pa.bytes_merged, 4);
    assert_eq!(pb.bytes_merged, 4);
    // Disjoint byte ranges merge losslessly even though the *words*
    // overlapped completely.
    assert_eq!(
        shared_read(&mut k, a, addr, Width::W8),
        0x3333_4444_1111_2222
    );

    // Now a genuine byte-level conflict: both rewrite the same low byte.
    let mut tw_a = TwinStore::new();
    let mut tw_b = TwinStore::new();
    dirty(&mut k, &mut tw_a, a, addr, 0x3333_4444_1111_22AA);
    dirty(&mut k, &mut tw_b, b, addr, 0x3333_4444_1111_22BB);
    tw_a.commit_page(&mut k, a, addr.vpn(), &cost, false)
        .unwrap();
    tw_b.commit_page(&mut k, b, addr.vpn(), &cost, false)
        .unwrap();
    // Last committer wins on the conflicting byte — the racy-write
    // semantics of case 1 in Table 2 (undefined, but never fabricated:
    // the byte is one of the two written values).
    assert_eq!(
        shared_read(&mut k, a, addr, Width::W8),
        0x3333_4444_1111_22BB
    );
}

#[test]
fn commit_after_resnapshot_diffs_against_the_new_twin() {
    let (mut k, ids) = setup(1);
    let a = ids[0];
    let addr = VAddr::new(BASE);
    let cost = CommitCostModel::standard();

    let mut tw = TwinStore::new();
    dirty(&mut k, &mut tw, a, addr, 0xAB);
    let p1 = tw.commit_page(&mut k, a, addr.vpn(), &cost, false).unwrap();
    assert_eq!(p1.bytes_merged, 1);
    assert_eq!(shared_read(&mut k, a, addr, Width::W8), 0xAB);
    // commit_page re-armed the page: the next write faults again.
    assert!(k.translate(a, addr, true).is_err());
    assert!(!tw.has_dirty(a));

    // Second round on the same page: the twin must be the *current*
    // shared contents (0xAB), not the original zeros — so an identical
    // rewrite merges nothing and a one-byte change merges one byte.
    k.handle_fault(a, addr, true).unwrap();
    tw.snapshot(&k, a, addr.vpn());
    k.force_write(a, addr, Width::W8, 0xAB).unwrap();
    let p2 = tw.commit_page(&mut k, a, addr.vpn(), &cost, false).unwrap();
    assert_eq!(p2.bytes_merged, 0, "identical rewrite diffs clean");

    k.handle_fault(a, addr, true).unwrap();
    tw.snapshot(&k, a, addr.vpn());
    k.force_write(a, addr, Width::W8, 0xCD).unwrap();
    let p3 = tw.commit_page(&mut k, a, addr.vpn(), &cost, false).unwrap();
    assert_eq!(p3.bytes_merged, 1, "only the changed byte re-merges");
    assert_eq!(shared_read(&mut k, a, addr, Width::W8), 0xCD);
}

#[test]
fn twin_memory_accounting_tracks_concurrent_peak() {
    let (mut k, ids) = setup(2);
    let (a, b) = (ids[0], ids[1]);
    let cost = CommitCostModel::standard();
    let p0 = VAddr::new(BASE);
    let p1 = VAddr::new(BASE + FRAME_SIZE);

    // One TwinStore serves all processes (as RepairManager uses it); its
    // accounting must reflect twins from *both* address spaces at once.
    let mut tw = TwinStore::new();
    assert_eq!(tw.current_bytes(), 0);
    assert_eq!(tw.peak_bytes(), 0);

    dirty(&mut k, &mut tw, a, p0, 1);
    dirty(&mut k, &mut tw, a, p1, 2);
    dirty(&mut k, &mut tw, b, p0, 3);
    assert_eq!(tw.current_bytes(), 3 * FRAME_SIZE);
    assert_eq!(tw.peak_bytes(), 3 * FRAME_SIZE);
    assert_eq!(tw.dirty_pages(a).len(), 2);
    assert_eq!(tw.dirty_pages(b).len(), 1);

    // Committing releases twins one page at a time; the peak stays.
    tw.commit_page(&mut k, a, p0.vpn(), &cost, false).unwrap();
    assert_eq!(tw.current_bytes(), 2 * FRAME_SIZE);
    tw.commit_page(&mut k, a, p1.vpn(), &cost, false).unwrap();
    tw.commit_page(&mut k, b, p0.vpn(), &cost, false).unwrap();
    assert_eq!(tw.current_bytes(), 0);
    assert_eq!(tw.peak_bytes(), 3 * FRAME_SIZE);
    assert!(!tw.has_dirty(a) && !tw.has_dirty(b));

    // A later smaller round never lowers the recorded peak.
    dirty(&mut k, &mut tw, b, p1, 4);
    assert_eq!(tw.current_bytes(), FRAME_SIZE);
    assert_eq!(tw.peak_bytes(), 3 * FRAME_SIZE);
    tw.commit_page(&mut k, b, p1.vpn(), &cost, false).unwrap();
    assert_eq!(tw.current_bytes(), 0);
}
