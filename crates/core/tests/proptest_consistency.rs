//! Property tests for code-centric consistency (§3.4): for *any* access —
//! every combination of code kind (regular / atomic / inline asm), memory
//! order, access kind and width — [`tmi::access_decision`] must implement
//! exactly the Table 2 matrix, its relaxed-atomic refinement, and the
//! `code_centric = false` ablation (everything through the PTSB, the
//! Sheriff behaviour that Figs. 11–12 show corrupting canneal/cholesky).

use proptest::prelude::*;
use tmi::consistency::{access_decision, region_flush, route_of, Decision};
use tmi_machine::{AccessKind, VAddr, Width};
use tmi_program::MemOrder;
use tmi_program::Pc;
use tmi_sim::{AccessInfo, RegionEvent, Route};

fn order_strategy() -> impl Strategy<Value = Option<MemOrder>> {
    (0..6u64).prop_map(|i| match i {
        0 => None,
        1 => Some(MemOrder::Relaxed),
        2 => Some(MemOrder::Acquire),
        3 => Some(MemOrder::Release),
        4 => Some(MemOrder::AcqRel),
        _ => Some(MemOrder::SeqCst),
    })
}

fn access_strategy() -> impl Strategy<Value = AccessInfo> {
    (
        any::<bool>(),
        order_strategy(),
        any::<bool>(),
        (0..3u64, 0..4u64, any::<u64>()),
    )
        .prop_map(|(atomic, order, in_asm, (kind, width, addr))| AccessInfo {
            pc: Pc(0x40_0000 + (addr & 0xfff0)),
            vaddr: VAddr::new(addr & 0xffff_fff8),
            width: match width {
                0 => Width::W1,
                1 => Width::W2,
                2 => Width::W4,
                _ => Width::W8,
            },
            kind: match kind {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                _ => AccessKind::Rmw,
            },
            atomic,
            order,
            in_asm,
        })
}

proptest! {
    /// Table 2, row by row, for every generated access. The decision
    /// depends only on the code kind and memory order — never on the
    /// address, width or load/store direction.
    #[test]
    fn decision_matches_table2(acc in access_strategy()) {
        let d = access_decision(true, &acc);
        if acc.atomic {
            // Cases 2 & 4: atomics always bypass the PTSB (AMBSA).
            prop_assert!(d.shared, "atomics must route shared: {acc:?}");
            // Refinement: relaxed requires atomicity only — no flush;
            // ordering orders (and order-less sync RMWs) flush.
            let expect_flush = acc.order.map(MemOrder::is_ordering).unwrap_or(true);
            prop_assert_eq!(d.flush, expect_flush, "{:?}", acc);
        } else if acc.in_asm {
            // Cases 3 & 5: asm runs on shared memory (TSO); the flush
            // already happened at AsmEnter, not per access.
            prop_assert_eq!(d, Decision { flush: false, shared: true }, "{:?}", acc);
        } else {
            // Case 1 / Lemma 3.1: regular code may use the PTSB freely.
            prop_assert_eq!(d, Decision::default(), "{:?}", acc);
        }
    }

    /// The decision is a pure function of (atomic, order, in_asm): two
    /// accesses agreeing on those three always decide identically.
    #[test]
    fn decision_ignores_address_kind_and_width(
        a in access_strategy(),
        b in access_strategy(),
        code_centric in any::<bool>(),
    ) {
        if a.atomic == b.atomic && a.order == b.order && a.in_asm == b.in_asm {
            prop_assert_eq!(
                access_decision(code_centric, &a),
                access_decision(code_centric, &b)
            );
        }
    }

    /// The ablation: with code-centric consistency off, *every* access —
    /// atomic, asm, anything — gets the default PTSB route with no flush.
    /// This is precisely why the differential fuzzer must find torn and
    /// stale values in that mode.
    #[test]
    fn ablation_sends_everything_through_the_ptsb(acc in access_strategy()) {
        prop_assert_eq!(access_decision(false, &acc), Decision::default());
    }

    /// A flush is only ever demanded together with a shared-route: the
    /// runtime never commits the PTSB just to keep using it.
    #[test]
    fn flush_implies_shared(acc in access_strategy(), code_centric in any::<bool>()) {
        let d = access_decision(code_centric, &acc);
        prop_assert!(!d.flush || d.shared, "{:?} -> {:?}", acc, d);
    }

    /// Route conversion is exactly the `shared` bit.
    #[test]
    fn route_is_the_shared_bit(acc in access_strategy(), code_centric in any::<bool>()) {
        let d = access_decision(code_centric, &acc);
        let expected = if d.shared { Route::SharedObject } else { Route::Normal };
        prop_assert_eq!(route_of(d), expected);
    }

    /// Region events: asm entry always flushes (case 3/5 boundary), asm
    /// exit never does, fences flush iff they order — and the ablation
    /// disables all of it.
    #[test]
    fn region_events_flush_per_table2(order in order_strategy()) {
        prop_assert!(region_flush(true, RegionEvent::AsmEnter));
        prop_assert!(!region_flush(true, RegionEvent::AsmExit));
        prop_assert!(!region_flush(false, RegionEvent::AsmEnter));
        prop_assert!(!region_flush(false, RegionEvent::AsmExit));
        if let Some(o) = order {
            prop_assert_eq!(region_flush(true, RegionEvent::Fence(o)), o.is_ordering());
            prop_assert!(!region_flush(false, RegionEvent::Fence(o)));
        }
    }
}
