//! A bounded model check of §3.4's Lemma 3.1: "For an assembly-free
//! program, if AMBSA for a location x is broken there is a data race on x."
//!
//! We enumerate **every** legal interleaving of two threads' operation
//! sequences and replay each one through the real kernel + twin-store
//! machinery:
//!
//! * the *race-free* program (each thread takes a lock, stores a 2-byte
//!   value to `x`, commits at unlock as TMI does) must end with `x`
//!   holding exactly the value of the serialization-order-last writer —
//!   in no interleaving is the PTSB observable;
//! * the *racy* program (no locks; commits only at thread exit) must
//!   exhibit at least one interleaving where `x = 0xABCD` — the Fig. 3
//!   word tearing — while every interleaving still only produces bytes
//!   some thread wrote (the merge never fabricates data).

use tmi::{CommitCostModel, TwinStore};
use tmi_machine::{VAddr, Vpn, Width, FRAME_SIZE};
use tmi_os::{AsId, Kernel, MapRequest};

const BASE: u64 = 0x40000;
const X: VAddr = VAddr::new(BASE + 0x100); // 2-byte aligned

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Step {
    Lock,
    /// 2-byte store through the PTSB (fault → twin snapshot → write).
    Store(u64),
    /// Commit own dirty pages then release the lock.
    Unlock,
    /// Commit at thread exit (the racy program's only sync point).
    ExitCommit,
}

struct World {
    kernel: Kernel,
    spaces: [AsId; 2],
    twins: TwinStore,
    lock_owner: Option<usize>,
    /// Serialization order of lock-protected writers.
    unlock_order: Vec<usize>,
}

fn vpn() -> Vpn {
    Vpn(BASE / FRAME_SIZE + (0x100 / FRAME_SIZE))
}

impl World {
    fn new() -> Self {
        let mut kernel = Kernel::new();
        let obj = kernel.create_object(4 * FRAME_SIZE);
        let a = kernel.create_aspace();
        let b = kernel.create_aspace();
        for s in [a, b] {
            kernel
                .map(
                    s,
                    MapRequest::object(VAddr::new(BASE), 4 * FRAME_SIZE, obj, 0),
                )
                .unwrap();
        }
        // Arm the PTSB on x's page in both processes (repair is active).
        let mut w = World {
            kernel,
            spaces: [a, b],
            twins: TwinStore::new(),
            lock_owner: None,
            unlock_order: Vec::new(),
        };
        for s in [a, b] {
            w.kernel.protect_page_cow(s, vpn()).unwrap();
        }
        w
    }

    /// Whether `thread` may execute `step` right now (lock semantics).
    fn enabled(&self, thread: usize, step: Step) -> bool {
        match step {
            Step::Lock => self.lock_owner.is_none(),
            Step::Store(_) | Step::ExitCommit => true,
            Step::Unlock => self.lock_owner == Some(thread),
        }
    }

    fn commit_thread(&mut self, thread: usize) {
        let s = self.spaces[thread];
        for page in self.twins.dirty_pages(s) {
            self.twins
                .commit_page(
                    &mut self.kernel,
                    s,
                    page,
                    &CommitCostModel::standard(),
                    false,
                )
                .unwrap();
        }
    }

    fn exec(&mut self, thread: usize, step: Step) {
        let s = self.spaces[thread];
        match step {
            Step::Lock => {
                self.lock_owner = Some(thread);
                // Acquire empties the PTSB so the thread sees fresh shared
                // state (Lemma 3.1's proof relies on this).
                self.commit_thread(thread);
            }
            Step::Store(v) => {
                if self.kernel.translate(s, X, true).is_err() {
                    self.kernel.handle_fault(s, X, true).unwrap();
                    self.twins.snapshot(&self.kernel, s, vpn());
                }
                self.kernel.force_write(s, X, Width::W2, v).unwrap();
            }
            Step::Unlock => {
                self.commit_thread(thread);
                self.lock_owner = None;
                self.unlock_order.push(thread);
            }
            Step::ExitCommit => {
                self.commit_thread(thread);
            }
        }
    }

    fn shared_x(&mut self) -> u64 {
        let pa = self.kernel.object_paddr(self.spaces[0], X).unwrap();
        self.kernel.physmem().read(pa, Width::W2)
    }
}

/// Replays one interleaving (a sequence of thread ids) of the two step
/// lists; returns the final shared value of `x` and the unlock order.
fn replay(programs: &[Vec<Step>; 2], schedule: &[usize]) -> (u64, Vec<usize>) {
    let mut w = World::new();
    let mut pcs = [0usize; 2];
    for &t in schedule {
        let step = programs[t][pcs[t]];
        assert!(w.enabled(t, step), "schedule must be legal");
        w.exec(t, step);
        pcs[t] += 1;
    }
    (w.shared_x(), w.unlock_order)
}

/// Enumerates every legal interleaving, calling `visit` with each schedule.
fn enumerate(programs: &[Vec<Step>; 2], visit: &mut impl FnMut(&[usize])) {
    fn go(
        programs: &[Vec<Step>; 2],
        w: &mut World,
        pcs: &mut [usize; 2],
        schedule: &mut Vec<usize>,
        visit: &mut impl FnMut(&[usize]),
    ) {
        let mut progressed = false;
        for t in 0..2 {
            if pcs[t] < programs[t].len() && w.enabled(t, programs[t][pcs[t]]) {
                progressed = true;
                // Branch: snapshotting World is awkward, so re-derive it by
                // replaying the extended schedule from scratch (the state
                // space here is tiny).
                schedule.push(t);
                let mut w2 = World::new();
                let mut pcs2 = [0usize; 2];
                for &tt in schedule.iter() {
                    w2.exec(tt, programs[tt][pcs2[tt]]);
                    pcs2[tt] += 1;
                }
                go(programs, &mut w2, &mut pcs2, schedule, visit);
                schedule.pop();
            }
        }
        if !progressed {
            assert!(
                pcs.iter().zip(programs).all(|(&pc, p)| pc == p.len()),
                "no legal step but programs unfinished: deadlock in model"
            );
            visit(schedule);
        }
    }
    let mut w = World::new();
    let mut pcs = [0usize; 2];
    let mut schedule = Vec::new();
    go(programs, &mut w, &mut pcs, &mut schedule, visit);
}

#[test]
fn race_free_program_never_observes_the_ptsb() {
    // Both threads: lock; store; unlock — with 2-byte stores of values
    // that would tear if AMBSA broke.
    let programs = [
        vec![Step::Lock, Step::Store(0xAB00), Step::Unlock],
        vec![Step::Lock, Step::Store(0x00CD), Step::Unlock],
    ];
    let mut count = 0usize;
    enumerate(&programs, &mut |schedule| {
        count += 1;
        let (x, order) = replay(&programs, schedule);
        let last = *order.last().expect("both unlocked");
        let expect = if last == 0 { 0xAB00 } else { 0x00CD };
        assert_eq!(
            x, expect,
            "schedule {schedule:?}: PTSB visible! x={x:#06x}, last writer {last}"
        );
    });
    // Lock exclusion leaves exactly two serializations (whole critical
    // sections are atomic blocks).
    assert_eq!(count, 2, "expected the two serialized interleavings");
}

#[test]
fn racy_program_exhibits_word_tearing_somewhere() {
    // No locks: store then exit-commit only.
    let programs = [
        vec![Step::Store(0xAB00), Step::ExitCommit],
        vec![Step::Store(0x00CD), Step::ExitCommit],
    ];
    let mut outcomes = std::collections::BTreeSet::new();
    enumerate(&programs, &mut |schedule| {
        let (x, _) = replay(&programs, schedule);
        outcomes.insert(x);
        // The merge never invents bytes: each byte of x comes from one of
        // the two stores (or the initial zero).
        let [lo, hi] = (x as u16).to_le_bytes();
        assert!([0x00, 0xCD].contains(&lo), "fabricated low byte {lo:#x}");
        assert!([0x00, 0xAB].contains(&hi), "fabricated high byte {hi:#x}");
    });
    assert!(
        outcomes.contains(&0xABCD),
        "Fig. 3's torn value must be reachable; saw {outcomes:?}"
    );
    // All six interleavings of 2+2 steps exist.
    assert!(
        outcomes.len() >= 2,
        "races produce multiple outcomes: {outcomes:?}"
    );
}

#[test]
fn single_writer_is_always_exact() {
    // Lemma 3.1's "with no or just one thread writing, diffing and merging
    // preserve written values exactly" — thread 1 only reads (no steps).
    let programs = [
        vec![Step::Store(0x1234), Step::ExitCommit],
        vec![Step::ExitCommit],
    ];
    enumerate(&programs, &mut |schedule| {
        let (x, _) = replay(&programs, schedule);
        assert_eq!(x, 0x1234, "schedule {schedule:?}");
    });
}
