//! Property tests for the page-twinning store buffer: for any interleaving
//! of writes by two "threads" (address spaces) to disjoint byte ranges of
//! a page, diff-and-merge commits reconstruct exactly the union of their
//! writes — the §3.4 Lemma 3.1 guarantee that race-free programs cannot
//! observe the PTSB. With *overlapping* racy writes, the committed bytes
//! still always come from one of the writers (no fabricated bytes beyond
//! the racy locations themselves).

use proptest::prelude::*;
use tmi::{CommitCostModel, TwinStore};
use tmi_machine::{VAddr, Width, FRAME_SIZE};
use tmi_os::{AsId, Kernel, MapRequest};

const BASE: u64 = 0x20000;

fn setup() -> (Kernel, AsId, AsId) {
    let mut k = Kernel::new();
    let obj = k.create_object(FRAME_SIZE);
    let a = k.create_aspace();
    let b = k.create_aspace();
    for s in [a, b] {
        k.map(s, MapRequest::object(VAddr::new(BASE), FRAME_SIZE, obj, 0))
            .unwrap();
    }
    (k, a, b)
}

fn arm(k: &mut Kernel, s: AsId) {
    k.protect_page_cow(s, VAddr::new(BASE).vpn()).unwrap();
}

proptest! {
    /// Disjoint writers: thread A writes even words, thread B odd words.
    /// After both commit (in either order), shared memory holds exactly
    /// what each wrote.
    #[test]
    fn disjoint_writes_merge_losslessly(
        writes_a in proptest::collection::vec((0..256u64, any::<u64>()), 1..60),
        writes_b in proptest::collection::vec((0..256u64, any::<u64>()), 1..60),
        b_commits_first in any::<bool>(),
    ) {
        let (mut k, a, b) = setup();
        arm(&mut k, a);
        arm(&mut k, b);
        let mut tw2 = TwinStore::new();
        let vpn = VAddr::new(BASE).vpn();
        let mut expect = std::collections::HashMap::new();

        let write = |k: &mut Kernel, tw: &mut TwinStore, s: AsId, word: u64, v: u64| {
            let addr = VAddr::new(BASE + word * 8);
            // Emulate the engine: fault first, notify the runtime (twin
            // snapshot), then store.
            if k.translate(s, addr, true).is_err() {
                k.handle_fault(s, addr, true).unwrap();
                tw.snapshot(k, s, vpn);
            }
            k.force_write(s, addr, Width::W8, v).unwrap();
        };

        for &(w, v) in &writes_a {
            let word = w * 2;
            write(&mut k, &mut tw2, a, word, v);
            expect.insert(word, v);
        }
        for &(w, v) in &writes_b {
            let word = w * 2 + 1;
            write(&mut k, &mut tw2, b, word, v);
            expect.insert(word, v);
        }
        let order = if b_commits_first { [b, a] } else { [a, b] };
        for s in order {
            if tw2.has_dirty(s) {
                tw2.commit_page(&mut k, s, vpn, &CommitCostModel::standard(), false).unwrap();
            }
        }
        for (&word, &v) in &expect {
            let pa = k.object_paddr(a, VAddr::new(BASE + word * 8)).unwrap();
            prop_assert_eq!(k.physmem().read(pa, Width::W8), v, "word {}", word);
        }
    }

    /// Racy overlapping writes: after both commits, every byte of the
    /// final value comes from one of the two written values (byte-level
    /// mixing is permitted — that's the AMBSA story — but bytes from
    /// nowhere are not).
    #[test]
    fn racy_writes_never_fabricate_bytes(
        word in 0..512u64,
        va in any::<u64>(),
        vb in any::<u64>(),
    ) {
        let (mut k, a, b) = setup();
        arm(&mut k, a);
        arm(&mut k, b);
        let mut tw = TwinStore::new();
        let vpn = VAddr::new(BASE).vpn();
        let addr = VAddr::new(BASE + word * 8);

        for (s, v) in [(a, va), (b, vb)] {
            k.handle_fault(s, addr, true).unwrap();
            tw.snapshot(&k, s, vpn);
            k.force_write(s, addr, Width::W8, v).unwrap();
        }
        tw.commit_page(&mut k, a, vpn, &CommitCostModel::standard(), false).unwrap();
        tw.commit_page(&mut k, b, vpn, &CommitCostModel::standard(), false).unwrap();

        let pa = k.object_paddr(a, addr).unwrap();
        let got = k.physmem().read(pa, Width::W8).to_le_bytes();
        let ba = va.to_le_bytes();
        let bb = vb.to_le_bytes();
        for i in 0..8 {
            prop_assert!(
                got[i] == ba[i] || got[i] == bb[i] || got[i] == 0,
                "byte {i}: {:#x} from neither {:#x} nor {:#x}",
                got[i], ba[i], bb[i]
            );
        }
    }

    /// Commit-then-rewrite cycles: the page stays armed after each commit,
    /// and repeated rounds keep merging correctly.
    #[test]
    fn repeated_commit_rounds_stay_consistent(
        rounds in proptest::collection::vec((0..512u64, any::<u64>()), 1..20)
    ) {
        let (mut k, a, _b) = setup();
        arm(&mut k, a);
        let mut tw = TwinStore::new();
        let vpn = VAddr::new(BASE).vpn();
        for &(word, v) in &rounds {
            let addr = VAddr::new(BASE + word * 8);
            prop_assert!(k.translate(a, addr, true).is_err(), "page must be re-armed");
            k.handle_fault(a, addr, true).unwrap();
            tw.snapshot(&k, a, vpn);
            k.force_write(a, addr, Width::W8, v).unwrap();
            tw.commit_page(&mut k, a, vpn, &CommitCostModel::standard(), false).unwrap();
            let pa = k.object_paddr(a, addr).unwrap();
            prop_assert_eq!(k.physmem().read(pa, Width::W8), v);
        }
        prop_assert_eq!(tw.current_bytes(), 0);
    }
}
