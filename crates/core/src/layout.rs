//! The TMI process memory layout (Fig. 6).
//!
//! At program start TMI's allocator backs the application's heap, globals
//! and stacks with one shared-memory object so threads-turned-processes
//! can keep sharing it; a second, separate shared object holds TMI's own
//! state — most importantly the process-shared synchronization objects
//! that interposed `pthread_mutex_t`s point at (§3.2).

use tmi_machine::{VAddr, Vpn, FRAME_SIZE, LINE_SIZE};
use tmi_os::ObjId;

/// Where everything lives in the application's virtual address space.
#[derive(Clone, Copy, Debug)]
pub struct AppLayout {
    /// The application shared-memory object ("Shared Memory File").
    pub app_obj: ObjId,
    /// Start of the primary (remappable) mapping of the app object.
    pub app_start: VAddr,
    /// Length of the app mapping in bytes.
    pub app_len: u64,
    /// TMI's internal shared-memory object ("Internal Memory File").
    pub internal_obj: ObjId,
    /// Start of the internal mapping (pshared mutexes, TMI state).
    pub internal_start: VAddr,
    /// Length of the internal mapping.
    pub internal_len: u64,
    /// Whether the app mapping uses 2 MiB huge pages (§4.4).
    pub huge_pages: bool,
}

impl AppLayout {
    /// True if `addr` lies in the application range.
    pub fn in_app(&self, addr: VAddr) -> bool {
        addr >= self.app_start && addr.raw() < self.app_start.raw() + self.app_len
    }

    /// True if `addr` lies in TMI's internal range.
    pub fn in_internal(&self, addr: VAddr) -> bool {
        addr >= self.internal_start && addr.raw() < self.internal_start.raw() + self.internal_len
    }

    /// True if the given virtual cache line lies in the internal range.
    pub fn internal_line(&self, vline: u64) -> bool {
        self.in_internal(VAddr::new(vline * LINE_SIZE))
    }

    /// True if the given virtual cache line lies in the app range.
    pub fn app_line(&self, vline: u64) -> bool {
        self.in_app(VAddr::new(vline * LINE_SIZE))
    }

    /// The 4 KiB page(s) covering one virtual cache line, as protection
    /// targets. A line never spans pages (64 | 4096).
    pub fn line_page(&self, vline: u64) -> Vpn {
        VAddr::new(vline * LINE_SIZE).vpn()
    }

    /// All 4 KiB pages of the application mapping (the PTSB-everywhere
    /// ablation protects all of these).
    pub fn all_app_pages(&self) -> impl Iterator<Item = Vpn> + '_ {
        let first = self.app_start.vpn().0;
        let n = self.app_len / FRAME_SIZE;
        (first..first + n).map(Vpn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> AppLayout {
        AppLayout {
            app_obj: ObjId(0),
            app_start: VAddr::new(0x10000),
            app_len: 8 * FRAME_SIZE,
            internal_obj: ObjId(1),
            internal_start: VAddr::new(0x80_0000),
            internal_len: 4 * FRAME_SIZE,
            huge_pages: false,
        }
    }

    #[test]
    fn range_membership() {
        let l = layout();
        assert!(l.in_app(VAddr::new(0x10000)));
        assert!(l.in_app(VAddr::new(0x10000 + 8 * FRAME_SIZE - 1)));
        assert!(!l.in_app(VAddr::new(0x10000 + 8 * FRAME_SIZE)));
        assert!(l.in_internal(VAddr::new(0x80_0040)));
        assert!(!l.in_internal(VAddr::new(0x10000)));
    }

    #[test]
    fn line_classification() {
        let l = layout();
        assert!(l.app_line(0x10000 / LINE_SIZE));
        assert!(l.internal_line(0x80_0000 / LINE_SIZE));
        assert!(!l.app_line(0x80_0000 / LINE_SIZE));
    }

    #[test]
    fn all_app_pages_enumerates_range() {
        let l = layout();
        let pages: Vec<Vpn> = l.all_app_pages().collect();
        assert_eq!(pages.len(), 8);
        assert_eq!(pages[0], VAddr::new(0x10000).vpn());
    }
}
