//! Twin-page storage and the diff-and-merge commit (§2.2, Fig. 2).
//!
//! When a PTSB-armed page takes its first write, copy-on-write gives the
//! writing process a private copy; at that instant the private copy still
//! equals the shared page, so it doubles as the *twin* snapshot. At each
//! synchronization operation the dirty private copy is byte-diffed against
//! the twin and exactly the changed bytes are merged into shared memory —
//! merging anything else "is tantamount to fabricating stores that the
//! program did not perform" (§2.2). Byte-granularity diffing is also what
//! makes the word-tearing AMBSA violation of Fig. 3 reproducible.

use std::collections::HashMap;

use tmi_machine::{FrameId, Vpn, FRAME_SIZE};
use tmi_os::{AsId, Kernel, OsError};

use crate::config::CommitCostModel;

/// Result of committing one page.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageCommit {
    /// Bytes that differed and were merged.
    pub bytes_merged: u64,
    /// Cycles the diff + merge cost.
    pub cycles: u64,
    /// Whether the page was successfully re-armed after the merge. `false`
    /// means the merge landed in shared memory but the re-protect failed
    /// (transient `mprotect` fault): the page is currently unmapped for
    /// this address space and the repair governor must either retry the
    /// arming or degrade the page to shared mode.
    pub rearmed: bool,
}

/// Twin snapshots, keyed by (address space, page).
#[derive(Debug, Default)]
pub struct TwinStore {
    twins: HashMap<AsId, HashMap<Vpn, Box<[u8; FRAME_SIZE as usize]>>>,
    current_bytes: u64,
    peak_bytes: u64,
}

impl TwinStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the twin for `(aspace, vpn)` from the page's just-created
    /// private frame (which equals the shared page at COW-break time).
    /// No-op if a twin already exists or the page has no private copy.
    pub fn snapshot(&mut self, kernel: &Kernel, aspace: AsId, vpn: Vpn) {
        let Some(frame) = kernel.private_frame(aspace, vpn) else {
            return;
        };
        let per_as = self.twins.entry(aspace).or_default();
        if per_as.contains_key(&vpn) {
            return;
        }
        let data = Box::new(*kernel.physmem().frame_bytes(frame));
        per_as.insert(vpn, data);
        self.current_bytes += FRAME_SIZE;
        self.peak_bytes = self.peak_bytes.max(self.current_bytes);
    }

    /// Pages of `aspace` that currently have a twin (i.e. buffered writes).
    pub fn dirty_pages(&self, aspace: AsId) -> Vec<Vpn> {
        let mut v: Vec<Vpn> = self
            .twins
            .get(&aspace)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// True if `aspace` has any buffered page.
    pub fn has_dirty(&self, aspace: AsId) -> bool {
        self.twins.get(&aspace).is_some_and(|m| !m.is_empty())
    }

    /// Commits one page: diffs the private copy against the twin, merges
    /// changed bytes into the shared object frame, discards the private
    /// copy and re-arms protection (Fig. 2 steps 4–5).
    ///
    /// `huge` selects the chunked-`memcmp` cost model of §4.4.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NoSuchEntity`] — with **no** state change — if
    /// the page has no twin or no private frame (commit of a clean page is
    /// a runtime bug; callers iterate [`Self::dirty_pages`]), and
    /// propagates structural errors from the shared-frame lookup. A
    /// *re-arm* failure after the merge is not an error: it is reported
    /// through [`PageCommit::rearmed`] so the governor can retry or
    /// degrade without losing the commit's accounting.
    pub fn commit_page(
        &mut self,
        kernel: &mut Kernel,
        aspace: AsId,
        vpn: Vpn,
        cost: &CommitCostModel,
        huge: bool,
    ) -> Result<PageCommit, OsError> {
        if !self.has_twin(aspace, vpn) {
            return Err(OsError::NoSuchEntity("twin for committed page"));
        }
        let private = kernel
            .private_frame(aspace, vpn)
            .ok_or(OsError::NoSuchEntity("private frame for twin"))?;
        let private_bytes = *kernel.physmem().frame_bytes(private);

        let shared_pa = kernel.object_paddr(aspace, vpn.base())?;
        let shared_frame: FrameId = shared_pa.frame();

        // Past this point the commit itself cannot fail: consume the twin.
        let twin = self
            .twins
            .get_mut(&aspace)
            .and_then(|m| m.remove(&vpn))
            .expect("twin presence checked above");
        self.current_bytes -= FRAME_SIZE;

        // Diff and merge only the changed bytes.
        let mut merged = 0u64;
        let identical = private_bytes[..] == twin[..];
        if !identical {
            for i in 0..FRAME_SIZE as usize {
                if private_bytes[i] != twin[i] {
                    kernel
                        .physmem_mut()
                        .write_byte(shared_frame.base().offset(i as u64), private_bytes[i]);
                    merged += 1;
                }
            }
        }

        // The merge has landed; a failed re-arm (injected mprotect fault)
        // leaves the page unmapped here and is reported to the governor
        // via `rearmed` rather than unwinding the commit.
        let rearmed = kernel.discard_private_and_rearm(aspace, vpn).is_ok();

        let scan = if huge && identical {
            // The memcmp fast path skips identical 4 KiB chunks cheaply.
            FRAME_SIZE * cost.memcmp_per_byte_x100 / 100
        } else if huge {
            FRAME_SIZE * (cost.memcmp_per_byte_x100 + cost.diff_per_byte_x100) / 100
        } else {
            FRAME_SIZE * cost.diff_per_byte_x100 / 100
        };
        let cycles = cost.per_page_base + scan + merged * cost.merge_per_byte_x100 / 100;
        Ok(PageCommit {
            bytes_merged: merged,
            cycles,
            rearmed,
        })
    }

    /// True if `(aspace, vpn)` currently has a twin snapshot.
    pub fn has_twin(&self, aspace: AsId, vpn: Vpn) -> bool {
        self.twins
            .get(&aspace)
            .is_some_and(|m| m.contains_key(&vpn))
    }

    /// Discards the twin for `(aspace, vpn)` without committing — the
    /// rollback path (buffered bytes are dropped, shared memory keeps its
    /// pre-repair contents). Returns true if a twin was discarded.
    pub fn discard_page(&mut self, aspace: AsId, vpn: Vpn) -> bool {
        let removed = self
            .twins
            .get_mut(&aspace)
            .and_then(|m| m.remove(&vpn))
            .is_some();
        if removed {
            self.current_bytes -= FRAME_SIZE;
        }
        removed
    }

    /// Discards every twin of `aspace` (rollback). Returns the number of
    /// pages discarded.
    pub fn discard_aspace(&mut self, aspace: AsId) -> u64 {
        let n = self
            .twins
            .get_mut(&aspace)
            .map(|m| {
                let n = m.len() as u64;
                m.clear();
                n
            })
            .unwrap_or(0);
        self.current_bytes -= n * FRAME_SIZE;
        n
    }

    /// Current twin bytes held.
    pub fn current_bytes(&self) -> u64 {
        self.current_bytes
    }

    /// High-water mark of twin bytes, for Fig. 8.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmi_machine::{VAddr, Width};
    use tmi_os::MapRequest;

    fn setup() -> (Kernel, AsId, VAddr) {
        let mut k = Kernel::new();
        let obj = k.create_object(16 * FRAME_SIZE);
        let a = k.create_aspace();
        let base = VAddr::new(0x10000);
        k.map(a, MapRequest::object(base, 16 * FRAME_SIZE, obj, 0))
            .unwrap();
        (k, a, base)
    }

    fn arm_and_dirty(k: &mut Kernel, a: AsId, addr: VAddr, value: u64) -> TwinStore {
        k.force_write(a, addr, Width::W8, 1).unwrap();
        k.protect_page_cow(a, addr.vpn()).unwrap();
        k.handle_fault(a, addr, true).unwrap(); // COW break
        let mut tw = TwinStore::new();
        tw.snapshot(k, a, addr.vpn());
        k.force_write(a, addr, Width::W8, value).unwrap(); // private write
        tw
    }

    #[test]
    fn commit_merges_only_changed_bytes() {
        let (mut k, a, base) = setup();
        // Shared page byte 0..8 = 1; thread writes 2 privately; a *different*
        // byte range is concurrently changed in shared memory by "another
        // process" — the merge must not clobber it.
        let mut tw = arm_and_dirty(&mut k, a, base, 2);
        let shared = k.object_paddr(a, base).unwrap();
        k.physmem_mut().write(shared.offset(32), Width::W8, 777);

        let pc = tw
            .commit_page(&mut k, a, base.vpn(), &CommitCostModel::standard(), false)
            .unwrap();
        assert!(pc.bytes_merged >= 1 && pc.bytes_merged <= 8);
        assert_eq!(
            k.physmem().read(shared, Width::W8),
            2,
            "merged thread write"
        );
        assert_eq!(
            k.physmem().read(shared.offset(32), Width::W8),
            777,
            "concurrent shared update preserved"
        );
        // Page is re-armed: next write COWs again.
        assert!(k.translate(a, base, true).is_err());
    }

    #[test]
    fn identical_page_merges_nothing() {
        let (mut k, a, base) = setup();
        k.force_write(a, base, Width::W8, 5).unwrap();
        k.protect_page_cow(a, base.vpn()).unwrap();
        k.handle_fault(a, base, true).unwrap();
        let mut tw = TwinStore::new();
        tw.snapshot(&k, a, base.vpn());
        // Rewrite the same value: diff finds no changed bytes.
        k.force_write(a, base, Width::W8, 5).unwrap();
        let pc = tw
            .commit_page(&mut k, a, base.vpn(), &CommitCostModel::standard(), false)
            .unwrap();
        assert_eq!(pc.bytes_merged, 0);
    }

    #[test]
    fn word_tearing_is_reproducible_at_byte_granularity() {
        // Fig. 3: both "threads" (modeled as two address spaces) store two
        // bytes at x; diff/merge yields a value neither stored.
        let mut k = Kernel::new();
        let obj = k.create_object(FRAME_SIZE);
        let a = k.create_aspace();
        let b = k.create_aspace();
        let base = VAddr::new(0x10000);
        k.map(a, MapRequest::object(base, FRAME_SIZE, obj, 0))
            .unwrap();
        k.map(b, MapRequest::object(base, FRAME_SIZE, obj, 0))
            .unwrap();
        k.force_write(a, base, Width::W2, 0).unwrap();

        let mut tw = TwinStore::new();
        for (aspace, val) in [(a, 0xAB00u64), (b, 0x00CDu64)] {
            k.protect_page_cow(aspace, base.vpn()).unwrap();
            k.handle_fault(aspace, base, true).unwrap();
            tw.snapshot(&k, aspace, base.vpn());
            k.force_write(aspace, base, Width::W2, val).unwrap();
        }
        tw.commit_page(&mut k, a, base.vpn(), &CommitCostModel::standard(), false)
            .unwrap();
        tw.commit_page(&mut k, b, base.vpn(), &CommitCostModel::standard(), false)
            .unwrap();
        let shared = k.object_paddr(a, base).unwrap();
        assert_eq!(
            k.physmem().read(shared, Width::W2),
            0xABCD,
            "AMBSA violated: a value no thread stored"
        );
    }

    #[test]
    fn dirty_tracking_and_peak_bytes() {
        let (mut k, a, base) = setup();
        let mut tw = arm_and_dirty(&mut k, a, base, 9);
        assert!(tw.has_dirty(a));
        assert_eq!(tw.dirty_pages(a), vec![base.vpn()]);
        assert_eq!(tw.current_bytes(), FRAME_SIZE);
        tw.commit_page(&mut k, a, base.vpn(), &CommitCostModel::standard(), false)
            .unwrap();
        assert!(!tw.has_dirty(a));
        assert_eq!(tw.current_bytes(), 0);
        assert_eq!(tw.peak_bytes(), FRAME_SIZE);
    }

    #[test]
    fn snapshot_is_idempotent_and_requires_private_frame() {
        let (mut k, a, base) = setup();
        let mut tw = TwinStore::new();
        // No private frame yet: snapshot is a no-op.
        tw.snapshot(&k, a, base.vpn());
        assert!(!tw.has_dirty(a));
        let tw2 = arm_and_dirty(&mut k, a, base, 3);
        let _ = tw2;
        // Second snapshot doesn't double-count.
        let mut tw3 = TwinStore::new();
        tw3.snapshot(&k, a, base.vpn());
        tw3.snapshot(&k, a, base.vpn());
        assert_eq!(tw3.current_bytes(), FRAME_SIZE);
    }

    #[test]
    fn huge_commit_costs_less_when_identical() {
        let cost = CommitCostModel::standard();
        let (mut k, a, base) = setup();
        // Identical page, huge model.
        k.force_write(a, base, Width::W8, 5).unwrap();
        k.protect_page_cow(a, base.vpn()).unwrap();
        k.handle_fault(a, base, true).unwrap();
        let mut tw = TwinStore::new();
        tw.snapshot(&k, a, base.vpn());
        let clean = tw.commit_page(&mut k, a, base.vpn(), &cost, true).unwrap();

        // Dirty page, huge model.
        let mut tw = arm_and_dirty(&mut k, a, base.offset(FRAME_SIZE), 7);
        let dirty = tw
            .commit_page(&mut k, a, base.offset(FRAME_SIZE).vpn(), &cost, true)
            .unwrap();
        assert!(clean.cycles < dirty.cycles);
    }
}
