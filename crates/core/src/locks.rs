//! Process-shared lock redirection (§3.2).
//!
//! TMI's interposed `pthread_mutex_init` replaces the application's lock
//! object with a pointer to a TMI-owned lock living in the process-shared
//! internal region, so locks keep working after threads become processes.
//!
//! Slot placement *mirrors the application's own layout*: a redirected
//! lock keeps its offset within the cache line, and locks that shared an
//! application line share an internal line. Interposition therefore
//! neither introduces nor hides lock false sharing — dense lock pools
//! (boost's `spinlock_pool`, §4.3) stay dense and detectable, padded lock
//! arrays stay padded. When the detector later finds false sharing on the
//! internal lock lines, [`LockRedirector::repad`] re-lays every slot out
//! at cache-line stride — "a new pthread_mutex_lock that is cache-line
//! sized to avoid false sharing".

use std::collections::HashMap;

use tmi_machine::{VAddr, LINE_SIZE};

/// Redirection table from application lock addresses to internal slots.
#[derive(Debug)]
pub struct LockRedirector {
    region_start: VAddr,
    region_len: u64,
    /// app cache line → internal line index (layout mirroring).
    line_map: HashMap<u64, u64>,
    /// app lock address → internal slot address.
    map: HashMap<VAddr, VAddr>,
    next_line: u64,
    padded: bool,
    repads: u64,
}

impl LockRedirector {
    /// Creates a redirector allocating slots from `[start, start+len)` of
    /// the internal shared region.
    ///
    /// # Panics
    ///
    /// Panics unless `start` is line aligned.
    pub fn new(start: VAddr, len: u64) -> Self {
        assert!(
            start.raw().is_multiple_of(LINE_SIZE),
            "lock region must be line aligned"
        );
        LockRedirector {
            region_start: start,
            region_len: len,
            line_map: HashMap::new(),
            map: HashMap::new(),
            next_line: 0,
            padded: false,
            repads: 0,
        }
    }

    fn take_line(&mut self) -> u64 {
        assert!(
            (self.next_line + 1) * LINE_SIZE <= self.region_len,
            "internal lock region exhausted"
        );
        let l = self.next_line;
        self.next_line += 1;
        l
    }

    /// Returns the internal lock address for `app_lock`, allocating a slot
    /// on first use.
    ///
    /// # Panics
    ///
    /// Panics if the internal region is exhausted — size it for the
    /// workload's lock count.
    pub fn redirect(&mut self, app_lock: VAddr) -> VAddr {
        if let Some(&slot) = self.map.get(&app_lock) {
            return slot;
        }
        let slot = if self.padded {
            // Post-repair placement: one line per lock.
            let line = self.take_line();
            VAddr::new(self.region_start.raw() + line * LINE_SIZE)
        } else {
            // Layout-mirroring placement: same in-line offset, app lines
            // map 1:1 to internal lines.
            let app_line = app_lock.raw() / LINE_SIZE;
            let line = match self.line_map.get(&app_line) {
                Some(&l) => l,
                None => {
                    let l = self.take_line();
                    self.line_map.insert(app_line, l);
                    l
                }
            };
            let offset = app_lock.line_offset() & !3; // 4-byte lock word
            VAddr::new(self.region_start.raw() + line * LINE_SIZE + offset)
        };
        self.map.insert(app_lock, slot);
        slot
    }

    /// Re-lays every known lock out at cache-line stride — the repair for
    /// false sharing among the lock slots themselves. Idempotent.
    pub fn repad(&mut self) {
        if self.padded {
            return;
        }
        self.padded = true;
        let mut keys: Vec<VAddr> = self.map.keys().copied().collect();
        keys.sort_unstable(); // HashMap order must not leak into slot layout
        for k in keys {
            let line = self.take_line();
            self.map
                .insert(k, VAddr::new(self.region_start.raw() + line * LINE_SIZE));
        }
        self.repads += 1;
    }

    /// Whether slots are currently cache-line padded.
    pub fn padded(&self) -> bool {
        self.padded
    }

    /// Number of re-padding repairs performed.
    pub fn repads(&self) -> u64 {
        self.repads
    }

    /// Number of redirected locks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no lock has been redirected.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes of internal region consumed (memory accounting; the lock
    /// indirection overhead of fluidanimate/water-spatial in Fig. 8).
    pub fn bytes_used(&self) -> u64 {
        self.next_line * LINE_SIZE
    }
}

impl tmi_telemetry::MetricSource for LockRedirector {
    fn metrics(&self, out: &mut tmi_telemetry::MetricSink) {
        out.u64("padded", u64::from(self.padded()));
        out.u64("repads", self.repads());
        out.u64("bytes_used", self.bytes_used());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn redirector() -> LockRedirector {
        LockRedirector::new(VAddr::new(0x80_0000), 1 << 20)
    }

    #[test]
    fn redirect_is_stable_per_lock() {
        let mut r = redirector();
        let a = r.redirect(VAddr::new(0x1000));
        let b = r.redirect(VAddr::new(0x1008));
        assert_ne!(a, b);
        assert_eq!(r.redirect(VAddr::new(0x1000)), a, "stable mapping");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn dense_app_locks_stay_dense() {
        // spinlockpool: 8-byte-spaced locks share lines before and after
        // redirection, so the false sharing remains detectable.
        let mut r = redirector();
        let a = r.redirect(VAddr::new(0x1000));
        let b = r.redirect(VAddr::new(0x1008));
        assert_eq!(a.raw() / LINE_SIZE, b.raw() / LINE_SIZE, "same line");
        assert_eq!(b.raw() - a.raw(), 8, "offsets mirrored");
    }

    #[test]
    fn padded_app_locks_stay_padded() {
        // dedup/water-spatial: line-spaced app locks must not be packed
        // together by redirection.
        let mut r = redirector();
        let a = r.redirect(VAddr::new(0x1000));
        let b = r.redirect(VAddr::new(0x1040));
        let c = r.redirect(VAddr::new(0x2000));
        assert_ne!(a.raw() / LINE_SIZE, b.raw() / LINE_SIZE);
        assert_ne!(b.raw() / LINE_SIZE, c.raw() / LINE_SIZE);
    }

    #[test]
    fn interleaved_first_use_does_not_change_layout() {
        // Two threads discovering locks in interleaved order must still
        // end up with the app's grouping.
        let mut r = redirector();
        let x0 = r.redirect(VAddr::new(0x1000)); // line A
        let y0 = r.redirect(VAddr::new(0x2000)); // line B
        let x1 = r.redirect(VAddr::new(0x1010)); // line A again
        assert_eq!(x0.raw() / LINE_SIZE, x1.raw() / LINE_SIZE);
        assert_ne!(x0.raw() / LINE_SIZE, y0.raw() / LINE_SIZE);
        assert_eq!(x1.raw() % LINE_SIZE, 0x10);
    }

    #[test]
    fn repad_moves_every_lock_to_its_own_line() {
        let mut r = redirector();
        let keys: Vec<VAddr> = (0..10u64).map(|i| VAddr::new(0x1000 + i * 4)).collect();
        for &k in &keys {
            r.redirect(k);
        }
        r.repad();
        assert!(r.padded());
        let mut lines: Vec<u64> = keys
            .iter()
            .map(|&k| r.redirect(k).raw() / LINE_SIZE)
            .collect();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), keys.len(), "one line per lock after repad");
    }

    #[test]
    fn repad_is_idempotent_and_new_locks_are_padded() {
        let mut r = redirector();
        r.redirect(VAddr::new(0x1000));
        r.repad();
        let slot = r.redirect(VAddr::new(0x1000));
        r.repad();
        assert_eq!(r.redirect(VAddr::new(0x1000)), slot);
        assert_eq!(r.repads(), 1);
        let a = r.redirect(VAddr::new(0x3000));
        let b = r.redirect(VAddr::new(0x3004));
        assert_ne!(a.raw() / LINE_SIZE, b.raw() / LINE_SIZE);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn region_exhaustion_panics() {
        let mut r = LockRedirector::new(VAddr::new(0x80_0000), 64);
        r.redirect(VAddr::new(0x1000));
        r.redirect(VAddr::new(0x2000));
    }

    #[test]
    fn bytes_used_tracks_lines() {
        let mut r = redirector();
        r.redirect(VAddr::new(0x1000));
        r.redirect(VAddr::new(0x1008)); // same line
        assert_eq!(r.bytes_used(), LINE_SIZE);
        r.redirect(VAddr::new(0x5000));
        assert_eq!(r.bytes_used(), 2 * LINE_SIZE);
    }
}
