//! The false-sharing detector (§3.1).
//!
//! Consumes PEBS records, disassembles each record's PC to recover the
//! access kind and width, and accumulates per-cache-line, per-thread byte
//! masks. A line is *falsely* shared when two threads touch **disjoint**
//! bytes of it (at least one writing) and *truly* shared when their byte
//! ranges overlap — the classification driving targeted repair.
//!
//! Following the paper, the detector:
//!
//! * filters addresses outside the monitored ranges (the `/proc/pid/maps`
//!   filter that excludes system libraries and stacks);
//! * scales record counts back to event counts by the sampling period
//!   ("Tmi assumes that if a period of n produces r records, each record
//!   corresponds to n/r actual events" — with per-kind periods, each
//!   record counts `period` (loads) or `period × store_divisor` (stores));
//! * analyzes once per detection tick and reports lines whose scaled event
//!   rate crosses the repair threshold;
//! * classifies sharing from *consecutive record pairs* on a line: "if a
//!   1-byte load to L1 followed by 1-byte store to L2 with L1 ≠ L2
//!   produces a HITM event, the false sharing detector would classify the
//!   HITM event as read-write false sharing" (§3.1). Pairwise temporal
//!   classification tolerates PEBS address skid and distinguishes a lock
//!   array (consecutive events on *different* words → false sharing) from
//!   a contended word (same word → true sharing).

use std::collections::HashMap;

use tmi_machine::{VAddr, LINE_SIZE};
use tmi_os::Tid;
use tmi_perf::{PebsRecord, PerfConfig};
use tmi_program::{CodeRegistry, InstrKind};

/// Kind of sharing diagnosed on a line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SharingKind {
    /// Disjoint bytes from different threads, at least one writer:
    /// repairable by layout isolation.
    FalseSharing,
    /// Overlapping bytes from different threads: repair would not help
    /// (e.g. contended locks, shared counters).
    TrueSharing,
    /// Only one thread observed, or nobody writes.
    Private,
}

/// Per-thread access summary within one line: one bit per byte.
#[derive(Clone, Copy, Debug, Default)]
struct ByteMasks {
    read: u64,
    write: u64,
    events: f64,
}

/// Accumulated profile of one virtual cache line.
#[derive(Clone, Debug, Default)]
pub struct LineProfile {
    threads: HashMap<Tid, ByteMasks>,
    /// Scaled events per static instruction (for symbolized reports).
    pcs: HashMap<tmi_program::Pc, f64>,
    /// The previous record on this line: (thread, byte mask, writes).
    last: Option<(Tid, u64, bool)>,
    /// Scaled evidence for false sharing: consecutive cross-thread records
    /// touching disjoint bytes, at least one writing.
    pub fs_evidence: f64,
    /// Scaled evidence for true sharing: consecutive cross-thread records
    /// touching overlapping bytes, at least one writing.
    pub ts_evidence: f64,
    /// Scaled HITM events attributed to this line in the current window.
    pub window_events: f64,
    /// Scaled HITM events over the whole run.
    pub total_events: f64,
}

impl LineProfile {
    /// Classifies the sharing on this line from the accumulated pairwise
    /// evidence. Dominant evidence wins: a line with mostly same-word
    /// conflicts is truly shared even if occasional disjoint pairs appear
    /// (the leveldb queue, §4.2), and vice versa for lock arrays where a
    /// minority of conflicts land on the same slot (spinlockpool, §4.3).
    pub fn classify(&self) -> SharingKind {
        if self.threads.len() < 2 {
            return SharingKind::Private;
        }
        if self.fs_evidence == 0.0 && self.ts_evidence == 0.0 {
            return SharingKind::Private;
        }
        if self.fs_evidence > self.ts_evidence {
            SharingKind::FalseSharing
        } else {
            SharingKind::TrueSharing
        }
    }

    /// Number of distinct threads seen on this line.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Static instructions touching this line, hottest first, with their
    /// scaled event counts.
    pub fn top_pcs(&self) -> Vec<(tmi_program::Pc, f64)> {
        let mut v: Vec<(tmi_program::Pc, f64)> = self.pcs.iter().map(|(&p, &e)| (p, e)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Per-thread byte masks (read, write), for report rendering.
    pub fn thread_masks(&self) -> Vec<(Tid, u64, u64)> {
        let mut v: Vec<(Tid, u64, u64)> = self
            .threads
            .iter()
            .map(|(&t, m)| (t, m.read, m.write))
            .collect();
        v.sort_by_key(|&(t, _, _)| t);
        v
    }
}

/// One line crossing the detection threshold in a window.
#[derive(Clone, Copy, Debug)]
pub struct SharingReport {
    /// Virtual line number (virtual address / 64).
    pub vline: u64,
    /// Diagnosis.
    pub kind: SharingKind,
    /// Scaled events per second in the reporting window.
    pub events_per_sec: f64,
}

/// The detector state.
///
/// ```
/// use tmi::detect::{FalseSharingDetector, SharingKind};
/// use tmi_perf::{PebsRecord, PerfConfig};
/// use tmi_program::{CodeRegistry, InstrKind};
/// use tmi_machine::{VAddr, Width};
/// use tmi_os::Tid;
///
/// let mut code = CodeRegistry::new();
/// let st = code.instr("demo::store", InstrKind::Store, Width::W8);
/// let mut d = FalseSharingDetector::new(
///     PerfConfig { period: 1, skid_every: 0, ..Default::default() },
///     vec![(VAddr::new(0x1000), 0x1000)],
/// );
/// // Two threads' records alternate on disjoint words of one line.
/// for i in 0..10u32 {
///     d.ingest(&[PebsRecord {
///         tid: Tid(i % 2),
///         pc: st,
///         vaddr: VAddr::new(0x1000 + (i as u64 % 2) * 8),
///     }], &code);
/// }
/// let reports = d.analyze_window(1e-3, 1.0);
/// assert_eq!(reports[0].kind, SharingKind::FalseSharing);
/// ```
#[derive(Debug)]
pub struct FalseSharingDetector {
    perf: PerfConfig,
    /// Monitored address ranges (app heap/globals and the TMI-internal
    /// region); everything else is filtered like stack/syslib addresses.
    ranges: Vec<(VAddr, u64)>,
    lines: HashMap<u64, LineProfile>,
    records_ingested: u64,
    records_filtered: u64,
    records_undecodable: u64,
}

impl FalseSharingDetector {
    /// Creates a detector monitoring the given `[start, len)` ranges.
    pub fn new(perf: PerfConfig, ranges: Vec<(VAddr, u64)>) -> Self {
        FalseSharingDetector {
            perf,
            ranges,
            lines: HashMap::new(),
            records_ingested: 0,
            records_filtered: 0,
            records_undecodable: 0,
        }
    }

    fn in_ranges(&self, addr: VAddr) -> bool {
        self.ranges
            .iter()
            .any(|&(s, l)| addr >= s && addr.raw() < s.raw() + l)
    }

    /// Ingests a batch of PEBS records (one detection-thread pass).
    pub fn ingest(&mut self, records: &[PebsRecord], code: &CodeRegistry) {
        for rec in records {
            if !self.in_ranges(rec.vaddr) {
                self.records_filtered += 1;
                continue;
            }
            let Some(info) = code.disassemble(rec.pc) else {
                self.records_undecodable += 1;
                continue;
            };
            self.records_ingested += 1;
            let scale = match info.kind {
                InstrKind::Load => self.perf.period,
                InstrKind::Store => self.perf.period * self.perf.store_divisor,
                // An RMW's HITM is taken on its load half.
                InstrKind::Rmw => self.perf.period,
            } as f64;
            let vline = rec.vaddr.raw() / LINE_SIZE;
            let off = rec.vaddr.line_offset();
            let width = info.width.bytes().min(LINE_SIZE - off);
            let mask = byte_mask(off, width);
            let profile = self.lines.entry(vline).or_default();
            profile.window_events += scale;
            profile.total_events += scale;
            let writes = info.kind.writes();
            if let Some((ptid, pmask, pwrites)) = profile.last {
                if ptid != rec.tid && (writes || pwrites) {
                    if pmask & mask == 0 {
                        profile.fs_evidence += scale;
                    } else {
                        profile.ts_evidence += scale;
                    }
                }
            }
            profile.last = Some((rec.tid, mask, writes));
            *profile.pcs.entry(rec.pc).or_insert(0.0) += scale;
            let tm = profile.threads.entry(rec.tid).or_default();
            tm.events += scale;
            if info.kind.reads() {
                tm.read |= mask;
            }
            if writes {
                tm.write |= mask;
            }
        }
    }

    /// Analyzes the current window: returns every line whose scaled event
    /// rate crosses `threshold_per_sec`, then resets window counters.
    /// `window_secs` is the simulated duration since the last analysis.
    pub fn analyze_window(
        &mut self,
        window_secs: f64,
        threshold_per_sec: f64,
    ) -> Vec<SharingReport> {
        let mut out = Vec::new();
        for (&vline, profile) in &mut self.lines {
            let rate = profile.window_events / window_secs.max(1e-12);
            if rate >= threshold_per_sec {
                out.push(SharingReport {
                    vline,
                    kind: profile.classify(),
                    events_per_sec: rate,
                });
            }
            profile.window_events = 0.0;
        }
        // Rate-descending with a vline tiebreak: HashMap iteration order
        // must never leak into repair decisions (determinism).
        out.sort_by(|a, b| {
            b.events_per_sec
                .total_cmp(&a.events_per_sec)
                .then(a.vline.cmp(&b.vline))
        });
        out
    }

    /// The profile accumulated for a line, if any.
    pub fn line(&self, vline: u64) -> Option<&LineProfile> {
        self.lines.get(&vline)
    }

    /// All profiled lines sorted by total scaled events, hottest first
    /// (vline tiebreak for determinism).
    pub fn hottest_lines(&self) -> Vec<(u64, &LineProfile)> {
        let mut v: Vec<(u64, &LineProfile)> = self.lines.iter().map(|(&l, p)| (l, p)).collect();
        v.sort_by(|a, b| {
            b.1.total_events
                .total_cmp(&a.1.total_events)
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// Total scaled HITM events attributed to monitored lines.
    pub fn total_scaled_events(&self) -> f64 {
        self.lines.values().map(|l| l.total_events).sum()
    }

    /// Number of records accepted / filtered / undecodable.
    pub fn record_counts(&self) -> (u64, u64, u64) {
        (
            self.records_ingested,
            self.records_filtered,
            self.records_undecodable,
        )
    }

    /// Approximate detector memory footprint in bytes (line table plus
    /// per-thread masks), for Fig. 8.
    pub fn table_bytes(&self) -> u64 {
        let per_line = std::mem::size_of::<LineProfile>() as u64 + 16;
        let per_thread = 40u64;
        self.lines
            .values()
            .map(|l| per_line + per_thread * l.threads.len() as u64)
            .sum()
    }
}

impl tmi_telemetry::MetricSource for FalseSharingDetector {
    fn metrics(&self, out: &mut tmi_telemetry::MetricSink) {
        let (ingested, filtered, undecodable) = self.record_counts();
        out.u64("records_ingested", ingested);
        out.u64("records_filtered", filtered);
        out.u64("records_undecodable", undecodable);
        out.u64("lines_tracked", self.lines.len() as u64);
        out.u64("table_bytes", self.table_bytes());
        out.f64("total_scaled_events", self.total_scaled_events());
    }
}

fn byte_mask(off: u64, width: u64) -> u64 {
    debug_assert!(off + width <= 64);
    if width >= 64 {
        u64::MAX
    } else {
        ((1u64 << width) - 1) << off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmi_machine::Width;
    use tmi_program::Pc;

    fn detector(code: &mut CodeRegistry) -> (FalseSharingDetector, Pc, Pc) {
        let ld = code.instr("t::ld", InstrKind::Load, Width::W8);
        let st = code.instr("t::st", InstrKind::Store, Width::W8);
        let d = FalseSharingDetector::new(
            PerfConfig {
                period: 10,
                store_divisor: 4,
                skid_every: 0,
                ..Default::default()
            },
            vec![(VAddr::new(0x10000), 0x10000)],
        );
        (d, ld, st)
    }

    fn rec(tid: u32, pc: Pc, addr: u64) -> PebsRecord {
        PebsRecord {
            tid: Tid(tid),
            pc,
            vaddr: VAddr::new(addr),
        }
    }

    #[test]
    fn disjoint_writers_classified_false_sharing() {
        let mut code = CodeRegistry::new();
        let (mut d, _ld, st) = detector(&mut code);
        for _ in 0..5 {
            d.ingest(&[rec(0, st, 0x10000), rec(1, st, 0x10008)], &code);
        }
        let reports = d.analyze_window(0.001, 1.0);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, SharingKind::FalseSharing);
        assert_eq!(reports[0].vline, 0x10000 / 64);
    }

    #[test]
    fn overlapping_writers_classified_true_sharing() {
        let mut code = CodeRegistry::new();
        let (mut d, ld, st) = detector(&mut code);
        d.ingest(&[rec(0, st, 0x10040), rec(1, ld, 0x10040)], &code);
        let reports = d.analyze_window(0.001, 1.0);
        assert_eq!(reports[0].kind, SharingKind::TrueSharing);
    }

    #[test]
    fn read_read_is_private() {
        let mut code = CodeRegistry::new();
        let (mut d, ld, _st) = detector(&mut code);
        d.ingest(&[rec(0, ld, 0x10000), rec(1, ld, 0x10010)], &code);
        let reports = d.analyze_window(0.001, 0.0);
        assert_eq!(reports[0].kind, SharingKind::Private);
    }

    #[test]
    fn true_sharing_evidence_dominates() {
        // leveldb's queue: mostly true sharing with a little false sharing
        // mixed in — must not be reported as repairable.
        let mut code = CodeRegistry::new();
        let (mut d, _ld, st) = detector(&mut code);
        d.ingest(
            &[
                rec(0, st, 0x10000),
                rec(1, st, 0x10008), // disjoint pair (0,1)
                rec(2, st, 0x10008), // overlaps thread 1
            ],
            &code,
        );
        let reports = d.analyze_window(0.001, 0.0);
        assert_eq!(reports[0].kind, SharingKind::TrueSharing);
    }

    #[test]
    fn scaling_by_period_and_store_divisor() {
        let mut code = CodeRegistry::new();
        let (mut d, ld, st) = detector(&mut code);
        d.ingest(&[rec(0, ld, 0x10000)], &code); // 10 events
        d.ingest(&[rec(1, st, 0x10008)], &code); // 40 events
        assert!((d.total_scaled_events() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_records_filtered() {
        let mut code = CodeRegistry::new();
        let (mut d, ld, _st) = detector(&mut code);
        d.ingest(&[rec(0, ld, 0xdead_beef)], &code);
        let (ok, filtered, undec) = d.record_counts();
        assert_eq!((ok, filtered, undec), (0, 1, 0));
    }

    #[test]
    fn unknown_pc_counted_undecodable() {
        let mut code = CodeRegistry::new();
        let (mut d, _ld, _st) = detector(&mut code);
        d.ingest(&[rec(0, Pc(0x99), 0x10000)], &code);
        let (ok, _f, undec) = d.record_counts();
        assert_eq!((ok, undec), (0, 1));
    }

    #[test]
    fn window_resets_but_totals_accumulate() {
        let mut code = CodeRegistry::new();
        let (mut d, _ld, st) = detector(&mut code);
        d.ingest(&[rec(0, st, 0x10000), rec(1, st, 0x10020)], &code);
        let r1 = d.analyze_window(1.0, 1.0);
        assert_eq!(r1.len(), 1);
        let r2 = d.analyze_window(1.0, 1.0);
        assert!(r2.is_empty(), "window was reset");
        assert!(d.total_scaled_events() > 0.0);
    }

    #[test]
    fn threshold_suppresses_cold_lines() {
        let mut code = CodeRegistry::new();
        let (mut d, _ld, st) = detector(&mut code);
        d.ingest(&[rec(0, st, 0x10000), rec(1, st, 0x10008)], &code);
        // 80 scaled events over 1s << threshold of 1e6.
        let reports = d.analyze_window(1.0, 1_000_000.0);
        assert!(reports.is_empty());
    }

    #[test]
    fn byte_mask_helper() {
        assert_eq!(byte_mask(0, 8), 0xff);
        assert_eq!(byte_mask(8, 4), 0xf00);
        assert_eq!(byte_mask(0, 64), u64::MAX);
        assert_eq!(byte_mask(63, 1), 1 << 63);
    }

    #[test]
    fn width_clamped_at_line_end() {
        // An 8-byte access 4 bytes before the end of the line must not
        // overflow the mask (the hardware would split it; the detector
        // attributes it to the first line).
        let mut code = CodeRegistry::new();
        let (mut d, _ld, st) = detector(&mut code);
        d.ingest(&[rec(0, st, 0x1003c)], &code);
        assert!(d.line(0x10000 / 64).is_some());
    }
}
