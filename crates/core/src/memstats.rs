//! Memory-overhead accounting (Fig. 8).
//!
//! The paper reports absolute MB for plain pthreads vs TMI-full. TMI's
//! overheads come from: per-thread perf event buffers, the detector's
//! static-disassembly and dynamic tracking structures, twin pages and
//! buffered page state, and the process-shared lock objects.

/// A memory-usage breakdown in bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Application memory: peak physical frames (heap, globals, twins'
    /// private frames are counted by the kernel too).
    pub app_bytes: u64,
    /// perf ring buffers.
    pub perf_bytes: u64,
    /// Detector line tables plus fixed disassembly/tracking overhead.
    pub detector_bytes: u64,
    /// Twin-page snapshots (high-water mark).
    pub twin_bytes: u64,
    /// Process-shared lock objects.
    pub lock_bytes: u64,
}

impl MemoryBreakdown {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.app_bytes + self.perf_bytes + self.detector_bytes + self.twin_bytes + self.lock_bytes
    }

    /// Total in MB (the unit of Fig. 8).
    pub fn total_mb(&self) -> f64 {
        self.total() as f64 / (1024.0 * 1024.0)
    }

    /// Runtime overhead (everything but the application itself).
    pub fn overhead_bytes(&self) -> u64 {
        self.total() - self.app_bytes
    }
}

impl tmi_telemetry::MetricSource for MemoryBreakdown {
    fn metrics(&self, out: &mut tmi_telemetry::MetricSink) {
        out.u64("app_bytes", self.app_bytes);
        out.u64("perf_bytes", self.perf_bytes);
        out.u64("detector_bytes", self.detector_bytes);
        out.u64("twin_bytes", self.twin_bytes);
        out.u64("lock_bytes", self.lock_bytes);
        out.u64("total_bytes", self.total());
        out.u64("overhead_bytes", self.overhead_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let m = MemoryBreakdown {
            app_bytes: 10 << 20,
            perf_bytes: 2 << 20,
            detector_bytes: 64 << 20,
            twin_bytes: 1 << 20,
            lock_bytes: 4096,
        };
        assert_eq!(m.total(), m.app_bytes + m.overhead_bytes());
        assert!(m.total_mb() > 77.0 && m.total_mb() < 78.0);
    }
}
