//! Code-centric consistency (§3.4, Table 2).
//!
//! The consistency model in force depends on which *kind of code* is
//! executing: regular C/C++, C/C++ atomics, or inline assembly. The
//! compiler-inserted callbacks tell the runtime where these regions begin
//! and end; the runtime then decides, per access, whether the PTSB may be
//! used and whether it must be flushed first.
//!
//! | interaction (Table 2)      | semantics | PTSB permitted?             |
//! |-----------------------------|-----------|-----------------------------|
//! | regular × regular (racy)    | undefined | yes (case 1)                |
//! | atomic × atomic             | atomic    | no — flush + shared (case 2)|
//! | regular × asm               | undefined | TMI still disables (case 3) |
//! | atomic × asm                | proposed  | no — disabled (case 4)      |
//! | asm × asm                   | TSO       | no (case 5)                 |
//! | data-race-free regular code | SC        | yes (Lemma 3.1)             |
//!
//! Refinement for atomics: `memory_order_relaxed` requires only
//! *atomicity*, so relaxed atomics operate directly on shared pages (so
//! AMBSA holds) but do **not** force a PTSB flush — the optimization that
//! makes `shptr-relaxed` fast (§4.3).

use tmi_program::MemOrder;
use tmi_sim::{AccessInfo, RegionEvent, Route};

/// Per-access decision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Decision {
    /// Commit buffered pages before the access.
    pub flush: bool,
    /// Route the access through the always-shared mapping.
    pub shared: bool,
}

/// Decides how one access must be handled while repair is active.
///
/// With `code_centric` disabled (the ablation used to demonstrate the
/// canneal/cholesky failures, Figs. 11–12), every access runs through the
/// PTSB as Sheriff would — semantically wrong for atomics and assembly.
pub fn access_decision(code_centric: bool, acc: &AccessInfo) -> Decision {
    if !code_centric {
        return Decision::default();
    }
    if acc.atomic {
        let flush = acc.order.map(MemOrder::is_ordering).unwrap_or(true);
        return Decision {
            flush,
            shared: true,
        };
    }
    if acc.in_asm {
        // Flushing happened at AsmEnter; within the region, accesses
        // operate on shared memory for TSO semantics (case 5).
        return Decision {
            flush: false,
            shared: true,
        };
    }
    Decision::default()
}

/// Decides whether a region event must flush the PTSB.
pub fn region_flush(code_centric: bool, ev: RegionEvent) -> bool {
    if !code_centric {
        return false;
    }
    match ev {
        RegionEvent::AsmEnter => true,
        RegionEvent::AsmExit => false,
        RegionEvent::Fence(order) => order.is_ordering(),
    }
}

/// Convenience: converts a [`Decision`] into the engine's [`Route`].
pub fn route_of(d: Decision) -> Route {
    if d.shared {
        Route::SharedObject
    } else {
        Route::Normal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmi_machine::{AccessKind, VAddr, Width};
    use tmi_program::Pc;

    fn acc(atomic: bool, order: Option<MemOrder>, in_asm: bool) -> AccessInfo {
        AccessInfo {
            pc: Pc(0x400000),
            vaddr: VAddr::new(0x1000),
            width: Width::W8,
            kind: AccessKind::Store,
            atomic,
            order,
            in_asm,
        }
    }

    #[test]
    fn regular_code_uses_ptsb_freely() {
        let d = access_decision(true, &acc(false, None, false));
        assert_eq!(
            d,
            Decision {
                flush: false,
                shared: false
            }
        );
    }

    #[test]
    fn relaxed_atomics_bypass_without_flush() {
        let d = access_decision(true, &acc(true, Some(MemOrder::Relaxed), false));
        assert_eq!(
            d,
            Decision {
                flush: false,
                shared: true
            }
        );
    }

    #[test]
    fn ordering_atomics_flush_and_bypass() {
        for order in [
            MemOrder::Acquire,
            MemOrder::Release,
            MemOrder::AcqRel,
            MemOrder::SeqCst,
        ] {
            let d = access_decision(true, &acc(true, Some(order), false));
            assert_eq!(
                d,
                Decision {
                    flush: true,
                    shared: true
                },
                "{order:?}"
            );
        }
    }

    #[test]
    fn asm_accesses_bypass_flush_at_entry() {
        let d = access_decision(true, &acc(false, None, true));
        assert_eq!(
            d,
            Decision {
                flush: false,
                shared: true
            }
        );
        assert!(region_flush(true, RegionEvent::AsmEnter));
        assert!(!region_flush(true, RegionEvent::AsmExit));
    }

    #[test]
    fn fences_flush_when_ordering() {
        assert!(region_flush(true, RegionEvent::Fence(MemOrder::SeqCst)));
        assert!(!region_flush(true, RegionEvent::Fence(MemOrder::Relaxed)));
    }

    #[test]
    fn without_code_centric_everything_is_unsafe_ptsb() {
        // The Sheriff-style ablation: atomics and asm go through the PTSB.
        for a in [
            acc(true, Some(MemOrder::SeqCst), false),
            acc(false, None, true),
        ] {
            let d = access_decision(false, &a);
            assert_eq!(d, Decision::default());
        }
        assert!(!region_flush(false, RegionEvent::AsmEnter));
    }

    #[test]
    fn route_conversion() {
        assert_eq!(
            route_of(Decision {
                flush: false,
                shared: true
            }),
            Route::SharedObject
        );
        assert_eq!(route_of(Decision::default()), Route::Normal);
    }
}
