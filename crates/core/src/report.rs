//! Human-readable cache-contention reports — the `perf c2c` / VTune view
//! of the detector's state (§5 compares TMI's instrumentation against
//! those tools; this module is the equivalent reporting surface), plus a
//! Cheetah-style prediction of the speedup a manual fix would yield
//! (Liu & Liu, CGO '16, discussed in §5).

use std::fmt::Write as _;

use tmi_machine::{LatencyModel, VAddr, LINE_SIZE};
use tmi_program::CodeRegistry;

use crate::detect::{FalseSharingDetector, SharingKind};

/// One line's entry in a [`ContentionReport`].
#[derive(Clone, Debug)]
pub struct LineReport {
    /// Virtual address of the line's first byte.
    pub addr: VAddr,
    /// Diagnosis.
    pub kind: SharingKind,
    /// Scaled HITM events attributed to the line over the run.
    pub total_events: f64,
    /// Threads observed on the line.
    pub threads: usize,
    /// Hottest static instructions, symbolized.
    pub top_symbols: Vec<(String, f64)>,
    /// Per-thread byte masks rendered as 64-character strings
    /// (`.` untouched, `r` read, `w` written, `b` both).
    pub masks: Vec<(u32, String)>,
}

/// A whole-run contention report.
#[derive(Clone, Debug, Default)]
pub struct ContentionReport {
    /// Hottest lines first.
    pub lines: Vec<LineReport>,
    /// Total scaled HITM events across monitored lines.
    pub total_events: f64,
    /// Scaled events on lines diagnosed as false sharing.
    pub false_sharing_events: f64,
    /// Scaled events on lines diagnosed as true sharing.
    pub true_sharing_events: f64,
}

impl ContentionReport {
    /// Builds a report from the detector's accumulated state.
    pub fn build(detector: &FalseSharingDetector, code: &CodeRegistry, max_lines: usize) -> Self {
        let mut report = ContentionReport::default();
        for (vline, profile) in detector.hottest_lines() {
            let kind = profile.classify();
            report.total_events += profile.total_events;
            match kind {
                SharingKind::FalseSharing => report.false_sharing_events += profile.total_events,
                SharingKind::TrueSharing => report.true_sharing_events += profile.total_events,
                SharingKind::Private => {}
            }
            if report.lines.len() >= max_lines {
                continue;
            }
            let top_symbols = profile
                .top_pcs()
                .into_iter()
                .take(4)
                .map(|(pc, ev)| {
                    let sym = code
                        .symbol(pc)
                        .map(str::to_owned)
                        .unwrap_or_else(|| format!("{pc}"));
                    (sym, ev)
                })
                .collect();
            let masks = profile
                .thread_masks()
                .into_iter()
                .map(|(tid, read, write)| {
                    let mut s = String::with_capacity(64);
                    for bit in 0..64 {
                        let r = read >> bit & 1 == 1;
                        let w = write >> bit & 1 == 1;
                        s.push(match (r, w) {
                            (false, false) => '.',
                            (true, false) => 'r',
                            (false, true) => 'w',
                            (true, true) => 'b',
                        });
                    }
                    (tid.0, s)
                })
                .collect();
            report.lines.push(LineReport {
                addr: VAddr::new(vline * LINE_SIZE),
                kind,
                total_events: profile.total_events,
                threads: profile.thread_count(),
                top_symbols,
                masks,
            });
        }
        report
    }

    /// The ratio of true-sharing to false-sharing events (the paper notes
    /// leveldb shows "roughly 10x more HITM events attributable to true
    /// sharing rather than false sharing", §4.2).
    pub fn true_to_false_ratio(&self) -> f64 {
        if self.false_sharing_events > 0.0 {
            self.true_sharing_events / self.false_sharing_events
        } else {
            f64::INFINITY
        }
    }

    /// Cheetah-style prediction of the speedup a manual fix of all
    /// false-sharing lines would yield: the fraction of runtime spent in
    /// (amortized) HITM stalls on falsely-shared lines is recovered.
    /// `run_cycles` is the observed wall time; `threads` the worker count.
    pub fn predict_manual_speedup(&self, run_cycles: u64, threads: usize) -> f64 {
        self.predict_manual_speedup_calibrated(run_cycles, threads, None)
    }

    /// Like [`Self::predict_manual_speedup`], but rescales the detector's
    /// period-reconstructed event counts to `actual_hitm_events` (the
    /// runtime knows the true total from the counting side of perf even
    /// when only 1-in-n events produced records).
    pub fn predict_manual_speedup_calibrated(
        &self,
        run_cycles: u64,
        threads: usize,
        actual_hitm_events: Option<u64>,
    ) -> f64 {
        let _ = threads;
        let lat = LatencyModel::haswell();
        // Each FS event is one cache-to-cache transfer; attribute the mean
        // HITM penalty (base + half the queuing cap) minus the local hit
        // it would have been. A ping-pong stalls its two participants
        // alternately, so wall-clock stall ≈ events × penalty / 2.
        let penalty =
            (lat.hitm + lat.hitm_queuing_step * lat.hitm_queuing_cap / 2 - lat.local_hit) as f64;
        let calibration = match actual_hitm_events {
            Some(actual) if self.total_events > 0.0 => actual as f64 / self.total_events,
            _ => 1.0,
        };
        let stall_cycles = self.false_sharing_events * calibration * penalty / 2.0;
        let run = run_cycles as f64;
        (run / (run - stall_cycles.min(run * 0.95))).max(1.0)
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "contention report: {:.0} scaled HITM events ({:.0} false sharing, {:.0} true sharing)",
            self.total_events, self.false_sharing_events, self.true_sharing_events
        );
        for l in &self.lines {
            let _ = writeln!(
                out,
                "\nline {:#x}  {:?}  {:.0} events  {} threads",
                l.addr.raw(),
                l.kind,
                l.total_events,
                l.threads
            );
            for (tid, mask) in &l.masks {
                let _ = writeln!(out, "  t{tid:<3} {mask}");
            }
            for (sym, ev) in &l.top_symbols {
                let _ = writeln!(out, "  {ev:>10.0}  {sym}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmi_machine::Width;
    use tmi_os::Tid;
    use tmi_perf::{PebsRecord, PerfConfig};
    use tmi_program::{CodeRegistry, InstrKind};

    fn build_detector() -> (FalseSharingDetector, CodeRegistry) {
        let mut code = CodeRegistry::new();
        let st = code.instr("app::bump_counter", InstrKind::Store, Width::W8);
        let rmw = code.atomic_instr("app::lock_word", InstrKind::Rmw, Width::W4);
        let mut d = FalseSharingDetector::new(
            PerfConfig {
                period: 10,
                skid_every: 0,
                ..Default::default()
            },
            vec![(VAddr::new(0x10000), 0x10000)],
        );
        // A falsely shared line: two threads, disjoint words.
        for i in 0..20 {
            d.ingest(
                &[PebsRecord {
                    tid: Tid(i % 2),
                    pc: st,
                    vaddr: VAddr::new(0x10000 + (i as u64 % 2) * 8),
                }],
                &code,
            );
        }
        // A truly shared line: both threads RMW the same word.
        for i in 0..10 {
            d.ingest(
                &[PebsRecord {
                    tid: Tid(i % 2),
                    pc: rmw,
                    vaddr: VAddr::new(0x10040),
                }],
                &code,
            );
        }
        (d, code)
    }

    #[test]
    fn report_orders_and_classifies_lines() {
        let (d, code) = build_detector();
        let r = ContentionReport::build(&d, &code, 10);
        assert_eq!(r.lines.len(), 2);
        assert!(r.lines[0].total_events >= r.lines[1].total_events);
        let kinds: Vec<SharingKind> = r.lines.iter().map(|l| l.kind).collect();
        assert!(kinds.contains(&SharingKind::FalseSharing));
        assert!(kinds.contains(&SharingKind::TrueSharing));
        assert!(r.false_sharing_events > 0.0);
        assert!(r.true_sharing_events > 0.0);
    }

    #[test]
    fn report_symbolizes_pcs() {
        let (d, code) = build_detector();
        let r = ContentionReport::build(&d, &code, 10);
        let fs_line = r
            .lines
            .iter()
            .find(|l| l.kind == SharingKind::FalseSharing)
            .unwrap();
        assert_eq!(fs_line.top_symbols[0].0, "app::bump_counter");
    }

    #[test]
    fn masks_render_byte_roles() {
        let (d, code) = build_detector();
        let r = ContentionReport::build(&d, &code, 10);
        let fs_line = r
            .lines
            .iter()
            .find(|l| l.kind == SharingKind::FalseSharing)
            .unwrap();
        let (_, mask0) = &fs_line.masks[0];
        assert!(
            mask0.starts_with("wwwwwwww"),
            "thread 0 wrote bytes 0-8: {mask0}"
        );
        assert!(mask0[8..].chars().all(|c| c == '.'));
    }

    #[test]
    fn speedup_prediction_is_sane() {
        let (d, code) = build_detector();
        let r = ContentionReport::build(&d, &code, 10);
        // All FS stalls ≈ half the runtime → predicted ≈ 2x.
        let penalty_events = r.false_sharing_events;
        let lat = LatencyModel::haswell();
        let stall = penalty_events
            * (lat.hitm + lat.hitm_queuing_step * lat.hitm_queuing_cap / 2 - lat.local_hit) as f64;
        let run = stall as u64; // stall/2 of the run → predicted 2x
        let pred = r.predict_manual_speedup(run, 1);
        assert!((1.8..2.2).contains(&pred), "{pred}");
        // No FS events → 1.0x.
        let empty = ContentionReport::default();
        assert_eq!(empty.predict_manual_speedup(1000, 4), 1.0);
    }

    #[test]
    fn render_contains_key_fields() {
        let (d, code) = build_detector();
        let r = ContentionReport::build(&d, &code, 10);
        let text = r.render();
        assert!(text.contains("FalseSharing"));
        assert!(text.contains("app::bump_counter"));
        assert!(text.contains("0x10000"));
    }
}
