#![warn(missing_docs)]

//! # tmi — Thread Memory Isolation for false-sharing repair
//!
//! A faithful reproduction of the TMI runtime system (DeLozier, Eizenberg,
//! Hu, Pokam & Devietti, *"TMI: Thread Memory Isolation for False Sharing
//! Repair"*, MICRO-50, 2017), built on the simulated hardware/OS substrate
//! of this workspace.
//!
//! TMI combats cache-line oversharing entirely from userspace:
//!
//! 1. **Low-overhead detection** ([`detect`]): PEBS-style HITM samples are
//!    disassembled and aggregated per cache line; per-thread byte masks
//!    distinguish false sharing (disjoint bytes) from true sharing.
//! 2. **Making running threads into processes** ([`repair`]): on a
//!    threshold crossing, every thread is converted into a process (an
//!    injected `fork()`), giving each a privately remappable page table
//!    while all memory stays shared through a common memory object.
//! 3. **Targeted page protection** ([`repair`], [`twins`]): only the
//!    incriminated pages become read-only copy-on-write; writes buffer in
//!    private page copies (a page-twinning store buffer) that are
//!    byte-diffed against twin snapshots and merged back at every
//!    synchronization operation.
//! 4. **Code-centric consistency** ([`consistency`]): the PTSB is used
//!    only where the active code region's memory model permits it —
//!    regular C/C++ freely, relaxed atomics via the shared mapping without
//!    flushes, ordering atomics and inline assembly with a flush and
//!    shared-memory semantics.
//!
//! The entry point is [`TmiRuntime`], a [`tmi_sim::RuntimeHooks`]
//! implementation; plug it into a [`tmi_sim::Engine`] and run any
//! [`tmi_program::ThreadProgram`] workload under it. The `tmi-bench` crate
//! contains the experiment harnesses reproducing every table and figure of
//! the paper's evaluation.

pub mod config;
pub mod consistency;
pub mod detect;
pub mod layout;
pub mod locks;
pub mod memstats;
pub mod repair;
pub mod report;
pub mod runtime;
pub mod twins;

pub use config::{CommitCostModel, TmiConfig};
pub use detect::{FalseSharingDetector, LineProfile, SharingKind, SharingReport};
pub use layout::AppLayout;
pub use locks::LockRedirector;
pub use memstats::MemoryBreakdown;
pub use repair::{GovernorState, RepairManager, RepairStats};
pub use report::{ContentionReport, LineReport};
pub use runtime::{RuntimeView, TmiRuntime, TmiStats};
pub use twins::{PageCommit, TwinStore};
