//! The repair manager: thread-to-process conversion and targeted page
//! protection (§3.2, §3.3), hardened into a self-healing governor.
//!
//! Every kernel call on the repair path can fail — `fork` vetoed, out of
//! frames, a transient `mprotect` fault — and the governor's job is to keep
//! the *application* correct regardless. Its invariant is simple:
//!
//! 1. An **extra or early** PTSB commit is always safe (the litmus programs
//!    are data-race-free at page granularity, so publishing buffered bytes
//!    sooner only narrows the window in which they are private).
//! 2. **Losing** a buffered byte is never safe.
//!
//! So every failure path first flushes what is buffered and only then gives
//! pages back to shared memory. Transient failures get bounded
//! retry-with-backoff in simulated cycles; persistent failures degrade a
//! single page ([`RepairManager::degrade_page`]) or dismantle repair
//! entirely — rollback on fork exhaustion ([`GovernorState::Aborted`]) and
//! efficacy-driven revert ([`GovernorState::Reverted`]). The rollback
//! machinery itself ([`tmi_os::Kernel::unprotect_page`],
//! [`tmi_os::Kernel::rejoin_thread`]) deliberately carries no fault points:
//! the governor must always be able to hand memory back.

use std::collections::BTreeSet;

use tmi_faultpoint::{FaultInjector, FaultPoint};
use tmi_machine::addr::FRAMES_PER_HUGE_PAGE;
use tmi_machine::Vpn;
use tmi_os::{AsId, OsError, Pid, Tid};
use tmi_sim::EngineCtl;
use tmi_telemetry::{MetricSink, MetricSource, Phase, Tracer, GLOBAL_TID};

use crate::config::TmiConfig;
use crate::layout::AppLayout;
use crate::twins::TwinStore;

/// Lifecycle of the repair governor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GovernorState {
    /// Never triggered.
    #[default]
    Inactive,
    /// Threads are processes, pages may be armed.
    Active,
    /// Repair was rolled back after persistent fork/COW failure; the run
    /// continues in shared-memory mode and repair will not re-trigger.
    Aborted,
    /// Repair was undone by the efficacy monitor (commit overhead exceeded
    /// the configured threshold); the run continues in shared-memory mode.
    Reverted,
}

/// Repair bookkeeping for Table 3 and the EXPERIMENTS report.
#[derive(Clone, Debug, Default)]
pub struct RepairStats {
    /// Cycle at which threads were converted to processes (detection
    /// latency: the "Unrepaired" column of Table 3).
    pub converted_at_cycle: Option<u64>,
    /// Total cycles charged for the stop-the-world conversion (the T2P
    /// column of Table 3).
    pub t2p_cycles: u64,
    /// Number of repair rounds (each may add pages).
    pub repair_rounds: u64,
    /// PTSB commit events (the Commits/s column of Table 3 divides this by
    /// runtime).
    pub commits: u64,
    /// Pages committed across all commits.
    pub committed_pages: u64,
    /// Cycles spent in commits.
    pub commit_cycles: u64,
    /// Bytes merged into shared memory.
    pub bytes_merged: u64,
    /// Retries of transiently-failed repair-path operations (fork, COW
    /// arming, twin snapshots, engine-level fault handling).
    pub retries: u64,
    /// Operations that succeeded after at least one retry.
    pub transient_recoveries: u64,
    /// Full rollbacks after persistent conversion failure (`RepairAborted`).
    pub rollbacks: u64,
    /// Pages given back to shared memory because arming, twinning or
    /// re-arming them failed persistently.
    pub pages_degraded: u64,
    /// Full reverts driven by the repair-efficacy monitor.
    pub efficacy_reverts: u64,
}

impl MetricSource for RepairStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.u64("converted", u64::from(self.converted_at_cycle.is_some()));
        out.u64("converted_at_cycle", self.converted_at_cycle.unwrap_or(0));
        out.u64("t2p_cycles", self.t2p_cycles);
        out.u64("repair_rounds", self.repair_rounds);
        out.u64("commits", self.commits);
        out.u64("committed_pages", self.committed_pages);
        out.u64("commit_cycles", self.commit_cycles);
        out.u64("bytes_merged", self.bytes_merged);
        out.u64("retries", self.retries);
        out.u64("transient_recoveries", self.transient_recoveries);
        out.u64("rollbacks", self.rollbacks);
        out.u64("pages_degraded", self.pages_degraded);
        out.u64("efficacy_reverts", self.efficacy_reverts);
    }
}

/// Converts threads into processes on demand and arms the PTSB on exactly
/// the pages the detector incriminated.
#[derive(Debug, Default)]
pub struct RepairManager {
    state: GovernorState,
    protected: BTreeSet<Vpn>,
    twins: TwinStore,
    stats: RepairStats,
    /// `(tid, original pid)` for every thread we isolated, so rollback and
    /// revert can rejoin them.
    converted: Vec<(Tid, Pid)>,
    faults: Option<FaultInjector>,
    /// Telemetry event bus; disabled (a no-op) unless a run opts in.
    tracer: Tracer,
}

impl MetricSource for RepairManager {
    fn metrics(&self, out: &mut MetricSink) {
        self.stats.metrics(out);
        out.u64("governor_state", self.state as u64);
        out.u64("protected_pages", self.protected.len() as u64);
        out.u64("twin_current_bytes", self.twins.current_bytes());
        out.u64("twin_peak_bytes", self.twins.peak_bytes());
    }
}

impl RepairManager {
    /// Creates an inactive manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a fault injector driving the twin-snapshot fault point.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = Some(faults);
    }

    /// Installs a telemetry tracer (usually a clone of the runtime's, via
    /// [`crate::TmiRuntime::set_tracer`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Governor lifecycle state.
    pub fn state(&self) -> GovernorState {
        self.state
    }

    /// True while repair is in force (threads are processes).
    pub fn active(&self) -> bool {
        self.state == GovernorState::Active
    }

    /// True if `vpn` is PTSB-armed.
    pub fn is_protected(&self, vpn: Vpn) -> bool {
        self.protected.contains(&vpn)
    }

    /// Number of protected pages.
    pub fn protected_pages(&self) -> usize {
        self.protected.len()
    }

    /// Repair statistics.
    pub fn stats(&self) -> &RepairStats {
        &self.stats
    }

    /// The twin store (for memory accounting).
    pub fn twins(&self) -> &TwinStore {
        &self.twins
    }

    /// Triggers (or extends) repair: on the first call, stops the world
    /// and converts every application thread into a process via injected
    /// `fork()` (§3.2); then arms copy-on-write protection for `pages` in
    /// every process (§3.3). Pages in huge-page mappings are expanded to
    /// whole 2 MiB chunks.
    ///
    /// Transient conversion/arming failures are retried with backoff; a
    /// persistent conversion failure rolls the whole repair back
    /// ([`GovernorState::Aborted`]) and a persistent arming failure leaves
    /// just that page in shared mode. After an abort or revert the governor
    /// stays down: re-triggering is a no-op.
    pub fn trigger(
        &mut self,
        ctl: &mut dyn EngineCtl,
        cfg: &TmiConfig,
        layout: &AppLayout,
        pages: &[Vpn],
    ) {
        if matches!(self.state, GovernorState::Aborted | GovernorState::Reverted) {
            return;
        }
        let tids: Vec<Tid> = ctl.tids();
        if self.state == GovernorState::Inactive {
            self.state = GovernorState::Active;
            self.stats.converted_at_cycle = Some(ctl.now());
            self.tracer.instant(
                "tmi.repair.trigger",
                "repair",
                GLOBAL_TID,
                ctl.now(),
                &[("pages", pages.len() as u64)],
            );
            for &tid in &tids {
                if self.convert_retrying(ctl, tid, cfg).is_err() {
                    // Persistent fork veto: the paper's ptrace-inject
                    // failure analogue. Put every already-isolated thread
                    // back and run on in shared-memory mode.
                    self.rollback(ctl, cfg, layout);
                    return;
                }
                self.tracer.instant(
                    "tmi.repair.fork",
                    "repair",
                    u64::from(tid.0),
                    ctl.now(),
                    &[],
                );
            }
            let cost = cfg.stop_world_cycles + cfg.t2p_cycles_per_thread * tids.len() as u64;
            self.stats.t2p_cycles = cost;
            ctl.add_cycles_all(cost);
            self.tracer.span(
                "tmi.repair.t2p",
                "repair",
                GLOBAL_TID,
                ctl.now(),
                cost,
                &[("threads", tids.len() as u64)],
            );
            self.tracer.phase(Phase::Arm, cost);
        }
        self.stats.repair_rounds += 1;

        let mut targets: BTreeSet<Vpn> = BTreeSet::new();
        for &vpn in pages {
            if layout.huge_pages {
                let base = vpn.huge_base();
                for i in 0..FRAMES_PER_HUGE_PAGE {
                    targets.insert(Vpn(base.0 + i));
                }
            } else {
                targets.insert(vpn);
            }
        }
        for vpn in targets {
            if self.protected.contains(&vpn) {
                continue;
            }
            let mut armed: Vec<AsId> = Vec::new();
            let mut failed = false;
            for &tid in &tids {
                let aspace = ctl.kernel().thread_aspace(tid);
                if armed.contains(&aspace) {
                    continue;
                }
                match self.protect_retrying(ctl, tid, aspace, vpn, cfg) {
                    Ok(()) => armed.push(aspace),
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                // A page armed in some processes but not all would buffer
                // writes asymmetrically; give it back everywhere instead.
                for aspace in armed {
                    let _ = ctl.kernel().unprotect_page(aspace, vpn);
                }
                self.stats.pages_degraded += 1;
                self.tracer.instant(
                    "tmi.repair.degrade_page",
                    "repair",
                    GLOBAL_TID,
                    ctl.now(),
                    &[("vpn", vpn.0)],
                );
            } else {
                self.protected.insert(vpn);
                self.tracer.instant(
                    "tmi.repair.arm_page",
                    "repair",
                    GLOBAL_TID,
                    ctl.now(),
                    &[("vpn", vpn.0)],
                );
            }
        }
    }

    /// Records the twin for a page that just COW-broke, if we armed it.
    /// `first` and `pages` come from the fault resolution (512 for a huge
    /// break).
    ///
    /// A twin snapshot is an allocation and can fail (injected); on
    /// persistent failure the page is degraded to shared mode, which is
    /// safe because the just-broken private copy is still byte-identical
    /// to shared memory — nothing has been buffered yet.
    pub fn on_cow(
        &mut self,
        ctl: &mut dyn EngineCtl,
        tid: Tid,
        first: Vpn,
        pages: u64,
        cfg: &TmiConfig,
        layout: &AppLayout,
    ) {
        let aspace = ctl.kernel().thread_aspace(tid);
        for i in 0..pages {
            let vpn = Vpn(first.0 + i);
            if !self.protected.contains(&vpn) {
                continue;
            }
            let mut attempt = 0u32;
            loop {
                let fail = self
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.should_fail(FaultPoint::TwinAlloc));
                if !fail {
                    self.twins.snapshot(ctl.kernel(), aspace, vpn);
                    self.tracer.instant(
                        "tmi.repair.twin",
                        "repair",
                        u64::from(tid.0),
                        ctl.now(),
                        &[("vpn", vpn.0)],
                    );
                    if attempt > 0 {
                        self.stats.transient_recoveries += 1;
                    }
                    break;
                }
                if attempt < cfg.repair_retry_limit {
                    attempt += 1;
                    self.stats.retries += 1;
                    let backoff = cfg.retry_backoff(attempt);
                    ctl.add_cycles(tid, backoff);
                    self.tracer.phase(Phase::FaultHandling, backoff);
                } else {
                    self.degrade_page(ctl, cfg, layout, vpn);
                    break;
                }
            }
        }
    }

    /// Converts one thread, retrying transient failures with backoff.
    /// Records the original pid so rollback/revert can rejoin.
    fn convert_retrying(
        &mut self,
        ctl: &mut dyn EngineCtl,
        tid: Tid,
        cfg: &TmiConfig,
    ) -> Result<(), OsError> {
        let old_pid = ctl.kernel().thread(tid).pid;
        let mut attempt = 0u32;
        loop {
            match ctl.kernel().convert_thread_to_process(tid) {
                Ok(_) => {
                    self.converted.push((tid, old_pid));
                    if attempt > 0 {
                        self.stats.transient_recoveries += 1;
                    }
                    return Ok(());
                }
                // The root process keeps its (unscheduled) main thread, so
                // every worker can convert; a sole-thread error means the
                // workload had one thread and conversion is moot.
                Err(OsError::AlreadyConverted { .. }) => return Ok(()),
                Err(e) if e.is_transient() && attempt < cfg.repair_retry_limit => {
                    attempt += 1;
                    self.stats.retries += 1;
                    let backoff = cfg.retry_backoff(attempt);
                    ctl.add_cycles(tid, backoff);
                    self.tracer.phase(Phase::Arm, backoff);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Arms COW protection for one page in one address space, retrying
    /// transient failures with backoff (charged to `tid`).
    fn protect_retrying(
        &mut self,
        ctl: &mut dyn EngineCtl,
        tid: Tid,
        aspace: AsId,
        vpn: Vpn,
        cfg: &TmiConfig,
    ) -> Result<(), OsError> {
        let mut attempt = 0u32;
        loop {
            match ctl.kernel().protect_page_cow(aspace, vpn) {
                Ok(()) => {
                    if attempt > 0 {
                        self.stats.transient_recoveries += 1;
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() && attempt < cfg.repair_retry_limit => {
                    attempt += 1;
                    self.stats.retries += 1;
                    let backoff = cfg.retry_backoff(attempt);
                    ctl.add_cycles(tid, backoff);
                    self.tracer.phase(Phase::Arm, backoff);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Gives one page back to shared memory in every process: commits its
    /// dirty twins first (losing a buffered byte is never safe), then
    /// unprotects it everywhere and forgets it. Used when arming,
    /// twinning or re-arming the page fails persistently.
    pub fn degrade_page(
        &mut self,
        ctl: &mut dyn EngineCtl,
        cfg: &TmiConfig,
        layout: &AppLayout,
        vpn: Vpn,
    ) {
        if !self.protected.remove(&vpn) {
            return;
        }
        self.tracer.instant(
            "tmi.repair.degrade_page",
            "repair",
            GLOBAL_TID,
            ctl.now(),
            &[("vpn", vpn.0)],
        );
        let tids = ctl.tids();
        let mut seen: Vec<AsId> = Vec::new();
        for &tid in &tids {
            let aspace = ctl.kernel().thread_aspace(tid);
            if seen.contains(&aspace) {
                continue;
            }
            seen.push(aspace);
            if self.twins.has_twin(aspace, vpn) {
                match self.twins.commit_page(
                    ctl.kernel(),
                    aspace,
                    vpn,
                    &cfg.commit,
                    layout.huge_pages,
                ) {
                    Ok(pc) => {
                        self.stats.committed_pages += 1;
                        self.stats.bytes_merged += pc.bytes_merged;
                        self.stats.commit_cycles += pc.cycles;
                        ctl.add_cycles(tid, pc.cycles);
                        self.tracer.phase(Phase::Merge, pc.cycles);
                    }
                    Err(_) => {
                        // Twin without a private frame: nothing buffered.
                        self.twins.discard_page(aspace, vpn);
                    }
                }
            }
            // Fault-point-free: the governor can always hand pages back.
            let _ = ctl.kernel().unprotect_page(aspace, vpn);
        }
        self.stats.pages_degraded += 1;
    }

    /// Undoes repair entirely: flushes every buffered page, unprotects
    /// everything, rejoins isolated threads into their original processes.
    fn dismantle(&mut self, ctl: &mut dyn EngineCtl, cfg: &TmiConfig, layout: &AppLayout) {
        let tids = ctl.tids();
        // Flush first — an early commit is always safe, a lost byte never.
        for &tid in &tids {
            let cycles = self.commit_thread(ctl, tid, cfg, layout);
            ctl.add_cycles(tid, cycles);
        }
        let mut aspaces: Vec<AsId> = Vec::new();
        for &tid in &tids {
            let a = ctl.kernel().thread_aspace(tid);
            if !aspaces.contains(&a) {
                aspaces.push(a);
            }
        }
        for &vpn in &std::mem::take(&mut self.protected) {
            for &a in &aspaces {
                let _ = ctl.kernel().unprotect_page(a, vpn);
            }
        }
        // Safety net: no twin may survive the flush above.
        for &a in &aspaces {
            self.twins.discard_aspace(a);
        }
        for (tid, pid) in std::mem::take(&mut self.converted) {
            let _ = ctl.kernel().rejoin_thread(tid, pid);
        }
    }

    /// Rolls repair back after a persistent conversion failure.
    fn rollback(&mut self, ctl: &mut dyn EngineCtl, cfg: &TmiConfig, layout: &AppLayout) {
        self.dismantle(ctl, cfg, layout);
        self.state = GovernorState::Aborted;
        self.stats.rollbacks += 1;
        ctl.add_cycles_all(cfg.stop_world_cycles);
        self.tracer
            .instant("tmi.repair.rollback", "repair", GLOBAL_TID, ctl.now(), &[]);
        self.tracer.phase(Phase::Merge, cfg.stop_world_cycles);
    }

    /// Reverts an active repair because its commit overhead exceeded the
    /// efficacy threshold. No-op unless the governor is
    /// [`GovernorState::Active`].
    pub fn revert(&mut self, ctl: &mut dyn EngineCtl, cfg: &TmiConfig, layout: &AppLayout) {
        if self.state != GovernorState::Active {
            return;
        }
        self.dismantle(ctl, cfg, layout);
        self.state = GovernorState::Reverted;
        self.stats.efficacy_reverts += 1;
        ctl.add_cycles_all(cfg.stop_world_cycles);
        self.tracer
            .instant("tmi.repair.revert", "repair", GLOBAL_TID, ctl.now(), &[]);
        self.tracer.phase(Phase::Merge, cfg.stop_world_cycles);
    }

    /// Accounts one engine-level retry of a transiently-failed fault
    /// (charged by the engine via the backoff return of `on_fault_error`).
    pub fn note_retry(&mut self) {
        self.stats.retries += 1;
    }

    /// Accounts an engine-level fault that succeeded after retrying.
    pub fn note_recovery(&mut self) {
        self.stats.transient_recoveries += 1;
    }

    /// True if `tid`'s process has buffered (uncommitted) pages.
    pub fn has_dirty(&self, ctl: &mut dyn EngineCtl, tid: Tid) -> bool {
        let aspace = ctl.kernel().thread_aspace(tid);
        self.twins.has_dirty(aspace)
    }

    /// Commits every dirty page of `tid`'s process: the PTSB flush at a
    /// synchronization operation. Returns the cycles it cost.
    pub fn commit_thread(
        &mut self,
        ctl: &mut dyn EngineCtl,
        tid: Tid,
        cfg: &TmiConfig,
        layout: &AppLayout,
    ) -> u64 {
        let aspace = ctl.kernel().thread_aspace(tid);
        let dirty = self.twins.dirty_pages(aspace);
        if dirty.is_empty() {
            return 0;
        }
        let commit_start = ctl.now();
        let mut pages_this_commit = 0u64;
        let mut cycles = 0;
        let mut degrade: Vec<Vpn> = Vec::new();
        for vpn in dirty {
            match self
                .twins
                .commit_page(ctl.kernel(), aspace, vpn, &cfg.commit, layout.huge_pages)
            {
                Ok(pc) => {
                    cycles += pc.cycles;
                    self.stats.bytes_merged += pc.bytes_merged;
                    self.stats.committed_pages += 1;
                    pages_this_commit += 1;
                    if !pc.rearmed {
                        // The merge landed but the re-protect faulted;
                        // retry the arming, degrading the page if the
                        // failure is persistent.
                        if self.protect_retrying(ctl, tid, aspace, vpn, cfg).is_err() {
                            degrade.push(vpn);
                        }
                    }
                }
                Err(_) => {
                    // Twin without a private frame cannot arise from the
                    // engine's fault path; drop it rather than buffer it
                    // forever.
                    self.twins.discard_page(aspace, vpn);
                }
            }
        }
        for vpn in degrade {
            self.degrade_page(ctl, cfg, layout, vpn);
        }
        self.stats.commits += 1;
        self.stats.commit_cycles += cycles;
        self.tracer.span(
            "tmi.repair.commit",
            "repair",
            u64::from(tid.0),
            commit_start,
            cycles,
            &[("pages", pages_this_commit)],
        );
        self.tracer.phase(Phase::Commit, cycles);
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmi_machine::{VAddr, Width, FRAME_SIZE};
    use tmi_os::{Kernel, MapRequest, ObjId};
    use tmi_program::CodeRegistry;

    /// A minimal EngineCtl for unit-testing the manager without a full
    /// engine.
    struct FakeCtl {
        kernel: Kernel,
        tids: Vec<Tid>,
        code: CodeRegistry,
        cycles_added: u64,
    }

    impl EngineCtl for FakeCtl {
        fn kernel(&mut self) -> &mut Kernel {
            &mut self.kernel
        }
        fn tids(&self) -> Vec<Tid> {
            self.tids.clone()
        }
        fn add_cycles(&mut self, _tid: Tid, cycles: u64) {
            self.cycles_added += cycles;
        }
        fn add_cycles_all(&mut self, cycles: u64) {
            self.cycles_added += cycles;
        }
        fn now(&self) -> u64 {
            12345
        }
        fn code(&self) -> &CodeRegistry {
            &self.code
        }
    }

    fn setup(threads: usize) -> (FakeCtl, AppLayout) {
        let mut kernel = Kernel::new();
        let obj = kernel.create_object(16 * FRAME_SIZE);
        let internal = kernel.create_object(FRAME_SIZE);
        let aspace = kernel.create_aspace();
        let base = VAddr::new(0x10000);
        kernel
            .map(aspace, MapRequest::object(base, 16 * FRAME_SIZE, obj, 0))
            .unwrap();
        kernel
            .map(
                aspace,
                MapRequest::object(VAddr::new(0x80_0000), FRAME_SIZE, internal, 0),
            )
            .unwrap();
        let (pid, _main) = kernel.create_process(aspace);
        let tids: Vec<Tid> = (0..threads).map(|_| kernel.spawn_thread(pid)).collect();
        let layout = AppLayout {
            app_obj: obj,
            app_start: base,
            app_len: 16 * FRAME_SIZE,
            internal_obj: ObjId(1),
            internal_start: VAddr::new(0x80_0000),
            internal_len: FRAME_SIZE,
            huge_pages: false,
        };
        (
            FakeCtl {
                kernel,
                tids,
                code: CodeRegistry::new(),
                cycles_added: 0,
            },
            layout,
        )
    }

    #[test]
    fn trigger_converts_threads_and_protects_pages() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        let hot = VAddr::new(0x10000).vpn();
        rm.trigger(&mut ctl, &cfg, &layout, &[hot]);

        assert!(rm.active());
        assert!(rm.is_protected(hot));
        assert_eq!(ctl.kernel.stats().conversions, 2);
        assert!(ctl.cycles_added >= cfg.t2p_cycles_per_thread * 2);
        // Both processes have the page armed.
        let tids = ctl.tids();
        for tid in tids {
            let a = ctl.kernel.thread_aspace(tid);
            assert!(ctl.kernel.translate(a, hot.base(), true).is_err());
        }
        assert_eq!(rm.stats().converted_at_cycle, Some(12345));
    }

    #[test]
    fn second_trigger_only_adds_pages() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        rm.trigger(&mut ctl, &cfg, &layout, &[VAddr::new(0x10000).vpn()]);
        let conversions = ctl.kernel.stats().conversions;
        rm.trigger(&mut ctl, &cfg, &layout, &[VAddr::new(0x11000).vpn()]);
        assert_eq!(ctl.kernel.stats().conversions, conversions, "no re-convert");
        assert_eq!(rm.protected_pages(), 2);
        assert_eq!(rm.stats().repair_rounds, 2);
    }

    #[test]
    fn cow_snapshot_and_commit_roundtrip() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        let base = VAddr::new(0x10000);
        ctl.kernel
            .force_write(ctl.tids[0].into_aspace(&ctl.kernel), base, Width::W8, 1)
            .unwrap();
        rm.trigger(&mut ctl, &cfg, &layout, &[base.vpn()]);

        let t0 = ctl.tids[0];
        let a0 = ctl.kernel.thread_aspace(t0);
        // Simulate the engine's fault path: break COW, notify, write.
        ctl.kernel.handle_fault(a0, base, true).unwrap();
        rm.on_cow(&mut ctl, t0, base.vpn(), 1, &cfg, &layout);
        assert!(rm.has_dirty(&mut ctl, t0));
        ctl.kernel.force_write(a0, base, Width::W8, 42).unwrap();

        let cycles = rm.commit_thread(&mut ctl, t0, &cfg, &layout);
        assert!(cycles > 0);
        assert!(!rm.has_dirty(&mut ctl, t0));
        assert_eq!(rm.stats().commits, 1);
        assert!(rm.stats().bytes_merged >= 1);
        // The other process sees the committed value through shared memory.
        let t1 = ctl.tids[1];
        let a1 = ctl.kernel.thread_aspace(t1);
        assert_eq!(ctl.kernel.force_read(a1, base, Width::W8).unwrap(), 42);
    }

    #[test]
    fn commit_without_dirty_pages_is_free() {
        let (mut ctl, layout) = setup(1);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        let t0 = ctl.tids[0];
        assert_eq!(rm.commit_thread(&mut ctl, t0, &cfg, &layout), 0);
        assert_eq!(rm.stats().commits, 0);
    }

    // ------------------------------------------------------------------
    // Governor state machine under scripted fault schedules.
    // ------------------------------------------------------------------

    use crate::runtime::TmiRuntime;
    use tmi_faultpoint::{FaultPlan, PointPlan};
    use tmi_sim::{RuntimeHooks, SyncEvent};

    /// Installs one scripted injector on both the kernel (fork, mprotect,
    /// frame-alloc points) and the manager (twin-snapshot point).
    fn inject(ctl: &mut FakeCtl, rm: &mut RepairManager, plan: FaultPlan) -> FaultInjector {
        let inj = FaultInjector::new(plan);
        ctl.kernel.set_fault_injector(inj.clone());
        rm.set_fault_injector(inj.clone());
        inj
    }

    #[test]
    fn fork_transient_failure_retries_then_succeeds() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        // Fork roll 1 (thread 0) succeeds, roll 2 (thread 1) fails once,
        // roll 3 (thread 1's retry) succeeds.
        let inj = inject(
            &mut ctl,
            &mut rm,
            FaultPlan::quiet().with(FaultPoint::Fork, PointPlan::transient(2, 1)),
        );
        rm.trigger(&mut ctl, &cfg, &layout, &[VAddr::new(0x10000).vpn()]);

        assert_eq!(rm.state(), GovernorState::Active);
        assert_eq!(ctl.kernel.stats().conversions, 2);
        assert_eq!(rm.stats().retries, 1);
        assert_eq!(rm.stats().transient_recoveries, 1);
        assert_eq!(rm.stats().rollbacks, 0);
        assert_eq!(inj.stats().get(FaultPoint::Fork).fired, 1);
        // The backoff was charged in simulated cycles.
        assert!(ctl.cycles_added >= cfg.retry_backoff(1));
    }

    #[test]
    fn fork_exhaustion_rolls_back_and_governor_stays_down() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        let base = VAddr::new(0x10000);
        let t0 = ctl.tids[0];
        let home_pid = ctl.kernel.thread(t0).pid;
        let home_aspace = ctl.kernel.thread_aspace(t0);
        ctl.kernel
            .force_write(home_aspace, base, Width::W8, 1)
            .unwrap();
        let frames_before = ctl.kernel.physmem().allocated_frames();
        // Fork works once (thread 0), then latches persistent: thread 1's
        // conversion exhausts its retry budget and the governor rolls back.
        inject(
            &mut ctl,
            &mut rm,
            FaultPlan::quiet().with(FaultPoint::Fork, PointPlan::persistent_after(2, 1)),
        );
        rm.trigger(&mut ctl, &cfg, &layout, &[base.vpn()]);

        assert_eq!(rm.state(), GovernorState::Aborted);
        assert!(!rm.active());
        assert_eq!(rm.stats().rollbacks, 1);
        assert_eq!(rm.stats().retries, cfg.repair_retry_limit as u64);
        assert_eq!(
            rm.protected_pages(),
            0,
            "no page stays armed after rollback"
        );
        // The one converted thread was rejoined into its original process.
        assert_eq!(ctl.kernel.stats().conversions, 1);
        assert_eq!(ctl.kernel.stats().rejoins, 1);
        assert_eq!(ctl.kernel.thread(t0).pid, home_pid);
        assert_eq!(ctl.kernel.thread_aspace(t0), home_aspace);
        // Every frame the aborted repair touched came back.
        assert_eq!(ctl.kernel.physmem().allocated_frames(), frames_before);

        // Double trigger: after an abort the governor stays down.
        rm.trigger(&mut ctl, &cfg, &layout, &[VAddr::new(0x11000).vpn()]);
        assert_eq!(rm.state(), GovernorState::Aborted);
        assert_eq!(rm.stats().repair_rounds, 0);
        assert_eq!(ctl.kernel.stats().conversions, 1, "no further conversions");
        assert_eq!(rm.protected_pages(), 0);
        assert_eq!(rm.stats().rollbacks, 1, "re-trigger does not re-roll-back");
    }

    #[test]
    fn persistent_arming_failure_degrades_the_page() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        let hot = VAddr::new(0x10000).vpn();
        let root = ctl.kernel.thread_aspace(ctl.tids[0]);
        ctl.kernel
            .force_write(root, hot.base(), Width::W8, 1)
            .unwrap();
        // mprotect fails on every roll: the page can never be armed.
        inject(
            &mut ctl,
            &mut rm,
            FaultPlan::quiet().with(FaultPoint::ProtectPage, PointPlan::persistent_after(1, 1)),
        );
        rm.trigger(&mut ctl, &cfg, &layout, &[hot]);

        // Conversion still succeeded; only the page degraded to shared mode.
        assert_eq!(rm.state(), GovernorState::Active);
        assert_eq!(ctl.kernel.stats().conversions, 2);
        assert!(!rm.is_protected(hot));
        assert_eq!(rm.protected_pages(), 0);
        assert_eq!(rm.stats().pages_degraded, 1);
        assert_eq!(rm.stats().retries, cfg.repair_retry_limit as u64);
        // Writes through the unarmed page reach shared memory directly.
        let a0 = ctl.kernel.thread_aspace(ctl.tids[0]);
        let a1 = ctl.kernel.thread_aspace(ctl.tids[1]);
        ctl.kernel
            .force_write(a0, hot.base(), Width::W8, 7)
            .unwrap();
        assert_eq!(ctl.kernel.force_read(a1, hot.base(), Width::W8).unwrap(), 7);
    }

    #[test]
    fn persistent_twin_failure_degrades_on_cow() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        let base = VAddr::new(0x10000);
        let root = ctl.kernel.thread_aspace(ctl.tids[0]);
        ctl.kernel.force_write(root, base, Width::W8, 1).unwrap();
        inject(
            &mut ctl,
            &mut rm,
            FaultPlan::quiet().with(FaultPoint::TwinAlloc, PointPlan::persistent_after(1, 1)),
        );
        rm.trigger(&mut ctl, &cfg, &layout, &[base.vpn()]);
        let frames_armed = ctl.kernel.physmem().allocated_frames();

        let t0 = ctl.tids[0];
        let a0 = ctl.kernel.thread_aspace(t0);
        ctl.kernel.handle_fault(a0, base, true).unwrap();
        rm.on_cow(&mut ctl, t0, base.vpn(), 1, &cfg, &layout);

        // No twin could be taken, so the page degraded to shared mode —
        // safe, because the private copy held nothing buffered yet.
        assert_eq!(rm.state(), GovernorState::Active);
        assert!(!rm.is_protected(base.vpn()));
        assert_eq!(rm.stats().pages_degraded, 1);
        assert_eq!(rm.stats().retries, cfg.repair_retry_limit as u64);
        assert_eq!(rm.twins().current_bytes(), 0);
        assert!(!rm.has_dirty(&mut ctl, t0));
        // The orphaned private frame was freed with the degrade.
        assert_eq!(ctl.kernel.physmem().allocated_frames(), frames_armed);
        // Writes are immediately globally visible again.
        ctl.kernel.force_write(a0, base, Width::W8, 9).unwrap();
        let a1 = ctl.kernel.thread_aspace(ctl.tids[1]);
        assert_eq!(ctl.kernel.force_read(a1, base, Width::W8).unwrap(), 9);
    }

    #[test]
    fn revert_flushes_buffered_bytes_and_returns_all_memory() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        let base = VAddr::new(0x10000);
        let t0 = ctl.tids[0];
        let home_pid = ctl.kernel.thread(t0).pid;
        let home_aspace = ctl.kernel.thread_aspace(t0);
        ctl.kernel
            .force_write(home_aspace, base, Width::W8, 1)
            .unwrap();
        let frames_before = ctl.kernel.physmem().allocated_frames();

        rm.trigger(&mut ctl, &cfg, &layout, &[base.vpn()]);
        let a0 = ctl.kernel.thread_aspace(t0);
        ctl.kernel.handle_fault(a0, base, true).unwrap();
        rm.on_cow(&mut ctl, t0, base.vpn(), 1, &cfg, &layout);
        ctl.kernel.force_write(a0, base, Width::W8, 42).unwrap();
        assert!(rm.has_dirty(&mut ctl, t0));
        assert!(ctl.kernel.physmem().allocated_frames() > frames_before);
        assert!(rm.twins().current_bytes() > 0);

        rm.revert(&mut ctl, &cfg, &layout);

        assert_eq!(rm.state(), GovernorState::Reverted);
        assert_eq!(rm.stats().efficacy_reverts, 1);
        // The buffered byte was committed, not lost.
        assert!(rm.stats().bytes_merged >= 1);
        assert_eq!(
            ctl.kernel.force_read(home_aspace, base, Width::W8).unwrap(),
            42
        );
        // Threads are back in their original process and address space.
        assert_eq!(ctl.kernel.thread(t0).pid, home_pid);
        assert_eq!(ctl.kernel.thread_aspace(t0), home_aspace);
        assert_eq!(ctl.kernel.stats().rejoins, 2);
        // Every private frame and twin buffer came back: counters return
        // to their pre-repair values.
        assert_eq!(rm.protected_pages(), 0);
        assert_eq!(rm.twins().current_bytes(), 0);
        assert_eq!(ctl.kernel.physmem().allocated_frames(), frames_before);

        // Revert is idempotent and the governor stays down for good.
        rm.revert(&mut ctl, &cfg, &layout);
        assert_eq!(rm.stats().efficacy_reverts, 1);
        rm.trigger(&mut ctl, &cfg, &layout, &[base.vpn()]);
        assert_eq!(rm.state(), GovernorState::Reverted);
        assert_eq!(
            ctl.kernel.stats().conversions,
            2,
            "no re-conversion after revert"
        );
    }

    #[test]
    fn efficacy_monitor_reverts_via_on_tick() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig {
            // Any commit overhead at all in a window trips the monitor.
            efficacy_revert_threshold: 0.0,
            ..TmiConfig::default()
        };
        let mut rt = TmiRuntime::new(cfg, layout);
        let base = VAddr::new(0x10000);
        let t0 = ctl.tids[0];
        let root = ctl.kernel.thread_aspace(t0);
        ctl.kernel.force_write(root, base, Width::W8, 1).unwrap();

        rt.force_repair(&mut ctl, &[base.vpn()]);
        assert!(rt.observe().repair().active());
        let a0 = ctl.kernel.thread_aspace(t0);
        let res = ctl.kernel.handle_fault(a0, base, true).unwrap();
        rt.on_fault(&mut ctl, t0, &res);
        ctl.kernel.force_write(a0, base, Width::W8, 42).unwrap();
        // A sync operation flushes the PTSB, accruing commit cycles.
        assert!(rt.on_sync(&mut ctl, t0, SyncEvent::MutexUnlock(base)) > 0);

        rt.on_tick(&mut ctl, 1_000_000);
        assert_eq!(rt.observe().repair().state(), GovernorState::Reverted);
        assert_eq!(rt.observe().repair().stats().efficacy_reverts, 1);
        assert_eq!(ctl.kernel.force_read(root, base, Width::W8).unwrap(), 42);
        // Later ticks are no-ops for the monitor.
        rt.on_tick(&mut ctl, 2_000_000);
        assert_eq!(rt.observe().repair().stats().efficacy_reverts, 1);
    }

    // ------------------------------------------------------------------
    // Governor transitions driven through the VM-op litmus vocabulary
    // (the transistency campaigns' mid-schedule repair forcing).
    // ------------------------------------------------------------------

    use tmi_os::FaultResolution;
    use tmi_program::VmOp;

    #[test]
    fn vm_t2p_denied_by_fork_mid_schedule_rolls_back_byte_for_byte() {
        let (mut ctl, layout) = setup(2);
        let mut rt = TmiRuntime::new(TmiConfig::default(), layout);
        let base = VAddr::new(0x10000);
        let t0 = ctl.tids[0];
        let home_pid = ctl.kernel.thread(t0).pid;
        let home_aspace = ctl.kernel.thread_aspace(t0);
        ctl.kernel
            .force_write(home_aspace, base, Width::W8, 11)
            .unwrap();
        let frames_before = ctl.kernel.physmem().allocated_frames();

        // Every fork is vetoed: the schedule's T2P op exhausts the retry
        // budget mid-conversion and the governor must roll back.
        let inj = FaultInjector::new(
            FaultPlan::quiet().with(FaultPoint::Fork, PointPlan::persistent_after(1, 1)),
        );
        ctl.kernel.set_fault_injector(inj.clone());
        rt.set_fault_injector(inj);

        assert_eq!(
            rt.on_vm_op(&mut ctl, t0, VmOp::T2p, base),
            0,
            "denied conversion reports the page unprotected"
        );
        assert_eq!(rt.observe().repair().state(), GovernorState::Aborted);
        assert_eq!(rt.observe().repair().stats().rollbacks, 1);
        assert_eq!(rt.observe().repair().protected_pages(), 0);
        assert_eq!(rt.observe().repair().twins().current_bytes(), 0);
        assert_eq!(
            ctl.kernel.physmem().allocated_frames(),
            frames_before,
            "aborted conversion must return every frame"
        );
        assert_eq!(ctl.kernel.thread(t0).pid, home_pid);
        assert_eq!(ctl.kernel.thread_aspace(t0), home_aspace);
        assert_eq!(
            ctl.kernel.force_read(home_aspace, base, Width::W8).unwrap(),
            11,
            "pre-repair memory contents survive the rollback byte-for-byte"
        );

        // The rest of the schedule's VM ops land on a downed governor:
        // all benign no-ops (bar the unconditional shootdown), no
        // resurrection, no leaked frames or twins.
        assert_eq!(rt.on_vm_op(&mut ctl, t0, VmOp::Mprotect, base), 0);
        assert_eq!(rt.on_vm_op(&mut ctl, t0, VmOp::TwinCommit, base), 0);
        assert_eq!(rt.on_vm_op(&mut ctl, t0, VmOp::CowBreak, base), 0);
        assert_eq!(rt.on_vm_op(&mut ctl, t0, VmOp::Shootdown, base), 1);
        assert_eq!(rt.observe().repair().state(), GovernorState::Aborted);
        assert_eq!(rt.observe().repair().stats().rollbacks, 1);
        assert_eq!(rt.observe().repair().twins().current_bytes(), 0);
        assert_eq!(ctl.kernel.physmem().allocated_frames(), frames_before);
    }

    #[test]
    fn seeded_fault_plans_leave_vm_schedules_in_consistent_states() {
        // The campaign convention: `FaultPlan::from_seed` schedules drive
        // a fixed VM-op sequence (T2P, COW break + write, commit, second
        // protect round); whatever the governor decides, an aborted run
        // must have restored frame and twin counters byte-for-byte.
        let (mut aborted, mut survived) = (0u32, 0u32);
        for seed in 0..200u64 {
            let (mut ctl, layout) = setup(2);
            let cfg = TmiConfig::default();
            let mut rm = RepairManager::new();
            let base = VAddr::new(0x10000);
            let t0 = ctl.tids[0];
            ctl.kernel
                .force_write(ctl.kernel.thread_aspace(t0), base, Width::W8, 5)
                .unwrap();
            let frames_before = ctl.kernel.physmem().allocated_frames();
            inject(&mut ctl, &mut rm, FaultPlan::from_seed(seed));

            rm.trigger(&mut ctl, &cfg, &layout, &[base.vpn()]);
            if rm.active() {
                let a0 = ctl.kernel.thread_aspace(t0);
                if ctl.kernel.translate(a0, base, true).is_err() {
                    if let Ok(FaultResolution::CowBroken { pages, .. }) =
                        ctl.kernel.handle_fault(a0, base, true)
                    {
                        rm.on_cow(&mut ctl, t0, base.vpn(), pages, &cfg, &layout);
                        ctl.kernel.force_write(a0, base, Width::W8, 6).unwrap();
                    }
                }
                rm.commit_thread(&mut ctl, t0, &cfg, &layout);
                rm.trigger(&mut ctl, &cfg, &layout, &[VAddr::new(0x11000).vpn()]);
            }

            if rm.state() == GovernorState::Aborted {
                aborted += 1;
                assert_eq!(rm.protected_pages(), 0, "seed {seed}");
                assert_eq!(rm.twins().current_bytes(), 0, "seed {seed}");
                assert_eq!(
                    ctl.kernel.physmem().allocated_frames(),
                    frames_before,
                    "seed {seed}: aborted repair must return every frame"
                );
            } else {
                survived += 1;
            }
            if aborted > 0 && survived > 0 && seed >= 31 {
                break;
            }
        }
        assert!(aborted > 0, "no seeded plan aborted — the sweep is vacuous");
        assert!(
            survived > 0,
            "every seeded plan aborted — the sweep is vacuous"
        );
    }

    /// Helper used in a test above.
    trait IntoAspace {
        fn into_aspace(self, k: &Kernel) -> tmi_os::AsId;
    }
    impl IntoAspace for Tid {
        fn into_aspace(self, k: &Kernel) -> tmi_os::AsId {
            k.thread_aspace(self)
        }
    }
}
