//! The repair manager: thread-to-process conversion and targeted page
//! protection (§3.2, §3.3).

use std::collections::BTreeSet;

use tmi_machine::addr::FRAMES_PER_HUGE_PAGE;
use tmi_machine::Vpn;
use tmi_os::Tid;
use tmi_sim::EngineCtl;

use crate::config::TmiConfig;
use crate::layout::AppLayout;
use crate::twins::TwinStore;

/// Repair bookkeeping for Table 3 and the EXPERIMENTS report.
#[derive(Clone, Debug, Default)]
pub struct RepairStats {
    /// Cycle at which threads were converted to processes (detection
    /// latency: the "Unrepaired" column of Table 3).
    pub converted_at_cycle: Option<u64>,
    /// Total cycles charged for the stop-the-world conversion (the T2P
    /// column of Table 3).
    pub t2p_cycles: u64,
    /// Number of repair rounds (each may add pages).
    pub repair_rounds: u64,
    /// PTSB commit events (the Commits/s column of Table 3 divides this by
    /// runtime).
    pub commits: u64,
    /// Pages committed across all commits.
    pub committed_pages: u64,
    /// Cycles spent in commits.
    pub commit_cycles: u64,
    /// Bytes merged into shared memory.
    pub bytes_merged: u64,
}

/// Converts threads into processes on demand and arms the PTSB on exactly
/// the pages the detector incriminated.
#[derive(Debug, Default)]
pub struct RepairManager {
    active: bool,
    protected: BTreeSet<Vpn>,
    twins: TwinStore,
    stats: RepairStats,
}

impl RepairManager {
    /// Creates an inactive manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// True once repair has been triggered (threads are processes).
    pub fn active(&self) -> bool {
        self.active
    }

    /// True if `vpn` is PTSB-armed.
    pub fn is_protected(&self, vpn: Vpn) -> bool {
        self.protected.contains(&vpn)
    }

    /// Number of protected pages.
    pub fn protected_pages(&self) -> usize {
        self.protected.len()
    }

    /// Repair statistics.
    pub fn stats(&self) -> &RepairStats {
        &self.stats
    }

    /// The twin store (for memory accounting).
    pub fn twins(&self) -> &TwinStore {
        &self.twins
    }

    /// Triggers (or extends) repair: on the first call, stops the world
    /// and converts every application thread into a process via injected
    /// `fork()` (§3.2); then arms copy-on-write protection for `pages` in
    /// every process (§3.3). Pages in huge-page mappings are expanded to
    /// whole 2 MiB chunks.
    pub fn trigger(
        &mut self,
        ctl: &mut dyn EngineCtl,
        cfg: &TmiConfig,
        layout: &AppLayout,
        pages: &[Vpn],
    ) {
        let tids: Vec<Tid> = ctl.tids();
        if !self.active {
            self.active = true;
            self.stats.converted_at_cycle = Some(ctl.now());
            for &tid in &tids {
                // The root process keeps its (unscheduled) main thread, so
                // every worker can convert; a sole-thread error would mean
                // the workload had one thread and conversion is moot.
                let _ = ctl.kernel().convert_thread_to_process(tid);
            }
            let cost = cfg.stop_world_cycles + cfg.t2p_cycles_per_thread * tids.len() as u64;
            self.stats.t2p_cycles = cost;
            ctl.add_cycles_all(cost);
        }
        self.stats.repair_rounds += 1;

        let mut targets: BTreeSet<Vpn> = BTreeSet::new();
        for &vpn in pages {
            if layout.huge_pages {
                let base = vpn.huge_base();
                for i in 0..FRAMES_PER_HUGE_PAGE {
                    targets.insert(Vpn(base.0 + i));
                }
            } else {
                targets.insert(vpn);
            }
        }
        for vpn in targets {
            if !self.protected.insert(vpn) {
                continue;
            }
            for &tid in &tids {
                let aspace = ctl.kernel().thread_aspace(tid);
                ctl.kernel()
                    .protect_page_cow(aspace, vpn)
                    .expect("PTSB pages must be shared-object backed");
            }
        }
    }

    /// Records the twin for a page that just COW-broke, if we armed it.
    /// `first` and `pages` come from the fault resolution (512 for a huge
    /// break).
    pub fn on_cow(&mut self, ctl: &mut dyn EngineCtl, tid: Tid, first: Vpn, pages: u64) {
        let aspace = ctl.kernel().thread_aspace(tid);
        for i in 0..pages {
            let vpn = Vpn(first.0 + i);
            if self.protected.contains(&vpn) {
                self.twins.snapshot(ctl.kernel(), aspace, vpn);
            }
        }
    }

    /// True if `tid`'s process has buffered (uncommitted) pages.
    pub fn has_dirty(&self, ctl: &mut dyn EngineCtl, tid: Tid) -> bool {
        let aspace = ctl.kernel().thread_aspace(tid);
        self.twins.has_dirty(aspace)
    }

    /// Commits every dirty page of `tid`'s process: the PTSB flush at a
    /// synchronization operation. Returns the cycles it cost.
    pub fn commit_thread(
        &mut self,
        ctl: &mut dyn EngineCtl,
        tid: Tid,
        cfg: &TmiConfig,
        layout: &AppLayout,
    ) -> u64 {
        let aspace = ctl.kernel().thread_aspace(tid);
        let dirty = self.twins.dirty_pages(aspace);
        if dirty.is_empty() {
            return 0;
        }
        let mut cycles = 0;
        for vpn in dirty {
            let pc =
                self.twins
                    .commit_page(ctl.kernel(), aspace, vpn, &cfg.commit, layout.huge_pages);
            cycles += pc.cycles;
            self.stats.bytes_merged += pc.bytes_merged;
            self.stats.committed_pages += 1;
        }
        self.stats.commits += 1;
        self.stats.commit_cycles += cycles;
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmi_machine::{VAddr, Width, FRAME_SIZE};
    use tmi_os::{Kernel, MapRequest, ObjId};
    use tmi_program::CodeRegistry;

    /// A minimal EngineCtl for unit-testing the manager without a full
    /// engine.
    struct FakeCtl {
        kernel: Kernel,
        tids: Vec<Tid>,
        code: CodeRegistry,
        cycles_added: u64,
    }

    impl EngineCtl for FakeCtl {
        fn kernel(&mut self) -> &mut Kernel {
            &mut self.kernel
        }
        fn tids(&self) -> Vec<Tid> {
            self.tids.clone()
        }
        fn add_cycles(&mut self, _tid: Tid, cycles: u64) {
            self.cycles_added += cycles;
        }
        fn add_cycles_all(&mut self, cycles: u64) {
            self.cycles_added += cycles;
        }
        fn now(&self) -> u64 {
            12345
        }
        fn code(&self) -> &CodeRegistry {
            &self.code
        }
    }

    fn setup(threads: usize) -> (FakeCtl, AppLayout) {
        let mut kernel = Kernel::new();
        let obj = kernel.create_object(16 * FRAME_SIZE);
        let internal = kernel.create_object(FRAME_SIZE);
        let aspace = kernel.create_aspace();
        let base = VAddr::new(0x10000);
        kernel
            .map(aspace, MapRequest::object(base, 16 * FRAME_SIZE, obj, 0))
            .unwrap();
        kernel
            .map(
                aspace,
                MapRequest::object(VAddr::new(0x80_0000), FRAME_SIZE, internal, 0),
            )
            .unwrap();
        let (pid, _main) = kernel.create_process(aspace);
        let tids: Vec<Tid> = (0..threads).map(|_| kernel.spawn_thread(pid)).collect();
        let layout = AppLayout {
            app_obj: obj,
            app_start: base,
            app_len: 16 * FRAME_SIZE,
            internal_obj: ObjId(1),
            internal_start: VAddr::new(0x80_0000),
            internal_len: FRAME_SIZE,
            huge_pages: false,
        };
        (
            FakeCtl {
                kernel,
                tids,
                code: CodeRegistry::new(),
                cycles_added: 0,
            },
            layout,
        )
    }

    #[test]
    fn trigger_converts_threads_and_protects_pages() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        let hot = VAddr::new(0x10000).vpn();
        rm.trigger(&mut ctl, &cfg, &layout, &[hot]);

        assert!(rm.active());
        assert!(rm.is_protected(hot));
        assert_eq!(ctl.kernel.stats().conversions, 2);
        assert!(ctl.cycles_added >= cfg.t2p_cycles_per_thread * 2);
        // Both processes have the page armed.
        let tids = ctl.tids();
        for tid in tids {
            let a = ctl.kernel.thread_aspace(tid);
            assert!(ctl.kernel.translate(a, hot.base(), true).is_err());
        }
        assert_eq!(rm.stats().converted_at_cycle, Some(12345));
    }

    #[test]
    fn second_trigger_only_adds_pages() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        rm.trigger(&mut ctl, &cfg, &layout, &[VAddr::new(0x10000).vpn()]);
        let conversions = ctl.kernel.stats().conversions;
        rm.trigger(&mut ctl, &cfg, &layout, &[VAddr::new(0x11000).vpn()]);
        assert_eq!(ctl.kernel.stats().conversions, conversions, "no re-convert");
        assert_eq!(rm.protected_pages(), 2);
        assert_eq!(rm.stats().repair_rounds, 2);
    }

    #[test]
    fn cow_snapshot_and_commit_roundtrip() {
        let (mut ctl, layout) = setup(2);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        let base = VAddr::new(0x10000);
        ctl.kernel
            .force_write(ctl.tids[0].into_aspace(&ctl.kernel), base, Width::W8, 1)
            .unwrap();
        rm.trigger(&mut ctl, &cfg, &layout, &[base.vpn()]);

        let t0 = ctl.tids[0];
        let a0 = ctl.kernel.thread_aspace(t0);
        // Simulate the engine's fault path: break COW, notify, write.
        ctl.kernel.handle_fault(a0, base, true).unwrap();
        rm.on_cow(&mut ctl, t0, base.vpn(), 1);
        assert!(rm.has_dirty(&mut ctl, t0));
        ctl.kernel.force_write(a0, base, Width::W8, 42).unwrap();

        let cycles = rm.commit_thread(&mut ctl, t0, &cfg, &layout);
        assert!(cycles > 0);
        assert!(!rm.has_dirty(&mut ctl, t0));
        assert_eq!(rm.stats().commits, 1);
        assert!(rm.stats().bytes_merged >= 1);
        // The other process sees the committed value through shared memory.
        let t1 = ctl.tids[1];
        let a1 = ctl.kernel.thread_aspace(t1);
        assert_eq!(ctl.kernel.force_read(a1, base, Width::W8).unwrap(), 42);
    }

    #[test]
    fn commit_without_dirty_pages_is_free() {
        let (mut ctl, layout) = setup(1);
        let cfg = TmiConfig::default();
        let mut rm = RepairManager::new();
        let t0 = ctl.tids[0];
        assert_eq!(rm.commit_thread(&mut ctl, t0, &cfg, &layout), 0);
        assert_eq!(rm.stats().commits, 0);
    }

    /// Helper used in a test above.
    trait IntoAspace {
        fn into_aspace(self, k: &Kernel) -> tmi_os::AsId;
    }
    impl IntoAspace for Tid {
        fn into_aspace(self, k: &Kernel) -> tmi_os::AsId {
            k.thread_aspace(self)
        }
    }
}
