//! TMI runtime configuration.

use tmi_machine::LatencyModel;
use tmi_perf::PerfConfig;

/// Cost model for PTSB commits (the diff-and-merge of §2.2 / §3.3).
#[derive(Clone, Copy, Debug)]
pub struct CommitCostModel {
    /// Fixed cycles per committed page (syscall + bookkeeping).
    pub per_page_base: u64,
    /// Cycles per byte of the twin/private byte-level diff.
    pub diff_per_byte_x100: u64,
    /// Cycles per byte of the `memcmp` fast path used to skip identical
    /// 4 KiB chunks of a 2 MiB huge page (§4.4: "We optimize huge page
    /// commit by comparing 4KB regions of the 2MB page using memcmp before
    /// comparing the individual bytes").
    pub memcmp_per_byte_x100: u64,
    /// Cycles per byte actually merged into shared memory.
    pub merge_per_byte_x100: u64,
}

impl CommitCostModel {
    /// Default model: a vectorized (SSE `memcmp`-style) byte diff runs at
    /// ≈0.15 cycles/byte, the chunk-skip fast path at ≈0.06.
    pub const fn standard() -> Self {
        CommitCostModel {
            per_page_base: 350,
            diff_per_byte_x100: 15,
            memcmp_per_byte_x100: 6,
            merge_per_byte_x100: 100,
        }
    }
}

impl Default for CommitCostModel {
    fn default() -> Self {
        Self::standard()
    }
}

/// Operating mode and knobs of the TMI runtime.
#[derive(Clone, Copy, Debug)]
pub struct TmiConfig {
    /// PEBS sampling configuration (period 100 by default, §4.1).
    pub perf: PerfConfig,
    /// If false, TMI only detects (the `tmi-detect` configuration of
    /// Fig. 7); if true it also repairs (`TMI-protect`, Fig. 9).
    pub repair_enabled: bool,
    /// Code-centric consistency (§3.4). Disabling it reproduces the
    /// Sheriff-style semantic violations of Figs. 3, 11 and 12 and is used
    /// only for ablations and litmus tests.
    pub code_centric: bool,
    /// Targeted page protection (§3.3). If false, a detected repair
    /// protects *every* app page — the "PTSB-everywhere" ablation of §4.3.
    pub targeted: bool,
    /// False-sharing trigger threshold, in (scaled) HITM events per second
    /// on one line. The paper's repaired structures produce >100k/s (§4.3).
    pub fs_threshold_per_sec: f64,
    /// Cycles to convert one thread into a process (Table 3 reports 73–179
    /// µs for whole apps; ≈30 µs per thread).
    pub t2p_cycles_per_thread: u64,
    /// Cycles to stop the world with ptrace before conversion.
    pub stop_world_cycles: u64,
    /// Commit cost model.
    pub commit: CommitCostModel,
    /// Redirect pthread mutexes through process-shared TMI lock objects
    /// (§3.2). Required for repair (locks must survive T2P).
    pub lock_redirect: bool,
    /// Cycles for the lock-pointer indirection on each mutex operation.
    pub lock_indirect_cycles: u64,
    /// Fixed detector memory overhead in bytes (disassembly tables and
    /// dynamic tracking structures; ≈90 MB floor in Fig. 8).
    pub detector_fixed_bytes: u64,
    /// Governor: extra attempts allowed when a repair-path kernel call
    /// fails transiently (fork veto, out-of-frames, mprotect EAGAIN)
    /// before the failure is treated as persistent.
    pub repair_retry_limit: u32,
    /// Governor: base backoff charged (in simulated cycles) before the
    /// first retry; doubles per attempt, capped at 64× base.
    pub repair_retry_backoff_cycles: u64,
    /// Governor: repair-efficacy revert threshold — the fraction of a
    /// detection window's wall-clock cycles spent in PTSB commits above
    /// which repair is judged a net loss and reverted (threads rejoined,
    /// pages unprotected, run continues in shared-memory mode). The
    /// default `f64::INFINITY` disables the monitor.
    pub efficacy_revert_threshold: f64,
}

impl Default for TmiConfig {
    fn default() -> Self {
        TmiConfig {
            perf: PerfConfig::default(),
            repair_enabled: true,
            code_centric: true,
            targeted: true,
            fs_threshold_per_sec: 100_000.0,
            t2p_cycles_per_thread: LatencyModel::micros_to_cycles(30.0),
            stop_world_cycles: LatencyModel::micros_to_cycles(15.0),
            commit: CommitCostModel::standard(),
            lock_redirect: true,
            lock_indirect_cycles: 6,
            detector_fixed_bytes: 72 * 1024 * 1024,
            repair_retry_limit: 4,
            repair_retry_backoff_cycles: 500,
            efficacy_revert_threshold: f64::INFINITY,
        }
    }
}

impl TmiConfig {
    /// The `tmi-detect` configuration: monitoring only, no repair.
    pub fn detect_only() -> Self {
        TmiConfig {
            repair_enabled: false,
            ..Default::default()
        }
    }

    /// The full `TMI-protect` configuration.
    pub fn protect() -> Self {
        Self::default()
    }

    /// The PTSB-everywhere ablation (§4.3).
    pub fn ptsb_everywhere() -> Self {
        TmiConfig {
            targeted: false,
            ..Default::default()
        }
    }

    /// Backoff charged before retry number `attempt` (1-based): exponential
    /// in the attempt count, capped at 64× the base.
    pub fn retry_backoff(&self, attempt: u32) -> u64 {
        self.repair_retry_backoff_cycles << attempt.saturating_sub(1).min(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_as_expected() {
        assert!(!TmiConfig::detect_only().repair_enabled);
        assert!(TmiConfig::protect().repair_enabled);
        assert!(!TmiConfig::ptsb_everywhere().targeted);
        assert!(TmiConfig::default().code_centric);
    }

    #[test]
    fn efficacy_monitor_is_disabled_by_default() {
        assert!(TmiConfig::default().efficacy_revert_threshold.is_infinite());
        assert!(TmiConfig::default().repair_retry_limit >= 4);
    }

    #[test]
    fn t2p_cost_is_tens_of_microseconds() {
        let c = TmiConfig::default();
        let us = c.t2p_cycles_per_thread as f64 / 3_400.0;
        assert!((10.0..100.0).contains(&us));
    }
}
