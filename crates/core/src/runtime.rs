//! The TMI runtime: the composition of detector, repair manager, lock
//! redirector and consistency policy behind the [`tmi_sim::RuntimeHooks`]
//! interface.

use std::collections::BTreeSet;

use tmi_faultpoint::FaultInjector;
use tmi_machine::{AccessOutcome, LatencyModel, VAddr, Vpn, LINE_SIZE};
use tmi_os::{FaultResolution, Kernel, OsError, Tid};
use tmi_perf::PerfMonitor;
use tmi_program::VmOp;
use tmi_sim::{AccessInfo, EngineCtl, PreAccess, RegionEvent, RuntimeHooks, SyncEvent};
use tmi_telemetry::{MetricSink, MetricSource, MetricsSnapshot, Phase, PhaseProfile, Tracer};

use crate::config::TmiConfig;
use crate::consistency;
use crate::detect::{FalseSharingDetector, SharingKind, SharingReport};
use crate::layout::AppLayout;
use crate::locks::LockRedirector;
use crate::memstats::MemoryBreakdown;
use crate::repair::RepairManager;

/// Summary counters exposed after a run.
#[derive(Clone, Debug, Default)]
pub struct TmiStats {
    /// Distinct lines ever reported as falsely shared.
    pub fs_lines: BTreeSet<u64>,
    /// Distinct lines ever reported as truly shared.
    pub ts_lines: BTreeSet<u64>,
    /// Cycle of the first threshold-crossing false-sharing report.
    pub first_detection_cycle: Option<u64>,
    /// Lock re-padding repairs performed.
    pub lock_repads: u64,
    /// Detection-thread analysis passes.
    pub ticks: u64,
}

impl MetricSource for TmiStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.u64("fs_lines", self.fs_lines.len() as u64);
        out.u64("ts_lines", self.ts_lines.len() as u64);
        out.u64("detected", u64::from(self.first_detection_cycle.is_some()));
        out.u64(
            "first_detection_cycle",
            self.first_detection_cycle.unwrap_or(0),
        );
        out.u64("lock_repads", self.lock_repads);
        out.u64("ticks", self.ticks);
    }
}

/// The TMI runtime system (the paper's primary contribution).
///
/// Construct with a [`TmiConfig`] (detect-only or protect) and the
/// [`AppLayout`] describing where the application's shared-object memory
/// lives, then hand it to [`tmi_sim::Engine::new`].
#[derive(Debug)]
pub struct TmiRuntime {
    config: TmiConfig,
    layout: AppLayout,
    perf: PerfMonitor,
    detector: FalseSharingDetector,
    repair: RepairManager,
    locks: LockRedirector,
    stats: TmiStats,
    last_tick: u64,
    /// Commit cycles already seen by the efficacy monitor at the last tick.
    last_commit_cycles: u64,
    /// True while an engine-level fault retry is outstanding, so the next
    /// completed access can be credited as a transient recovery.
    engine_retry_pending: bool,
    /// Telemetry event bus; disabled (a no-op) unless a run opts in.
    tracer: Tracer,
}

impl TmiRuntime {
    /// Creates a runtime for the given configuration and layout.
    pub fn new(config: TmiConfig, layout: AppLayout) -> Self {
        let ranges = vec![
            (layout.app_start, layout.app_len),
            (layout.internal_start, layout.internal_len),
        ];
        TmiRuntime {
            perf: PerfMonitor::new(config.perf),
            detector: FalseSharingDetector::new(config.perf, ranges),
            repair: RepairManager::new(),
            // The lock area starts one line in, leaving line 0 for TMI
            // state, and uses the first quarter of the internal region.
            locks: LockRedirector::new(
                VAddr::new(layout.internal_start.raw() + LINE_SIZE),
                layout.internal_len / 4,
            ),
            stats: TmiStats::default(),
            last_tick: 0,
            last_commit_cycles: 0,
            engine_retry_pending: false,
            tracer: Tracer::disabled(),
            config,
            layout,
        }
    }

    /// Installs a telemetry tracer, shared with the repair manager so the
    /// whole repair pipeline (detect → fork → twin → commit) lands in one
    /// event stream. Tracing is purely observational: it never charges
    /// simulated cycles.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.repair.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Installs a fault injector on the runtime's own fault points (PEBS
    /// sample drops, twin-snapshot allocation). The kernel's injector is
    /// installed separately via [`Kernel::set_fault_injector`]; pass the
    /// same (cloned) injector for one shared fault schedule and stats.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.perf.set_fault_injector(faults.clone());
        self.repair.set_fault_injector(faults);
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TmiConfig {
        &self.config
    }

    /// The read-only observability facade: every view of a run — summary
    /// stats, repair/detector/perf/lock internals, memory breakdown, phase
    /// profile and the flat metrics snapshot — hangs off this one method.
    pub fn observe(&self) -> RuntimeView<'_> {
        RuntimeView { rt: self }
    }

    /// Arms the PTSB on `pages` immediately, converting threads to
    /// processes on the first call — exactly what a detector threshold
    /// crossing would do, minus the sampling warm-up.
    ///
    /// This is the entry point for the differential consistency oracle
    /// (`tmi-oracle`) and for litmus tests: fuzzed programs are far too
    /// short to accumulate HITM samples, so the checker arms the pages
    /// under test up front and the run exercises the full repaired path
    /// (COW faults, twins, commits, code-centric routing) from the first
    /// instruction.
    pub fn force_repair(&mut self, ctl: &mut dyn EngineCtl, pages: &[Vpn]) {
        self.repair.trigger(ctl, &self.config, &self.layout, pages);
    }

    fn flush_cost(&mut self, ctl: &mut dyn EngineCtl, tid: Tid) -> u64 {
        if !self.repair.active() {
            return 0;
        }
        self.repair
            .commit_thread(ctl, tid, &self.config, &self.layout)
    }

    fn handle_reports(&mut self, ctl: &mut dyn EngineCtl, reports: &[SharingReport], now: u64) {
        let mut app_pages: Vec<Vpn> = Vec::new();
        let mut lock_region_fs = false;
        for r in reports {
            match r.kind {
                SharingKind::FalseSharing => {
                    self.tracer.instant(
                        "tmi.detect.fs_line",
                        "detect",
                        tmi_telemetry::GLOBAL_TID,
                        now,
                        &[("line", r.vline)],
                    );
                    self.stats.fs_lines.insert(r.vline);
                    self.stats.first_detection_cycle.get_or_insert(now);
                    if self.layout.internal_line(r.vline) {
                        lock_region_fs = true;
                    } else if self.layout.app_line(r.vline) {
                        app_pages.push(self.layout.line_page(r.vline));
                    }
                }
                SharingKind::TrueSharing => {
                    self.tracer.instant(
                        "tmi.detect.ts_line",
                        "detect",
                        tmi_telemetry::GLOBAL_TID,
                        now,
                        &[("line", r.vline)],
                    );
                    self.stats.ts_lines.insert(r.vline);
                }
                SharingKind::Private => {}
            }
        }
        if !self.config.repair_enabled {
            return;
        }
        if lock_region_fs && !self.locks.padded() {
            // Stop the world briefly and re-pad the shared lock objects.
            self.locks.repad();
            self.stats.lock_repads += 1;
            ctl.add_cycles_all(self.config.stop_world_cycles);
            self.tracer.instant(
                "tmi.repair.lock_repad",
                "repair",
                tmi_telemetry::GLOBAL_TID,
                now,
                &[],
            );
            self.tracer.phase(Phase::Arm, self.config.stop_world_cycles);
        }
        if !app_pages.is_empty() {
            let pages: Vec<Vpn> = if self.config.targeted {
                app_pages
            } else {
                self.layout.all_app_pages().collect()
            };
            self.repair.trigger(ctl, &self.config, &self.layout, &pages);
        }
    }
}

/// Read-only observability facade over a [`TmiRuntime`], obtained from
/// [`TmiRuntime::observe`].
///
/// Borrows the runtime immutably, so it can be held while the engine is
/// paused and consulted repeatedly without re-plumbing individual accessors.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeView<'a> {
    rt: &'a TmiRuntime,
}

impl<'a> RuntimeView<'a> {
    /// The configuration in effect.
    pub fn config(&self) -> &'a TmiConfig {
        &self.rt.config
    }

    /// Summary statistics.
    pub fn stats(&self) -> &'a TmiStats {
        &self.rt.stats
    }

    /// The repair manager (T2P and commit statistics, Table 3).
    pub fn repair(&self) -> &'a RepairManager {
        &self.rt.repair
    }

    /// The detector (line profiles and record counts).
    pub fn detector(&self) -> &'a FalseSharingDetector {
        &self.rt.detector
    }

    /// The perf monitor (records/events, Fig. 4).
    pub fn perf(&self) -> &'a PerfMonitor {
        &self.rt.perf
    }

    /// The lock redirector.
    pub fn locks(&self) -> &'a LockRedirector {
        &self.rt.locks
    }

    /// Whether repair has been activated during the run.
    pub fn repaired(&self) -> bool {
        self.rt.repair.active() || self.rt.stats.lock_repads > 0
    }

    /// Memory breakdown for Fig. 8. `app_bytes` is the peak physical
    /// memory of the application (from the kernel).
    pub fn memory(&self, kernel: &Kernel) -> MemoryBreakdown {
        MemoryBreakdown {
            app_bytes: kernel.physmem().peak_allocated_frames() as u64 * tmi_machine::FRAME_SIZE,
            perf_bytes: self.rt.perf.buffer_bytes(),
            detector_bytes: self.rt.detector.table_bytes() + self.rt.config.detector_fixed_bytes,
            twin_bytes: self.rt.repair.twins().peak_bytes(),
            lock_bytes: self.rt.locks.bytes_used(),
        }
    }

    /// The per-phase cycle attribution recorded by the tracer (all zeros
    /// unless a tracer was installed).
    pub fn phases(&self) -> PhaseProfile {
        self.rt.tracer.phases()
    }

    /// The flat metrics snapshot of the whole runtime (no prefix; callers
    /// composing several sources should use [`MetricSink::source`] on the
    /// runtime instead).
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::of(self.rt)
    }
}

impl MetricSource for TmiRuntime {
    fn metrics(&self, out: &mut MetricSink) {
        self.stats.metrics(out);
        out.u64(
            "repaired",
            u64::from(self.repair.active() || self.stats.lock_repads > 0),
        );
        out.source("repair", &self.repair);
        out.source("perf", &self.perf);
        out.source("detector", &self.detector);
        out.source("locks", &self.locks);
        out.source("phase", &self.tracer.phases());
    }
}

impl RuntimeHooks for TmiRuntime {
    fn on_start(&mut self, ctl: &mut dyn EngineCtl) {
        for tid in ctl.tids() {
            self.perf.open_thread(tid);
        }
    }

    fn speculation_allowed(&self) -> bool {
        // Outside a repair episode TMI is compatible-by-default —
        // `pre_access` is a NOP for every access and no page is being
        // twinned, remapped or protection-flipped — so the engine may run
        // provably-private memory ops speculatively. An in-flight
        // transient-fault retry also parks speculation: its bookkeeping
        // runs in `post_access`, which must observe accesses in replay
        // order. Repair episodes only start inside `on_tick` / fault
        // hooks, which the engine calls between epochs or on parked ops,
        // so re-sampling this gate per epoch is race-free.
        !self.repair.active() && !self.engine_retry_pending
    }

    fn pre_access(&mut self, ctl: &mut dyn EngineCtl, tid: Tid, acc: &AccessInfo) -> PreAccess {
        if !self.repair.active() {
            // Compatible-by-default: before repair, the callbacks are NOPs
            // and accesses run at native speed.
            return PreAccess::default();
        }
        let d = consistency::access_decision(self.config.code_centric, acc);
        let mut extra = 0;
        if d.flush {
            extra += self.flush_cost(ctl, tid);
        }
        PreAccess {
            extra_cycles: extra,
            route: consistency::route_of(d),
        }
    }

    fn post_access(
        &mut self,
        _ctl: &mut dyn EngineCtl,
        tid: Tid,
        acc: &AccessInfo,
        outcome: &AccessOutcome,
    ) -> u64 {
        if self.engine_retry_pending {
            // The access completed, so the transiently-failed fault that
            // preceded it has healed.
            self.engine_retry_pending = false;
            self.repair.note_recovery();
        }
        let Some(hitm) = &outcome.hitm else { return 0 };
        if !self.layout.in_app(acc.vaddr) && !self.layout.in_internal(acc.vaddr) {
            return 0;
        }
        let capture_cycles = self.perf.on_hitm(tid, acc.pc, acc.vaddr, hitm.kind);
        self.tracer.phase(Phase::Detect, capture_cycles);
        capture_cycles
    }

    fn on_fault(&mut self, ctl: &mut dyn EngineCtl, tid: Tid, res: &FaultResolution) {
        if let FaultResolution::CowBroken { vpn, pages, .. } = *res {
            self.repair
                .on_cow(ctl, tid, vpn, pages, &self.config, &self.layout);
        }
    }

    fn on_fault_error(
        &mut self,
        ctl: &mut dyn EngineCtl,
        tid: Tid,
        addr: VAddr,
        err: &OsError,
        attempt: u32,
    ) -> Option<u64> {
        if !err.is_transient() {
            return None;
        }
        if attempt <= self.config.repair_retry_limit {
            self.repair.note_retry();
            self.engine_retry_pending = true;
            let backoff = self.config.retry_backoff(attempt);
            self.tracer.instant(
                "tmi.fault.retry",
                "fault",
                u64::from(tid.0),
                ctl.now(),
                &[("attempt", u64::from(attempt))],
            );
            self.tracer.phase(Phase::FaultHandling, backoff);
            return Some(backoff);
        }
        // Retry budget exhausted. If the failure is on a PTSB-armed page
        // (e.g. no frame for the private copy), give that page back to
        // shared memory and let the access run unbuffered — repair
        // degrades, the program does not die.
        let vpn = addr.vpn();
        if self.repair.is_protected(vpn) {
            self.repair
                .degrade_page(ctl, &self.config, &self.layout, vpn);
            self.engine_retry_pending = true;
            let backoff = self.config.retry_backoff(attempt);
            self.tracer.phase(Phase::FaultHandling, backoff);
            return Some(backoff);
        }
        None
    }

    fn on_sync(&mut self, ctl: &mut dyn EngineCtl, tid: Tid, _ev: SyncEvent) -> u64 {
        self.flush_cost(ctl, tid)
    }

    /// Explicit VM operations — the transistency litmus vocabulary. Each
    /// arm drives the same governor/kernel entry point the organic path
    /// uses (detector trigger, COW fault, sync-point commit), just at a
    /// program-chosen instant, so fuzzed schedules can force repair
    /// transitions mid-run that sampling would take millions of cycles to
    /// reach. Outcome codes depend only on PTE/governor state — never on
    /// TLB or directory contents — keeping them fast-path invariant.
    fn on_vm_op(&mut self, ctl: &mut dyn EngineCtl, tid: Tid, op: VmOp, addr: VAddr) -> u64 {
        let vpn = addr.vpn();
        match op {
            VmOp::T2p => {
                // Start (or extend) a repair episode on this page, exactly
                // as a detector threshold crossing would.
                self.repair.trigger(ctl, &self.config, &self.layout, &[vpn]);
                u64::from(self.repair.is_protected(vpn))
            }
            VmOp::Mprotect => {
                if !self.repair.active() {
                    // No episode to arm pages under; a bare mprotect with
                    // no governor is not part of TMI's repertoire.
                    return 0;
                }
                self.repair.trigger(ctl, &self.config, &self.layout, &[vpn]);
                u64::from(self.repair.is_protected(vpn))
            }
            VmOp::CowBreak => {
                // Take the write-fault path on the page as if a store had
                // hit the armed mapping. On an unarmed page this resolves
                // Spurious (or demand-pages) — outcome 0.
                let res = {
                    let k = ctl.kernel();
                    let aspace = k.thread_aspace(tid);
                    k.handle_fault(aspace, addr, true)
                };
                match res {
                    Ok(FaultResolution::CowBroken { vpn, pages, .. }) => {
                        self.repair
                            .on_cow(ctl, tid, vpn, pages, &self.config, &self.layout);
                        1
                    }
                    // Transient kernel failures (injected out-of-frames)
                    // make the forced break a no-op rather than a retry
                    // loop: the litmus program observes outcome 0.
                    Ok(_) | Err(_) => 0,
                }
            }
            VmOp::TwinCommit => {
                if !self.repair.active() {
                    return 0;
                }
                let cycles = self
                    .repair
                    .commit_thread(ctl, tid, &self.config, &self.layout);
                ctl.add_cycles(tid, cycles);
                1
            }
            VmOp::Shootdown => {
                let k = ctl.kernel();
                let aspace = k.thread_aspace(tid);
                k.shootdown_page(aspace, vpn);
                // Constant outcome: whether the IPI actually lands is
                // accelerator state, invisible by design.
                1
            }
        }
    }

    fn on_region(&mut self, ctl: &mut dyn EngineCtl, tid: Tid, ev: RegionEvent) -> u64 {
        if consistency::region_flush(self.config.code_centric, ev) {
            self.flush_cost(ctl, tid)
        } else {
            0
        }
    }

    fn map_lock(&mut self, _ctl: &mut dyn EngineCtl, _tid: Tid, lock: VAddr) -> (VAddr, u64) {
        if !self.config.lock_redirect {
            return (lock, 0);
        }
        (self.locks.redirect(lock), self.config.lock_indirect_cycles)
    }

    fn on_tick(&mut self, ctl: &mut dyn EngineCtl, now: u64) {
        self.stats.ticks += 1;
        let records = self.perf.drain();
        self.detector.ingest(&records, ctl.code());
        let window_cycles = now.saturating_sub(self.last_tick).max(1);
        let window_secs = LatencyModel::cycles_to_secs(window_cycles);
        self.last_tick = now;
        let reports = self
            .detector
            .analyze_window(window_secs, self.config.fs_threshold_per_sec);
        self.tracer.instant(
            "tmi.detect.tick",
            "detect",
            tmi_telemetry::GLOBAL_TID,
            now,
            &[
                ("records", records.len() as u64),
                ("reports", reports.len() as u64),
            ],
        );
        self.handle_reports(ctl, &reports, now);

        // Repair-efficacy monitor: if the fraction of this window spent in
        // PTSB commits exceeds the threshold, repair costs more than the
        // false sharing it cures — revert it. Disabled by default
        // (threshold = +inf).
        if self.repair.active() && self.config.efficacy_revert_threshold.is_finite() {
            let commit_delta = self
                .repair
                .stats()
                .commit_cycles
                .saturating_sub(self.last_commit_cycles);
            if commit_delta as f64 / window_cycles as f64 > self.config.efficacy_revert_threshold {
                self.repair.revert(ctl, &self.config, &self.layout);
            }
        }
        // Post-revert value, so the revert's own flush cannot re-trigger.
        self.last_commit_cycles = self.repair.stats().commit_cycles;
    }
}
