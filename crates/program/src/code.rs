//! Static code metadata: program counters and the simulated "binary".
//!
//! TMI's detector disassembles the application binary once at startup to
//! learn, for every instruction address, whether it is a load or a store
//! and how many bytes it touches (§3.1) — that is what lets it tell false
//! sharing (disjoint byte ranges within a line) from true sharing
//! (overlapping ranges). [`CodeRegistry`] plays the role of the binary:
//! workloads mint a [`Pc`] per static instruction and the detector later
//! looks the metadata back up.

use std::collections::HashMap;
use std::fmt;

use tmi_machine::Width;

/// A static program counter (instruction address).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(pub u64);

impl fmt::Debug for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pc({:#x})", self.0)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// What kind of memory instruction a PC decodes to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstrKind {
    /// A read.
    Load,
    /// A write.
    Store,
    /// An atomic read-modify-write (reads *and* writes its location).
    Rmw,
}

impl InstrKind {
    /// Whether instructions of this kind write memory.
    pub fn writes(self) -> bool {
        matches!(self, InstrKind::Store | InstrKind::Rmw)
    }

    /// Whether instructions of this kind read memory.
    pub fn reads(self) -> bool {
        matches!(self, InstrKind::Load | InstrKind::Rmw)
    }
}

/// Decoded metadata for one static instruction — the disassembler's output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstrInfo {
    /// Load, store or RMW.
    pub kind: InstrKind,
    /// Access width in bytes.
    pub width: Width,
    /// True if the instruction implements a C/C++ atomic operation (found
    /// via the code-centric consistency callbacks, not the disassembler).
    pub atomic: bool,
    /// True if the instruction lies inside an inline-assembly region.
    pub asm: bool,
}

/// The simulated application binary: an append-only table of static
/// instructions with symbol names for reporting.
///
/// PCs are handed out sequentially starting at `0x40_0000` (a traditional
/// ELF text base) with 4-byte spacing.
#[derive(Debug, Default)]
pub struct CodeRegistry {
    table: HashMap<Pc, InstrInfo>,
    symbols: HashMap<Pc, String>,
    next: u64,
}

/// Base address of the simulated text segment.
const TEXT_BASE: u64 = 0x40_0000;

impl CodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        CodeRegistry {
            table: HashMap::new(),
            symbols: HashMap::new(),
            next: TEXT_BASE,
        }
    }

    /// Registers a plain (non-atomic, non-asm) instruction and returns its
    /// fresh PC. `symbol` names the instruction in reports, e.g.
    /// `"histogram::bump_bin"`.
    pub fn instr(&mut self, symbol: &str, kind: InstrKind, width: Width) -> Pc {
        self.register(
            symbol,
            InstrInfo {
                kind,
                width,
                atomic: false,
                asm: false,
            },
        )
    }

    /// Registers an instruction implementing a C/C++ atomic operation.
    pub fn atomic_instr(&mut self, symbol: &str, kind: InstrKind, width: Width) -> Pc {
        self.register(
            symbol,
            InstrInfo {
                kind,
                width,
                atomic: true,
                asm: false,
            },
        )
    }

    /// Registers an instruction inside an inline-assembly region.
    pub fn asm_instr(&mut self, symbol: &str, kind: InstrKind, width: Width) -> Pc {
        self.register(
            symbol,
            InstrInfo {
                kind,
                width,
                atomic: false,
                asm: true,
            },
        )
    }

    fn register(&mut self, symbol: &str, info: InstrInfo) -> Pc {
        let pc = Pc(self.next);
        self.next += 4;
        self.table.insert(pc, info);
        self.symbols.insert(pc, symbol.to_owned());
        pc
    }

    /// Disassembles one PC: the lookup TMI's detector performs for every
    /// PEBS record (§3.1).
    pub fn disassemble(&self, pc: Pc) -> Option<InstrInfo> {
        self.table.get(&pc).copied()
    }

    /// The symbol registered for `pc`, for human-readable reports.
    pub fn symbol(&self, pc: Pc) -> Option<&str> {
        self.symbols.get(&pc).map(String::as_str)
    }

    /// Number of static instructions registered. The detector's memory
    /// footprint scales with this (Fig. 8 discussion).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if no instructions have been registered.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcs_are_unique_and_text_based() {
        let mut c = CodeRegistry::new();
        let a = c.instr("a", InstrKind::Load, Width::W4);
        let b = c.instr("b", InstrKind::Store, Width::W8);
        assert_ne!(a, b);
        assert!(a.0 >= TEXT_BASE);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn disassembly_recovers_kind_and_width() {
        let mut c = CodeRegistry::new();
        let pc = c.instr("k", InstrKind::Store, Width::W2);
        let info = c.disassemble(pc).unwrap();
        assert_eq!(info.kind, InstrKind::Store);
        assert_eq!(info.width, Width::W2);
        assert!(!info.atomic && !info.asm);
        assert_eq!(c.symbol(pc), Some("k"));
    }

    #[test]
    fn atomic_and_asm_flags() {
        let mut c = CodeRegistry::new();
        let a = c.atomic_instr("refcount", InstrKind::Rmw, Width::W4);
        let s = c.asm_instr("memcpy_body", InstrKind::Store, Width::W8);
        assert!(c.disassemble(a).unwrap().atomic);
        assert!(c.disassemble(s).unwrap().asm);
    }

    #[test]
    fn unknown_pc_disassembles_to_none() {
        let c = CodeRegistry::new();
        assert_eq!(c.disassemble(Pc(0x1234)), None);
    }

    #[test]
    fn kind_predicates() {
        assert!(InstrKind::Rmw.reads() && InstrKind::Rmw.writes());
        assert!(InstrKind::Load.reads() && !InstrKind::Load.writes());
        assert!(!InstrKind::Store.reads() && InstrKind::Store.writes());
    }
}
