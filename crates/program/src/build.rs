//! Structured builders for litmus-style op sequences.
//!
//! Hand-written litmus tests and the `tmi-oracle` fuzzer both assemble
//! short [`Op`] lists mixing plain accesses, atomics, assembly regions and
//! synchronization. Building those lists raw makes it easy to emit
//! structurally invalid programs — an `AsmExit` without its `AsmEnter`, an
//! unlock of a mutex the thread never took. [`OpBuilder`] closes regions
//! and critical sections by construction: `asm`, `locked` and
//! `spin_locked` take a closure for the body and emit the matching
//! begin/end ops around it.
//!
//! ```
//! use tmi_machine::{VAddr, Width};
//! use tmi_program::{MemOrder, OpBuilder, Pc};
//!
//! let lock = VAddr::new(0x2000);
//! let x = VAddr::new(0x1000);
//! let ops = OpBuilder::new()
//!     .locked(lock, |b| b.store(Pc(0x400000), x, Width::W8, 7))
//!     .fence(MemOrder::SeqCst)
//!     .build();
//! assert_eq!(ops.len(), 4); // lock, store, unlock, fence
//! ```

use tmi_machine::{VAddr, Width};

use crate::code::Pc;
use crate::op::{MemOrder, Op, RmwOp, VmOp};

/// Builder for a structurally well-formed op sequence.
#[derive(Debug, Default)]
pub struct OpBuilder {
    ops: Vec<Op>,
}

impl OpBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw op. Prefer the shaped helpers; this is the escape
    /// hatch for ops without structure (and for generated code that
    /// guarantees balance itself).
    pub fn push(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Plain load.
    pub fn load(self, pc: Pc, addr: VAddr, width: Width) -> Self {
        self.push(Op::Load { pc, addr, width })
    }

    /// Plain store.
    pub fn store(self, pc: Pc, addr: VAddr, width: Width, value: u64) -> Self {
        self.push(Op::Store {
            pc,
            addr,
            width,
            value,
        })
    }

    /// C++11 atomic load.
    pub fn atomic_load(self, pc: Pc, addr: VAddr, width: Width, order: MemOrder) -> Self {
        self.push(Op::AtomicLoad {
            pc,
            addr,
            width,
            order,
        })
    }

    /// C++11 atomic store.
    pub fn atomic_store(
        self,
        pc: Pc,
        addr: VAddr,
        width: Width,
        value: u64,
        order: MemOrder,
    ) -> Self {
        self.push(Op::AtomicStore {
            pc,
            addr,
            width,
            value,
            order,
        })
    }

    /// Atomic read-modify-write.
    #[allow(clippy::too_many_arguments)]
    pub fn rmw(
        self,
        pc: Pc,
        addr: VAddr,
        width: Width,
        rmw: RmwOp,
        operand: u64,
        order: MemOrder,
    ) -> Self {
        self.push(Op::AtomicRmw {
            pc,
            addr,
            width,
            rmw,
            operand,
            order,
        })
    }

    /// Atomic compare-and-swap.
    #[allow(clippy::too_many_arguments)]
    pub fn cas(
        self,
        pc: Pc,
        addr: VAddr,
        width: Width,
        expected: u64,
        desired: u64,
        order: MemOrder,
    ) -> Self {
        self.push(Op::Cas {
            pc,
            addr,
            width,
            expected,
            desired,
            order,
        })
    }

    /// A fence of the given order.
    pub fn fence(self, order: MemOrder) -> Self {
        self.push(Op::Fence { order })
    }

    /// Local compute.
    pub fn compute(self, cycles: u64) -> Self {
        self.push(Op::Compute { cycles })
    }

    /// A barrier arrival.
    pub fn barrier(self, barrier: VAddr) -> Self {
        self.push(Op::BarrierWait { barrier })
    }

    /// An explicit virtual-memory operation on the page containing
    /// `addr` (the transistency litmus vocabulary).
    pub fn vm(self, op: VmOp, addr: VAddr) -> Self {
        self.push(Op::Vm { op, addr })
    }

    /// An inline-assembly region: `AsmEnter`, the body, `AsmExit`.
    pub fn asm(mut self, body: impl FnOnce(Self) -> Self) -> Self {
        self.ops.push(Op::AsmEnter);
        self = body(self);
        self.ops.push(Op::AsmExit);
        self
    }

    /// A mutex critical section: lock, the body, unlock.
    pub fn locked(mut self, lock: VAddr, body: impl FnOnce(Self) -> Self) -> Self {
        self.ops.push(Op::MutexLock { lock });
        self = body(self);
        self.ops.push(Op::MutexUnlock { lock });
        self
    }

    /// A spinlock critical section: acquire, the body, release.
    pub fn spin_locked(mut self, lock: VAddr, body: impl FnOnce(Self) -> Self) -> Self {
        self.ops.push(Op::SpinLock { lock });
        self = body(self);
        self.ops.push(Op::SpinUnlock { lock });
        self
    }

    /// Number of ops so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no ops have been appended.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The finished op list (no trailing `Exit`; `SequenceProgram` appends
    /// one when the list runs out).
    pub fn build(self) -> Vec<Op> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PC: Pc = Pc(0x40_0000);
    const X: VAddr = VAddr::new(0x1000);
    const LOCK: VAddr = VAddr::new(0x2000);

    #[test]
    fn regions_are_balanced_by_construction() {
        let ops = OpBuilder::new()
            .asm(|b| b.store(PC, X, Width::W8, 1))
            .locked(LOCK, |b| b.load(PC, X, Width::W8))
            .spin_locked(LOCK, |b| b.compute(10))
            .build();
        assert_eq!(ops[0], Op::AsmEnter);
        assert_eq!(ops[2], Op::AsmExit);
        assert_eq!(ops[3], Op::MutexLock { lock: LOCK });
        assert_eq!(ops[5], Op::MutexUnlock { lock: LOCK });
        assert_eq!(ops[6], Op::SpinLock { lock: LOCK });
        assert_eq!(ops[8], Op::SpinUnlock { lock: LOCK });
    }

    #[test]
    fn nested_regions_compose() {
        let ops = OpBuilder::new()
            .locked(LOCK, |b| b.asm(|b| b.store(PC, X, Width::W4, 2)))
            .build();
        assert_eq!(
            ops,
            vec![
                Op::MutexLock { lock: LOCK },
                Op::AsmEnter,
                Op::Store {
                    pc: PC,
                    addr: X,
                    width: Width::W4,
                    value: 2
                },
                Op::AsmExit,
                Op::MutexUnlock { lock: LOCK },
            ]
        );
    }

    #[test]
    fn display_renders_a_listing() {
        let ops = OpBuilder::new()
            .atomic_store(PC, X, Width::W2, 0xAB00, MemOrder::Relaxed)
            .fence(MemOrder::SeqCst)
            .build();
        assert_eq!(
            format!("{}", ops[0]),
            "atomic_store.2B.relaxed 0x1000 <- 0xab00"
        );
        assert_eq!(format!("{}", ops[1]), "fence.seq_cst");
    }
}
