//! Thread programs: resumable state machines that emit [`Op`]s.

use std::sync::{Arc, Mutex};

use crate::op::Op;

/// The result of the previously executed op, fed back into
/// [`ThreadProgram::next`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpResult {
    /// Value produced by the last op: the loaded value for loads and atomic
    /// loads, the *previous* value for RMWs, the *observed* value for CAS.
    /// `None` for ops that produce nothing (stores, fences, sync, compute).
    pub value: Option<u64>,
}

impl OpResult {
    /// The result fed to the very first op of a thread.
    pub fn none() -> Self {
        OpResult { value: None }
    }

    /// A result carrying a value.
    pub fn of(value: u64) -> Self {
        OpResult { value: Some(value) }
    }

    /// The value, panicking if the last op produced none.
    ///
    /// # Panics
    ///
    /// Panics if the previous op was not value-producing — which indicates
    /// a bug in the thread program, not in user input.
    pub fn unwrap(self) -> u64 {
        self.value.expect("previous op produced no value")
    }
}

/// A simulated thread: the engine repeatedly calls [`Self::next`], passing
/// the result of the op it just completed, until [`Op::Exit`] is returned.
///
/// Implementations are ordinary Rust state machines; see
/// [`SequenceProgram`] for the simplest one and the `tmi-workloads` crate
/// for realistic ones.
///
/// `Send` is a supertrait so the engine's epoch-parallel prefetch stage
/// (`tmi-sim`) can walk programs from host worker threads; each program is
/// only ever touched by one host thread at a time.
pub trait ThreadProgram: Send {
    /// Produces the next operation. `last` carries the result of the
    /// previously returned op ([`OpResult::none()`] on the first call).
    ///
    /// After returning [`Op::Exit`] this method is never called again.
    fn next(&mut self, last: OpResult) -> Op;
}

/// A shared, append-only log of op results, for litmus tests that need to
/// observe what a [`SequenceProgram`] loaded. `Arc<Mutex>` rather than
/// `Rc<RefCell>` so programs stay `Send` for the engine's parallel
/// prefetch stage.
pub type SharedLog = Arc<Mutex<Vec<Option<u64>>>>;

/// The simplest [`ThreadProgram`]: plays a fixed list of ops and records
/// every op result into a [`SharedLog`]. Used heavily by litmus tests
/// (e.g. the Fig. 3 word-tearing program).
#[derive(Debug)]
pub struct SequenceProgram {
    ops: Vec<Op>,
    idx: usize,
    log: SharedLog,
}

impl SequenceProgram {
    /// Creates a program that runs `ops` then exits.
    pub fn new(ops: Vec<Op>) -> Self {
        SequenceProgram {
            ops,
            idx: 0,
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle to the result log; entry *i* is the result observed *after*
    /// op *i* completed (so entry 0 is the first op's result, recorded when
    /// the second op is requested).
    pub fn log(&self) -> SharedLog {
        Arc::clone(&self.log)
    }
}

impl ThreadProgram for SequenceProgram {
    fn next(&mut self, last: OpResult) -> Op {
        if self.idx > 0 && self.idx <= self.ops.len() {
            self.log.lock().unwrap().push(last.value);
        }
        let op = self.ops.get(self.idx).copied().unwrap_or(Op::Exit);
        self.idx += 1;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Pc;
    use tmi_machine::{VAddr, Width};

    #[test]
    fn sequence_plays_ops_then_exits() {
        let load = Op::Load {
            pc: Pc(0x400000),
            addr: VAddr::new(0x1000),
            width: Width::W8,
        };
        let mut p = SequenceProgram::new(vec![load, Op::Compute { cycles: 10 }]);
        assert_eq!(p.next(OpResult::none()), load);
        assert_eq!(p.next(OpResult::of(42)), Op::Compute { cycles: 10 });
        assert_eq!(p.next(OpResult::none()), Op::Exit);
        assert_eq!(p.next(OpResult::none()), Op::Exit);
    }

    #[test]
    fn log_records_results_in_order() {
        let load = Op::Load {
            pc: Pc(0x400000),
            addr: VAddr::new(0x1000),
            width: Width::W8,
        };
        let mut p = SequenceProgram::new(vec![load, load]);
        let log = p.log();
        p.next(OpResult::none());
        p.next(OpResult::of(1));
        p.next(OpResult::of(2));
        // A trailing Exit request records nothing further.
        p.next(OpResult::none());
        assert_eq!(*log.lock().unwrap(), vec![Some(1), Some(2)]);
    }

    #[test]
    fn op_result_helpers() {
        assert_eq!(OpResult::of(7).unwrap(), 7);
        assert_eq!(OpResult::none().value, None);
    }

    #[test]
    #[should_panic(expected = "no value")]
    fn unwrap_none_panics() {
        let _ = OpResult::none().unwrap();
    }
}
