//! Dynamic operations: what a simulated thread asks the machine to do next.

use std::fmt;

use tmi_machine::{VAddr, Width};

use crate::code::Pc;

/// C++11 memory orders (§3.4: TMI distinguishes `memory_order_relaxed`,
/// which requires only atomicity, from stronger orders that also require
/// ordering and therefore force a PTSB flush).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MemOrder {
    /// Atomicity only; no ordering. Does **not** flush the PTSB under TMI.
    Relaxed,
    /// Load-acquire.
    Acquire,
    /// Store-release.
    Release,
    /// Both acquire and release (RMW).
    AcqRel,
    /// Sequentially consistent.
    SeqCst,
}

impl MemOrder {
    /// True for every order stronger than `Relaxed`.
    pub fn is_ordering(self) -> bool {
        self != MemOrder::Relaxed
    }
}

/// The arithmetic applied by an atomic read-modify-write.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RmwOp {
    /// `fetch_add`
    Add,
    /// `fetch_sub`
    Sub,
    /// `fetch_and`
    And,
    /// `fetch_or`
    Or,
    /// `fetch_xor`
    Xor,
    /// `exchange`
    Xchg,
}

impl RmwOp {
    /// Applies the operation to `old` with `operand`, truncated to `width`.
    pub fn apply(self, old: u64, operand: u64, width: Width) -> u64 {
        let mask = width_mask(width);
        let v = match self {
            RmwOp::Add => old.wrapping_add(operand),
            RmwOp::Sub => old.wrapping_sub(operand),
            RmwOp::And => old & operand,
            RmwOp::Or => old | operand,
            RmwOp::Xor => old ^ operand,
            RmwOp::Xchg => operand,
        };
        v & mask
    }
}

/// Bit mask covering `width` bytes.
pub fn width_mask(width: Width) -> u64 {
    match width {
        Width::W1 => 0xff,
        Width::W2 => 0xffff,
        Width::W4 => 0xffff_ffff,
        Width::W8 => u64::MAX,
    }
}

/// A virtual-memory operation a thread can request mid-program, the
/// vocabulary of transistency litmus tests (TransForm): VM ops
/// interleaved with plain accesses, so remapping-under-running-threads
/// bugs (stale TLB entries, lost twin commits, partial rollbacks)
/// become observable as consistency divergences.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VmOp {
    /// Arm the page read-only/COW (TMI's page protection step). A no-op
    /// unless a repair episode is active.
    Mprotect,
    /// Force a COW break: perform the write-fault path on the page as if
    /// a store had hit a read-only COW mapping.
    CowBreak,
    /// Force a T2P conversion + arming of the page (starts a repair
    /// episode on the governor if none is active).
    T2p,
    /// Commit this thread's twin for the page set (diff-and-merge), as a
    /// sync point would.
    TwinCommit,
    /// Request a TLB shootdown of the page's translation on every core.
    Shootdown,
}

/// One dynamic operation issued by a thread program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Plain load; the loaded value is fed back via
    /// [`crate::OpResult::value`].
    Load {
        /// Static instruction.
        pc: Pc,
        /// Virtual address.
        addr: VAddr,
        /// Access width.
        width: Width,
    },
    /// Plain store of the low `width` bytes of `value`.
    Store {
        /// Static instruction.
        pc: Pc,
        /// Virtual address.
        addr: VAddr,
        /// Access width.
        width: Width,
        /// Value to store.
        value: u64,
    },
    /// C++11 atomic load.
    AtomicLoad {
        /// Static instruction.
        pc: Pc,
        /// Virtual address (must be naturally aligned).
        addr: VAddr,
        /// Access width.
        width: Width,
        /// Memory order.
        order: MemOrder,
    },
    /// C++11 atomic store.
    AtomicStore {
        /// Static instruction.
        pc: Pc,
        /// Virtual address (must be naturally aligned).
        addr: VAddr,
        /// Access width.
        width: Width,
        /// Value to store.
        value: u64,
        /// Memory order.
        order: MemOrder,
    },
    /// C++11 atomic read-modify-write; the *previous* value is fed back.
    AtomicRmw {
        /// Static instruction.
        pc: Pc,
        /// Virtual address (must be naturally aligned).
        addr: VAddr,
        /// Access width.
        width: Width,
        /// Operation.
        rmw: RmwOp,
        /// Right-hand operand.
        operand: u64,
        /// Memory order.
        order: MemOrder,
    },
    /// Atomic compare-and-swap; the *observed* value is fed back (success
    /// iff it equals `expected`).
    Cas {
        /// Static instruction.
        pc: Pc,
        /// Virtual address (must be naturally aligned).
        addr: VAddr,
        /// Access width.
        width: Width,
        /// Expected current value.
        expected: u64,
        /// Replacement value on success.
        desired: u64,
        /// Memory order.
        order: MemOrder,
    },
    /// A memory fence.
    Fence {
        /// Fence strength.
        order: MemOrder,
    },
    /// Start of an inline-assembly region (code-centric consistency
    /// callback; §3.4.2). Accesses until [`Op::AsmExit`] get TSO semantics.
    AsmEnter,
    /// End of an inline-assembly region.
    AsmExit,
    /// `pthread_mutex_lock`. The lock *object* lives at `lock` in simulated
    /// memory, so lock arrays can themselves falsely share (spinlockpool).
    MutexLock {
        /// Address of the lock object.
        lock: VAddr,
    },
    /// `pthread_mutex_unlock`.
    MutexUnlock {
        /// Address of the lock object.
        lock: VAddr,
    },
    /// Spinlock acquire (busy-waits with atomic exchanges, generating real
    /// coherence traffic while contended).
    SpinLock {
        /// Address of the lock word.
        lock: VAddr,
    },
    /// Spinlock release.
    SpinUnlock {
        /// Address of the lock word.
        lock: VAddr,
    },
    /// `pthread_barrier_wait` across all threads registered on the barrier.
    BarrierWait {
        /// Address of the barrier object.
        barrier: VAddr,
    },
    /// Local computation costing `cycles` with no memory traffic.
    Compute {
        /// Cycle cost.
        cycles: u64,
    },
    /// A virtual-memory operation on the page containing `addr`
    /// (transistency litmus vocabulary). The engine feeds back a small
    /// outcome code via [`crate::OpResult::value`]: `1` if the operation
    /// took effect, `0` if it was a no-op in the current governor state.
    Vm {
        /// Which VM operation.
        op: VmOp,
        /// Any address on the targeted page.
        addr: VAddr,
    },
    /// Thread termination; the engine will not call the program again.
    Exit,
}

impl Op {
    /// The static PC of this op, if it is a memory access.
    pub fn pc(&self) -> Option<Pc> {
        match *self {
            Op::Load { pc, .. }
            | Op::Store { pc, .. }
            | Op::AtomicLoad { pc, .. }
            | Op::AtomicStore { pc, .. }
            | Op::AtomicRmw { pc, .. }
            | Op::Cas { pc, .. } => Some(pc),
            _ => None,
        }
    }

    /// True for the C++11 atomic operations (not plain loads/stores).
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            Op::AtomicLoad { .. } | Op::AtomicStore { .. } | Op::AtomicRmw { .. } | Op::Cas { .. }
        )
    }

    /// True for synchronization operations that commit the PTSB (§3.3).
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Op::MutexLock { .. }
                | Op::MutexUnlock { .. }
                | Op::SpinLock { .. }
                | Op::SpinUnlock { .. }
                | Op::BarrierWait { .. }
        )
    }
}

impl fmt::Display for MemOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemOrder::Relaxed => "relaxed",
            MemOrder::Acquire => "acquire",
            MemOrder::Release => "release",
            MemOrder::AcqRel => "acq_rel",
            MemOrder::SeqCst => "seq_cst",
        };
        f.write_str(s)
    }
}

impl fmt::Display for VmOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VmOp::Mprotect => "mprotect",
            VmOp::CowBreak => "cow_break",
            VmOp::T2p => "t2p",
            VmOp::TwinCommit => "twin_commit",
            VmOp::Shootdown => "shootdown",
        };
        f.write_str(s)
    }
}

impl fmt::Display for RmwOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RmwOp::Add => "add",
            RmwOp::Sub => "sub",
            RmwOp::And => "and",
            RmwOp::Or => "or",
            RmwOp::Xor => "xor",
            RmwOp::Xchg => "xchg",
        };
        f.write_str(s)
    }
}

/// One-line assembly-like rendering, used by litmus-program listings in
/// divergence reports (`tmi-oracle`).
impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Load { addr, width, .. } => write!(f, "load.{width} {addr}"),
            Op::Store {
                addr, width, value, ..
            } => write!(f, "store.{width} {addr} <- {value:#x}"),
            Op::AtomicLoad {
                addr, width, order, ..
            } => write!(f, "atomic_load.{width}.{order} {addr}"),
            Op::AtomicStore {
                addr,
                width,
                value,
                order,
                ..
            } => write!(f, "atomic_store.{width}.{order} {addr} <- {value:#x}"),
            Op::AtomicRmw {
                addr,
                width,
                rmw,
                operand,
                order,
                ..
            } => write!(f, "atomic_{rmw}.{width}.{order} {addr}, {operand:#x}"),
            Op::Cas {
                addr,
                width,
                expected,
                desired,
                order,
                ..
            } => write!(
                f,
                "cas.{width}.{order} {addr}, {expected:#x} -> {desired:#x}"
            ),
            Op::Fence { order } => write!(f, "fence.{order}"),
            Op::AsmEnter => f.write_str("asm_enter"),
            Op::AsmExit => f.write_str("asm_exit"),
            Op::MutexLock { lock } => write!(f, "mutex_lock {lock}"),
            Op::MutexUnlock { lock } => write!(f, "mutex_unlock {lock}"),
            Op::SpinLock { lock } => write!(f, "spin_lock {lock}"),
            Op::SpinUnlock { lock } => write!(f, "spin_unlock {lock}"),
            Op::BarrierWait { barrier } => write!(f, "barrier_wait {barrier}"),
            Op::Compute { cycles } => write!(f, "compute {cycles}"),
            Op::Vm { op, addr } => write!(f, "vm.{op} {addr}"),
            Op::Exit => f.write_str("exit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_apply_semantics() {
        assert_eq!(RmwOp::Add.apply(10, 5, Width::W8), 15);
        assert_eq!(RmwOp::Sub.apply(10, 5, Width::W8), 5);
        assert_eq!(RmwOp::Xchg.apply(10, 5, Width::W8), 5);
        assert_eq!(RmwOp::And.apply(0b1100, 0b1010, Width::W8), 0b1000);
        assert_eq!(RmwOp::Or.apply(0b1100, 0b1010, Width::W8), 0b1110);
        assert_eq!(RmwOp::Xor.apply(0b1100, 0b1010, Width::W8), 0b0110);
    }

    #[test]
    fn rmw_truncates_to_width() {
        assert_eq!(RmwOp::Add.apply(0xff, 1, Width::W1), 0);
        assert_eq!(RmwOp::Add.apply(0xffff, 1, Width::W2), 0);
    }

    #[test]
    fn order_classification() {
        assert!(!MemOrder::Relaxed.is_ordering());
        for o in [
            MemOrder::Acquire,
            MemOrder::Release,
            MemOrder::AcqRel,
            MemOrder::SeqCst,
        ] {
            assert!(o.is_ordering());
        }
    }

    #[test]
    fn op_classification() {
        let pc = Pc(0x400000);
        let atomic = Op::AtomicRmw {
            pc,
            addr: VAddr::new(0),
            width: Width::W4,
            rmw: RmwOp::Add,
            operand: 1,
            order: MemOrder::Relaxed,
        };
        assert!(atomic.is_atomic());
        assert!(!atomic.is_sync());
        assert_eq!(atomic.pc(), Some(pc));
        let lock = Op::MutexLock {
            lock: VAddr::new(64),
        };
        assert!(lock.is_sync());
        assert_eq!(lock.pc(), None);
        assert!(!Op::Exit.is_atomic());
        let vm = Op::Vm {
            op: VmOp::Shootdown,
            addr: VAddr::new(0x1000),
        };
        assert!(!vm.is_atomic());
        assert!(!vm.is_sync());
        assert_eq!(vm.pc(), None);
        assert_eq!(vm.to_string(), "vm.shootdown 0x1000");
    }
}
