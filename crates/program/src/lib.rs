#![warn(missing_docs)]

//! # tmi-program — the simulated program representation
//!
//! TMI operates on unmodified x86 binaries: it disassembles the application
//! to learn which instruction addresses are loads and stores and how wide
//! they are (§3.1), and it relies on compiler-inserted callbacks to learn
//! where C/C++ *atomic* operations and inline *assembly* regions begin and
//! end (§3.4.2, code-centric consistency). This crate is the simulator's
//! stand-in for all of that:
//!
//! * [`Op`] — one dynamic instruction: plain loads/stores, C++11 atomics
//!   with explicit memory orders, CAS, fences, assembly-region markers,
//!   pthread-style synchronization, and local compute.
//! * [`Pc`] / [`InstrInfo`] / [`CodeRegistry`] — the *static* side: every
//!   memory-touching op carries a program counter, and the registry is the
//!   "binary" that maps PCs back to `{load/store, width, atomic?, asm?}` —
//!   exactly what TMI's disassembler recovers at detection time.
//! * [`ThreadProgram`] — a thread as a resumable state machine: the engine
//!   feeds each completed op's result back in and receives the next op,
//!   which lets workloads express data-dependent behaviour (e.g. histogram
//!   bins chosen by pixel values) without a full ISA interpreter.
//!
//! ```
//! use tmi_program::{CodeRegistry, InstrKind, Op, OpResult, SequenceProgram, ThreadProgram};
//! use tmi_machine::{VAddr, Width};
//!
//! let mut code = CodeRegistry::new();
//! let pc = code.instr("demo::store_x", InstrKind::Store, Width::W2);
//! let mut prog = SequenceProgram::new(vec![Op::Store {
//!     pc,
//!     addr: VAddr::new(0x1000),
//!     width: Width::W2,
//!     value: 0xAB00,
//! }]);
//! assert!(matches!(prog.next(OpResult::none()), Op::Store { .. }));
//! assert!(matches!(prog.next(OpResult::none()), Op::Exit));
//! ```

pub mod build;
pub mod code;
pub mod op;
pub mod program;

pub use build::OpBuilder;
pub use code::{CodeRegistry, InstrInfo, InstrKind, Pc};
pub use op::{width_mask, MemOrder, Op, RmwOp, VmOp};
pub use program::{OpResult, SequenceProgram, SharedLog, ThreadProgram};
