//! Chrome `trace_event` JSON export, loadable in `chrome://tracing` and
//! <https://ui.perfetto.dev>.
//!
//! Timestamps are microseconds (the format's unit) derived from simulated
//! cycles with pure integer arithmetic, so the exported bytes are a
//! deterministic function of the recorded events.

use std::fmt::Write as _;

use crate::json;
use crate::metrics::MetricsSnapshot;
use crate::phase::PhaseProfile;
use crate::trace::{EventKind, TraceEvent, GLOBAL_TID};

/// The `pid` stamped on every event (one simulated machine per trace).
const TRACE_PID: u64 = 1;

/// The viewer `tid` used for engine-global events ([`GLOBAL_TID`] itself is
/// out of range for trace viewers).
const VIEWER_GLOBAL_TID: u64 = 9999;

/// Renders cycles as a microsecond timestamp with fixed nanosecond
/// precision (three decimals), via u128 so large cycle counts cannot
/// overflow.
fn cycles_to_us(cycles: u64, clock_hz: u64) -> String {
    let ns = (cycles as u128 * 1_000_000_000) / clock_hz.max(1) as u128;
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn viewer_tid(tid: u64) -> u64 {
    if tid == GLOBAL_TID {
        VIEWER_GLOBAL_TID
    } else {
        tid
    }
}

fn write_args(out: &mut String, args: &[(&'static str, u64)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json::string(k), v);
    }
    out.push('}');
}

/// Exports `events` (plus the phase breakdown and an optional metrics
/// snapshot) as a Chrome `trace_event` JSON document.
///
/// `clock_hz` is the simulated clock rate used to convert cycle stamps to
/// the format's microsecond timestamps. The output is byte-deterministic
/// for a given input.
pub fn export_trace(
    events: &[TraceEvent],
    phases: &PhaseProfile,
    clock_hz: u64,
    metrics: Option<&MetricsSnapshot>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"displayTimeUnit\": \"ns\",\n");

    // Viewer-ignored side data: the clock, the per-phase cycle breakdown
    // and (optionally) the full metrics snapshot of the run.
    let _ = write!(out, "  \"otherData\": {{\n    \"clock_hz\": {clock_hz}");
    let _ = write!(
        out,
        ",\n    \"phase_cycles\": {{{}}}",
        phases
            .iter()
            .map(|(p, c)| format!("{}: {}", json::string(p.name()), c))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if let Some(snap) = metrics {
        let _ = write!(out, ",\n    \"metrics\": {}", snap.to_json("      "));
    }
    out.push_str("\n  },\n");

    out.push_str("  \"traceEvents\": [\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": {}, \"cat\": {}, ",
            json::string(ev.name),
            json::string(ev.cat)
        );
        match ev.kind {
            EventKind::Instant => {
                let _ = write!(out, "\"ph\": \"i\", \"s\": \"t\", ");
            }
            EventKind::Complete { dur_cycles } => {
                let _ = write!(
                    out,
                    "\"ph\": \"X\", \"dur\": {}, ",
                    cycles_to_us(dur_cycles, clock_hz)
                );
            }
        }
        let _ = write!(
            out,
            "\"ts\": {}, \"pid\": {}, \"tid\": {}, \"args\": ",
            cycles_to_us(ev.cycle, clock_hz),
            TRACE_PID,
            viewer_tid(ev.tid)
        );
        // Cycle stamps ride along in args so the exact simulated time
        // survives the µs rounding.
        let mut args: Vec<(&'static str, u64)> = vec![("cycle", ev.cycle)];
        if let EventKind::Complete { dur_cycles } = ev.kind {
            args.push(("dur_cycles", dur_cycles));
        }
        args.extend_from_slice(&ev.args);
        write_args(&mut out, &args);
        out.push('}');
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use crate::trace::Tracer;

    fn sample() -> (Vec<TraceEvent>, PhaseProfile) {
        let t = Tracer::enabled();
        t.instant(
            "repair.detect",
            "detect",
            GLOBAL_TID,
            3_400,
            &[("lines", 2)],
        );
        t.span("repair.commit", "repair", 3, 6_800, 3_400, &[("pages", 1)]);
        t.phase(Phase::Commit, 3_400);
        (t.take_events(), t.phases())
    }

    #[test]
    fn exports_valid_json_with_cycle_exact_args() {
        let (events, phases) = sample();
        let doc = export_trace(&events, &phases, 3_400_000_000, None);
        let v = json::parse(&doc).expect("valid JSON");
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 2);
        // 3400 cycles at 3.4 GHz is exactly 1 µs.
        assert_eq!(evs[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            evs[0].get("args").unwrap().get("cycle").unwrap().as_f64(),
            Some(3400.0)
        );
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(evs[1].get("dur").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            v.get("otherData")
                .unwrap()
                .get("phase_cycles")
                .unwrap()
                .get("commit")
                .unwrap()
                .as_f64(),
            Some(3400.0)
        );
    }

    #[test]
    fn export_is_byte_deterministic() {
        let (e1, p1) = sample();
        let (e2, p2) = sample();
        assert_eq!(
            export_trace(&e1, &p1, 3_400_000_000, None),
            export_trace(&e2, &p2, 3_400_000_000, None)
        );
    }

    #[test]
    fn timestamps_survive_large_cycle_counts() {
        // ~10^13 cycles would overflow u64 nanosecond math; u128 must not.
        let ev = TraceEvent {
            name: "x",
            cat: "c",
            tid: 0,
            cycle: 10_000_000_000_000,
            kind: EventKind::Instant,
            args: vec![],
        };
        let doc = export_trace(&[ev], &PhaseProfile::new(), 3_400_000_000, None);
        json::parse(&doc).expect("still valid");
    }
}
