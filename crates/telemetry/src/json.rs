//! Minimal hand-rolled JSON support: a writer for the exporters and a
//! recursive-descent parser for the schema gate and tests.
//!
//! The workspace builds offline with no serde; this mirrors the escaping
//! rules of the bench harness's report writer so every JSON artifact in the
//! repo agrees on formatting.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal, including the quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number. Always keeps a decimal point so the
/// value reads back as floating-point; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved; duplicate keys keep the last.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Returns a message with a byte offset on
/// malformed input or trailing garbage.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed by our own
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_parser_reads_back() {
        let s = "a\"b\\c\nd\te\u{1}";
        let lit = string(s);
        let parsed = parse(&lit).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn f64_formatting_is_json_safe() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.125), "0.125");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(parse(&fmt_f64(1e300)).unwrap().as_f64(), Some(1e300));
    }
}
