//! The per-phase cycle profiler: attributes simulated cycles to the stages
//! of a repair episode (the paper's Fig. 9-style overhead breakdown).

use crate::metrics::{MetricSink, MetricSource};

/// A stage of the repair pipeline that simulated cycles can be attributed
/// to. The profiler is observational: the cycles were charged by the
/// runtime through its normal cost model and are merely *labelled* here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Sampling-based detection: PEBS capture and detection-thread ticks.
    Detect,
    /// Arming repair: stop-the-world T2P conversion and COW page arming.
    Arm,
    /// Handling faults on armed pages: COW breaks, retry backoff,
    /// degradations.
    FaultHandling,
    /// PTSB commits at synchronization operations.
    Commit,
    /// Dismantling repair: rollback and efficacy-revert merges.
    Merge,
}

impl Phase {
    /// Every phase, in stable order.
    pub const ALL: [Phase; 5] = [
        Phase::Detect,
        Phase::Arm,
        Phase::FaultHandling,
        Phase::Commit,
        Phase::Merge,
    ];

    /// The stable metric/export name of this phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Detect => "detect",
            Phase::Arm => "arm",
            Phase::FaultHandling => "fault_handling",
            Phase::Commit => "commit",
            Phase::Merge => "merge",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Detect => 0,
            Phase::Arm => 1,
            Phase::FaultHandling => 2,
            Phase::Commit => 3,
            Phase::Merge => 4,
        }
    }
}

/// Accumulated cycles per [`Phase`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    cycles: [u64; 5],
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes `cycles` to `phase`.
    pub fn add(&mut self, phase: Phase, cycles: u64) {
        self.cycles[phase.index()] += cycles;
    }

    /// Cycles attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.cycles[phase.index()]
    }

    /// Cycles attributed across all phases.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Iterates `(phase, cycles)` in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.into_iter().map(|p| (p, self.get(p)))
    }
}

impl MetricSource for PhaseProfile {
    fn metrics(&self, out: &mut MetricSink) {
        for (phase, cycles) in self.iter() {
            out.u64(&format!("{}_cycles", phase.name()), cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;

    #[test]
    fn accumulates_and_exports() {
        let mut p = PhaseProfile::new();
        p.add(Phase::Arm, 100);
        p.add(Phase::Commit, 40);
        p.add(Phase::Commit, 2);
        assert_eq!(p.get(Phase::Commit), 42);
        assert_eq!(p.total(), 142);
        let snap = MetricsSnapshot::of(&p);
        assert_eq!(snap.u64("arm_cycles"), 100);
        assert_eq!(snap.u64("commit_cycles"), 42);
        assert_eq!(snap.u64("detect_cycles"), 0);
        assert_eq!(snap.len(), 5);
    }
}
