//! The structured event bus: a cloneable [`Tracer`] handle that runtime
//! components emit spans and instants into.
//!
//! A disabled tracer is a `None`; every emit is one branch and no
//! allocation, so instrumented code is zero-cost unless a run opts in.
//! Handles are reference-counted (each simulated run lives on a single host
//! thread), so the engine, runtime and repair manager can all share one
//! buffer.

use std::cell::RefCell;
use std::rc::Rc;

use crate::phase::{Phase, PhaseProfile};

/// The shape of a [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A point-in-time marker (Chrome `ph: "i"`).
    Instant,
    /// A span covering `dur_cycles` starting at the event's cycle
    /// (Chrome `ph: "X"`).
    Complete {
        /// Span length in simulated cycles.
        dur_cycles: u64,
    },
}

/// One recorded event, stamped with simulated cycles and the acting
/// thread id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (stable, e.g. `"repair.commit"`).
    pub name: &'static str,
    /// Category for trace-viewer filtering (e.g. `"repair"`).
    pub cat: &'static str,
    /// Acting thread id (`u64::MAX` for engine-global events).
    pub tid: u64,
    /// Simulated cycle at which the event happened (span start for
    /// [`EventKind::Complete`]).
    pub cycle: u64,
    /// Instant or span.
    pub kind: EventKind,
    /// Numeric payload, shown in the viewer's args pane.
    pub args: Vec<(&'static str, u64)>,
}

/// The thread id [`Tracer`] stamps on events with no single acting thread.
pub const GLOBAL_TID: u64 = u64::MAX;

#[derive(Debug, Default)]
struct TraceBuf {
    events: Vec<TraceEvent>,
    phases: PhaseProfile,
}

/// A cloneable handle to a shared trace buffer, or a no-op when disabled.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceBuf>>>,
}

impl Tracer {
    /// A disabled tracer: every emit is a single branch.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer with a fresh buffer. Clones share the buffer.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceBuf::default()))),
        }
    }

    /// True if events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records an instant event.
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        tid: u64,
        cycle: u64,
        args: &[(&'static str, u64)],
    ) {
        if let Some(buf) = &self.inner {
            buf.borrow_mut().events.push(TraceEvent {
                name,
                cat,
                tid,
                cycle,
                kind: EventKind::Instant,
                args: args.to_vec(),
            });
        }
    }

    /// Records a complete span of `dur_cycles` starting at `cycle`.
    pub fn span(
        &self,
        name: &'static str,
        cat: &'static str,
        tid: u64,
        cycle: u64,
        dur_cycles: u64,
        args: &[(&'static str, u64)],
    ) {
        if let Some(buf) = &self.inner {
            buf.borrow_mut().events.push(TraceEvent {
                name,
                cat,
                tid,
                cycle,
                kind: EventKind::Complete { dur_cycles },
                args: args.to_vec(),
            });
        }
    }

    /// Attributes `cycles` to `phase` in the shared [`PhaseProfile`].
    pub fn phase(&self, phase: Phase, cycles: u64) {
        if let Some(buf) = &self.inner {
            buf.borrow_mut().phases.add(phase, cycles);
        }
    }

    /// Number of events recorded so far (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |b| b.borrow().events.len())
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the phase profile accumulated so far.
    pub fn phases(&self) -> PhaseProfile {
        self.inner
            .as_ref()
            .map_or_else(PhaseProfile::new, |b| b.borrow().phases)
    }

    /// Drains the recorded events, leaving the phase profile in place.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |b| std::mem::take(&mut b.borrow_mut().events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.instant("x", "c", 0, 1, &[]);
        t.span("y", "c", 0, 1, 5, &[]);
        t.phase(Phase::Commit, 100);
        assert!(!t.is_enabled());
        assert!(t.is_empty());
        assert_eq!(t.phases().total(), 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled();
        let u = t.clone();
        t.instant("a", "c", 1, 10, &[("k", 7)]);
        u.span("b", "c", 2, 20, 5, &[]);
        u.phase(Phase::Arm, 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.phases().get(Phase::Arm), 3);
        let events = t.take_events();
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].args, vec![("k", 7)]);
        assert_eq!(events[1].kind, EventKind::Complete { dur_cycles: 5 });
        assert!(u.is_empty(), "take drains the shared buffer");
        assert_eq!(u.phases().get(Phase::Arm), 3, "phases survive the drain");
    }
}
