//! Unified telemetry for the TMI reproduction: a structured event bus, a
//! metrics registry, a per-phase cycle profiler and exporters.
//!
//! The simulation's observability used to be ~10 ad-hoc `*Stats` structs with
//! no common export surface and no timeline view of *when* the runtime made
//! its decisions. This crate gives every counter owner one API:
//!
//! - [`MetricSource`] / [`MetricSink`] / [`MetricsSnapshot`] — the metrics
//!   registry. Every `*Stats` struct implements [`MetricSource`], and any
//!   composition of sources flattens into one stable-named
//!   `name → u64/f64` snapshot that exporters, reports and tests consume.
//! - [`Tracer`] — the structured event bus. Zero-cost when disabled (a
//!   disabled tracer is a `None` and every emit is one branch); when enabled
//!   it records [`TraceEvent`]s stamped with simulated cycles and thread ids,
//!   plus a [`PhaseProfile`] attributing cycles to repair phases.
//! - [`chrome::export_trace`] — Chrome `trace_event` JSON, loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! - [`json`] — a hand-rolled JSON writer/parser (the workspace builds
//!   offline with no serde) used by the exporters and the schema gate.
//!
//! Telemetry is purely observational: nothing in this crate ever charges
//! simulated cycles, so enabling a tracer cannot perturb a run.

#![warn(missing_docs)]

pub mod chrome;
pub mod json;
mod metrics;
mod phase;
mod trace;

pub use metrics::{MetricSink, MetricSource, MetricValue, MetricsSnapshot};
pub use phase::{Phase, PhaseProfile};
pub use trace::{EventKind, TraceEvent, Tracer, GLOBAL_TID};
