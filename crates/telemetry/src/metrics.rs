//! The metrics registry: [`MetricSource`], [`MetricSink`] and the flat
//! [`MetricsSnapshot`] they produce.

use std::collections::BTreeMap;
use std::fmt;

use crate::json;

/// A single exported metric value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// An exact counter.
    U64(u64),
    /// A derived ratio or rate.
    F64(f64),
}

impl MetricValue {
    /// The value as `u64`, truncating an `F64`.
    pub fn as_u64(self) -> u64 {
        match self {
            MetricValue::U64(v) => v,
            MetricValue::F64(v) => v as u64,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            MetricValue::U64(v) => v as f64,
            MetricValue::F64(v) => v,
        }
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::U64(v) => write!(f, "{v}"),
            MetricValue::F64(v) => write!(f, "{}", json::fmt_f64(*v)),
        }
    }
}

/// Anything that can report its counters into a [`MetricSink`].
///
/// Implemented by every `*Stats` struct in the workspace. Names pushed into
/// the sink must be stable across runs and releases — they are the export
/// schema that `scripts/check.sh` validates.
pub trait MetricSource {
    /// Reports this source's metrics into `out`.
    fn metrics(&self, out: &mut MetricSink);
}

/// Collects `(name, value)` pairs from [`MetricSource`]s, with dotted
/// prefix scoping.
///
/// Registering the same fully-qualified name twice panics: duplicate names
/// would silently shadow each other in the flat snapshot.
#[derive(Debug, Default)]
pub struct MetricSink {
    prefix: String,
    entries: BTreeMap<String, MetricValue>,
}

impl MetricSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter under the current prefix.
    pub fn u64(&mut self, name: &str, value: u64) {
        self.push(name, MetricValue::U64(value));
    }

    /// Registers a derived value under the current prefix.
    pub fn f64(&mut self, name: &str, value: f64) {
        self.push(name, MetricValue::F64(value));
    }

    /// Collects `source` with `prefix.` prepended to every name it
    /// registers.
    pub fn source(&mut self, prefix: &str, source: &dyn MetricSource) {
        let saved = self.prefix.len();
        self.prefix.push_str(prefix);
        self.prefix.push('.');
        source.metrics(self);
        self.prefix.truncate(saved);
    }

    fn push(&mut self, name: &str, value: MetricValue) {
        let full = format!("{}{}", self.prefix, name);
        assert!(
            self.entries.insert(full.clone(), value).is_none(),
            "duplicate metric name registered: {full}"
        );
    }

    /// Finalizes the sink into a snapshot.
    pub fn finish(self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self.entries,
        }
    }
}

/// One flat, deterministically-ordered `name → value` view of a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Snapshots a single source (no prefix).
    pub fn of(source: &dyn MetricSource) -> Self {
        let mut sink = MetricSink::new();
        source.metrics(&mut sink);
        sink.finish()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no metrics were registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a metric up by fully-qualified name.
    pub fn get(&self, name: &str) -> Option<MetricValue> {
        self.entries.get(name).copied()
    }

    /// A counter by name, `0` if absent.
    pub fn u64(&self, name: &str) -> u64 {
        self.get(name).map(MetricValue::as_u64).unwrap_or(0)
    }

    /// A value by name as `f64`, `0.0` if absent.
    pub fn f64(&self, name: &str) -> f64 {
        self.get(name).map(MetricValue::as_f64).unwrap_or(0.0)
    }

    /// Iterates `(name, value)` in stable (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricValue)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All registered names in stable order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Collects `source` into this snapshot under `prefix.`, after the
    /// fact. Panics on a name collision, like [`MetricSink`] does.
    pub fn absorb(&mut self, prefix: &str, source: &dyn MetricSource) {
        let mut sink = MetricSink::new();
        sink.source(prefix, source);
        for (name, value) in sink.finish().entries {
            assert!(
                self.entries.insert(name.clone(), value).is_none(),
                "duplicate metric name registered: {name}"
            );
        }
    }

    /// The per-name difference `self - earlier`: counters saturate at zero,
    /// derived values subtract. Names present in only one snapshot keep
    /// their value from `self` (or are dropped if only in `earlier`).
    pub fn delta(&self, earlier: &Self) -> Self {
        let mut entries = BTreeMap::new();
        for (name, &now) in &self.entries {
            let v = match (now, earlier.entries.get(name)) {
                (MetricValue::U64(a), Some(&MetricValue::U64(b))) => {
                    MetricValue::U64(a.saturating_sub(b))
                }
                (now, Some(&before)) => MetricValue::F64(now.as_f64() - before.as_f64()),
                (now, None) => now,
            };
            entries.insert(name.clone(), v);
        }
        MetricsSnapshot { entries }
    }

    /// Renders the snapshot as a JSON object, one `"name": value` member
    /// per metric, in stable order. `indent` is prepended to every member
    /// line; pass `""` for a compact single-line object.
    pub fn to_json(&self, indent: &str) -> String {
        if self.entries.is_empty() {
            return "{}".to_string();
        }
        let (nl, pad) = if indent.is_empty() {
            ("", String::new())
        } else {
            ("\n", indent.to_string())
        };
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push_str(&json::string(name));
            out.push_str(": ");
            match value {
                MetricValue::U64(v) => out.push_str(&v.to_string()),
                MetricValue::F64(v) => out.push_str(&json::fmt_f64(*v)),
            }
        }
        out.push_str(nl);
        if !indent.is_empty() {
            // Closing brace sits one level out from the members.
            let outdent = &indent[..indent.len().saturating_sub(2)];
            out.push_str(outdent);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Inner;
    impl MetricSource for Inner {
        fn metrics(&self, out: &mut MetricSink) {
            out.u64("count", 3);
            out.f64("rate", 0.5);
        }
    }

    #[test]
    fn prefixes_nest_and_restore() {
        let mut sink = MetricSink::new();
        sink.source("a", &Inner);
        sink.source("b", &Inner);
        sink.u64("top", 1);
        let snap = sink.finish();
        let names: Vec<&str> = snap.names().collect();
        assert_eq!(names, ["a.count", "a.rate", "b.count", "b.rate", "top"]);
        assert_eq!(snap.u64("a.count"), 3);
        assert_eq!(snap.f64("b.rate"), 0.5);
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_panic() {
        let mut sink = MetricSink::new();
        sink.u64("x", 1);
        sink.u64("x", 2);
    }

    #[test]
    fn delta_saturates_counters() {
        let mut a = MetricSink::new();
        a.u64("n", 10);
        a.f64("r", 1.5);
        let a = a.finish();
        let mut b = MetricSink::new();
        b.u64("n", 4);
        b.f64("r", 2.0);
        let b = b.finish();
        let d = a.delta(&b);
        assert_eq!(d.u64("n"), 6);
        assert_eq!(d.f64("r"), -0.5);
        let under = b.delta(&a);
        assert_eq!(under.u64("n"), 0, "counters saturate");
    }

    #[test]
    fn json_round_trips_through_parser() {
        let snap = MetricsSnapshot::of(&Inner);
        let compact = snap.to_json("");
        let parsed = crate::json::parse(&compact).expect("valid JSON");
        assert_eq!(parsed.get("count").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(parsed.get("rate").and_then(|v| v.as_f64()), Some(0.5));
        let pretty = snap.to_json("    ");
        crate::json::parse(&pretty).expect("indented form is valid too");
    }
}
