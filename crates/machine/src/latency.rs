//! The access latency model, in core cycles.
//!
//! Values approximate the paper's 3.4 GHz Haswell (i7-4770K): a private
//! cache hit costs a handful of cycles, an LLC hit tens, a cache-to-cache
//! transfer of a remote-modified line (the HITM case) roughly 70, and DRAM
//! low hundreds. The absolute values matter less than their *ratios* — the
//! order-of-magnitude gap between a local hit and a HITM transfer is what
//! makes false sharing an order-of-magnitude slowdown (§1).

/// Cycle costs for each kind of memory-system outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Hit in the local private cache.
    pub local_hit: u64,
    /// Clean transfer from a sibling private cache (remote E/S).
    pub remote_clean: u64,
    /// Dirty transfer from a sibling private cache (remote M — the HITM).
    pub hitm: u64,
    /// Hit in the shared LLC.
    pub llc_hit: u64,
    /// Full miss to DRAM.
    pub dram: u64,
    /// Extra cost of an invalidating upgrade (S→M) or RFO broadcast.
    pub invalidate: u64,
    /// Extra cost of a locked/atomic operation (bus-lock-free LOCK prefix).
    pub atomic_extra: u64,
    /// Cost of a full memory fence.
    pub fence: u64,
    /// Queuing penalty added per unit of HITM *streak* on a line: sustained
    /// ping-pong saturates the coherence fabric, so each transfer in a
    /// storm costs more than an isolated one (this is what makes false
    /// sharing "slow memory accesses by an order of magnitude", §1).
    pub hitm_queuing_step: u64,
    /// Streak cap for the queuing penalty.
    pub hitm_queuing_cap: u64,
}

impl LatencyModel {
    /// The default Haswell-like model used in all experiments.
    pub const fn haswell() -> Self {
        LatencyModel {
            local_hit: 4,
            remote_clean: 45,
            hitm: 70,
            llc_hit: 30,
            dram: 180,
            invalidate: 20,
            atomic_extra: 18,
            fence: 25,
            hitm_queuing_step: 40,
            hitm_queuing_cap: 8,
        }
    }

    /// Simulated clock frequency in Hz (3.4 GHz, matching the repair
    /// machine in §4.1). Used to convert cycles to seconds in reports.
    pub const CLOCK_HZ: u64 = 3_400_000_000;

    /// Converts a cycle count to seconds at [`Self::CLOCK_HZ`].
    pub fn cycles_to_secs(cycles: u64) -> f64 {
        cycles as f64 / Self::CLOCK_HZ as f64
    }

    /// Converts seconds to cycles at [`Self::CLOCK_HZ`].
    pub fn secs_to_cycles(secs: f64) -> u64 {
        (secs * Self::CLOCK_HZ as f64) as u64
    }

    /// Converts microseconds to cycles.
    pub fn micros_to_cycles(us: f64) -> u64 {
        Self::secs_to_cycles(us * 1e-6)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hitm_is_order_of_magnitude_slower_than_hit() {
        let m = LatencyModel::haswell();
        assert!(m.hitm >= 10 * m.local_hit);
        assert!(m.dram > m.llc_hit);
        assert!(m.llc_hit > m.local_hit);
    }

    #[test]
    fn time_conversions_roundtrip() {
        let cycles = 3_400_000; // 1 ms
        let secs = LatencyModel::cycles_to_secs(cycles);
        assert!((secs - 1e-3).abs() < 1e-12);
        assert_eq!(LatencyModel::secs_to_cycles(secs), cycles);
        assert_eq!(LatencyModel::micros_to_cycles(1000.0), cycles);
    }
}
