//! Aggregate machine statistics.

use tmi_telemetry::{MetricSink, MetricSource};

/// Counters accumulated by [`crate::Machine`] across a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Total memory accesses issued.
    pub accesses: u64,
    /// Loads (including the read half of RMWs).
    pub loads: u64,
    /// Stores (including the write half of RMWs).
    pub stores: u64,
    /// Hits in the requesting core's private cache.
    pub local_hits: u64,
    /// Transfers of a clean line from a sibling cache.
    pub remote_clean_transfers: u64,
    /// HITM events: requests that hit a remote modified line.
    pub hitm_events: u64,
    /// HITM events triggered by loads.
    pub hitm_loads: u64,
    /// HITM events triggered by stores.
    pub hitm_stores: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// Misses all the way to DRAM.
    pub dram_accesses: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Dirty evictions (writebacks) from private caches.
    pub writebacks: u64,
}

impl MachineStats {
    /// Fraction of accesses that generated a HITM event.
    pub fn hitm_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hitm_events as f64 / self.accesses as f64
        }
    }
}

impl MetricSource for MachineStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.u64("accesses", self.accesses);
        out.u64("loads", self.loads);
        out.u64("stores", self.stores);
        out.u64("local_hits", self.local_hits);
        out.u64("remote_clean_transfers", self.remote_clean_transfers);
        out.u64("hitm_events", self.hitm_events);
        out.u64("hitm_loads", self.hitm_loads);
        out.u64("hitm_stores", self.hitm_stores);
        out.u64("llc_hits", self.llc_hits);
        out.u64("dram_accesses", self.dram_accesses);
        out.u64("invalidations", self.invalidations);
        out.u64("writebacks", self.writebacks);
        out.f64("hitm_rate", self.hitm_rate());
    }
}

/// Counters for the sharer/owner directory accelerator in
/// [`crate::Machine`]. Purely observational: the directory answers the
/// same queries the broadcast snoop would, so these counters measure how
/// much snoop traffic the directory absorbed, not any behavioral change.
/// All zero when the directory is disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirStats {
    /// Remote queries consulted against a non-empty directory.
    pub probes: u64,
    /// Probes that found the line tracked — the broadcast snoop the
    /// directory answer replaced. Untracked lines fall back to broadcast.
    pub hits: u64,
    /// Directory entries created (lazy promotions plus toggle rebuilds).
    pub installs: u64,
    /// Tracked lines whose sharer set drained to empty (last private
    /// copy evicted). Sticky entries are retained, so this counts drain
    /// events rather than table deletions.
    pub removals: u64,
    /// Lazy-activation promotions: broadcast-tracked lines whose sharer
    /// count first exceeded two and moved under the directory.
    pub promotions: u64,
}

impl MetricSource for DirStats {
    fn metrics(&self, out: &mut MetricSink) {
        out.u64("probes", self.probes);
        out.u64("hits", self.hits);
        out.u64("installs", self.installs);
        out.u64("removals", self.removals);
        out.u64("promotions", self.promotions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hitm_rate_handles_empty() {
        assert_eq!(MachineStats::default().hitm_rate(), 0.0);
        let s = MachineStats {
            accesses: 10,
            hitm_events: 5,
            ..Default::default()
        };
        assert!((s.hitm_rate() - 0.5).abs() < 1e-12);
    }
}
