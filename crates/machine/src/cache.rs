//! Set-associative cache tag arrays with MESI state per line.
//!
//! Only *metadata* lives here (tags, MESI states, LRU order) — line data is
//! in [`crate::PhysMem`]. That is sufficient because the execution engine
//! linearizes memory operations, so the value plane never diverges from what
//! a real coherent machine would observe for the interleaving being
//! simulated.

use crate::addr::LineAddr;

/// Coherence state of a line in a private cache (the MESI protocol, §2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MesiState {
    /// Writable, dirty; SWMR guarantees no other cache holds the line.
    Modified,
    /// Writable-on-upgrade, clean, exclusive.
    Exclusive,
    /// Read-only, possibly replicated in other caches.
    Shared,
}

/// Geometry of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way L1-like private cache (64 sets × 8 ways × 64 B).
    pub const fn l1() -> Self {
        CacheConfig { sets: 64, ways: 8 }
    }

    /// A 256 KiB, 8-way L2-like private cache. We model one level of
    /// private cache; using L2 capacity keeps working sets resident the way
    /// they are on the paper's Haswell parts.
    pub const fn private_default() -> Self {
        CacheConfig { sets: 512, ways: 8 }
    }

    /// An 8 MiB, 16-way shared LLC.
    pub const fn llc_default() -> Self {
        CacheConfig {
            sets: 8192,
            ways: 16,
        }
    }

    /// Total capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * crate::addr::LINE_SIZE
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: LineAddr,
    state: MesiState,
    /// Monotone stamp for LRU replacement.
    stamp: u64,
}

/// A set-associative tag array.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
}

/// What happened when a line was inserted into a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insertion {
    /// There was room (or the line was already present and was updated).
    Placed,
    /// A victim line was evicted to make room.
    Evicted {
        /// The evicted line.
        line: LineAddr,
        /// Whether the victim was dirty (Modified) and thus written back.
        dirty: bool,
    },
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways > 0, "ways must be positive");
        Cache {
            config,
            sets: (0..config.sets).map(|_| Vec::new()).collect(),
            tick: 0,
        }
    }

    /// Returns the cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.config.sets - 1)
    }

    /// Returns the MESI state of `line`, if present, refreshing its LRU
    /// position.
    pub fn lookup(&mut self, line: LineAddr) -> Option<MesiState> {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        for way in set.iter_mut() {
            if way.tag == line {
                way.stamp = tick;
                return Some(way.state);
            }
        }
        None
    }

    /// Returns the MESI state of `line` without touching LRU state (used by
    /// snoop probes from other cores, which do not constitute a use).
    pub fn peek(&self, line: LineAddr) -> Option<MesiState> {
        let idx = self.set_index(line);
        self.sets[idx]
            .iter()
            .find(|w| w.tag == line)
            .map(|w| w.state)
    }

    /// Sets the state of a line already present.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn set_state(&mut self, line: LineAddr, state: MesiState) {
        let idx = self.set_index(line);
        let way = self.sets[idx]
            .iter_mut()
            .find(|w| w.tag == line)
            .expect("set_state on absent line");
        way.state = state;
    }

    /// Removes a line (snoop invalidation), returning its former state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<MesiState> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        set.iter()
            .position(|w| w.tag == line)
            .map(|pos| set.swap_remove(pos).state)
    }

    /// Inserts `line` with `state`, updating in place if already present.
    /// Returns whether a victim had to be evicted.
    pub fn insert(&mut self, line: LineAddr, state: MesiState) -> Insertion {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.config.ways;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(way) = set.iter_mut().find(|w| w.tag == line) {
            way.state = state;
            way.stamp = tick;
            return Insertion::Placed;
        }
        if set.len() < ways {
            set.push(Way {
                tag: line,
                state,
                stamp: tick,
            });
            return Insertion::Placed;
        }
        // Evict the LRU way.
        let (victim_pos, _) = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.stamp)
            .expect("non-empty set");
        let victim = set[victim_pos];
        set[victim_pos] = Way {
            tag: line,
            state,
            stamp: tick,
        };
        Insertion::Evicted {
            line: victim.tag,
            dirty: victim.state == MesiState::Modified,
        }
    }

    /// Number of resident lines (for memory accounting and tests).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Drops every resident line (e.g. when a simulated process is torn
    /// down in tests). Dirty data is already in physical memory, so no
    /// writeback is needed.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut c = Cache::new(CacheConfig { sets: 4, ways: 2 });
        assert_eq!(c.lookup(line(5)), None);
        c.insert(line(5), MesiState::Exclusive);
        assert_eq!(c.lookup(line(5)), Some(MesiState::Exclusive));
    }

    #[test]
    fn state_transitions() {
        let mut c = Cache::new(CacheConfig { sets: 4, ways: 2 });
        c.insert(line(1), MesiState::Shared);
        c.set_state(line(1), MesiState::Modified);
        assert_eq!(c.peek(line(1)), Some(MesiState::Modified));
        assert_eq!(c.invalidate(line(1)), Some(MesiState::Modified));
        assert_eq!(c.peek(line(1)), None);
    }

    #[test]
    fn lru_eviction_picks_least_recent() {
        let mut c = Cache::new(CacheConfig { sets: 1, ways: 2 });
        c.insert(line(1), MesiState::Exclusive);
        c.insert(line(2), MesiState::Modified);
        // Touch line 1 so line 2 is LRU.
        assert!(c.lookup(line(1)).is_some());
        let ins = c.insert(line(3), MesiState::Exclusive);
        assert_eq!(
            ins,
            Insertion::Evicted {
                line: line(2),
                dirty: true
            }
        );
        assert!(c.peek(line(1)).is_some());
        assert!(c.peek(line(2)).is_none());
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut c = Cache::new(CacheConfig { sets: 1, ways: 1 });
        c.insert(line(1), MesiState::Shared);
        assert_eq!(c.insert(line(1), MesiState::Modified), Insertion::Placed);
        assert_eq!(c.peek(line(1)), Some(MesiState::Modified));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn sets_partition_lines() {
        let mut c = Cache::new(CacheConfig { sets: 2, ways: 1 });
        // Lines 0 and 2 map to set 0; line 1 maps to set 1.
        c.insert(line(0), MesiState::Exclusive);
        c.insert(line(1), MesiState::Exclusive);
        let ins = c.insert(line(2), MesiState::Exclusive);
        assert!(matches!(ins, Insertion::Evicted { line: l, .. } if l == line(0)));
        assert!(c.peek(line(1)).is_some(), "other set is untouched");
    }

    #[test]
    fn capacity_bytes() {
        assert_eq!(CacheConfig::l1().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheConfig::private_default().capacity_bytes(), 256 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = Cache::new(CacheConfig { sets: 3, ways: 1 });
    }
}
