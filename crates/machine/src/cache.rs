//! Set-associative cache tag arrays with MESI state per line.
//!
//! Only *metadata* lives here (tags, MESI states, LRU order) — line data is
//! in [`crate::PhysMem`]. That is sufficient because the execution engine
//! linearizes memory operations, so the value plane never diverges from what
//! a real coherent machine would observe for the interleaving being
//! simulated.
//!
//! The tag array is one contiguous `Box<[Way]>` (sets × ways, row-major):
//! a lookup computes the set's offset and scans a fixed-size slice, never
//! chasing a per-set `Vec` pointer and never allocating. Replacement is
//! exact LRU via a monotone stamp; stamps are assigned from a per-cache tick
//! that advances on every lookup/insert, so every resident way holds a
//! distinct stamp and the LRU victim is unique — replacement decisions do
//! not depend on scan order within a set.

use crate::addr::LineAddr;

/// Coherence state of a line in a private cache (the MESI protocol, §2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MesiState {
    /// Writable, dirty; SWMR guarantees no other cache holds the line.
    Modified,
    /// Writable-on-upgrade, clean, exclusive.
    Exclusive,
    /// Read-only, possibly replicated in other caches.
    Shared,
}

/// Geometry of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way L1-like private cache (64 sets × 8 ways × 64 B).
    pub const fn l1() -> Self {
        CacheConfig { sets: 64, ways: 8 }
    }

    /// A 256 KiB, 8-way L2-like private cache. We model one level of
    /// private cache; using L2 capacity keeps working sets resident the way
    /// they are on the paper's Haswell parts.
    pub const fn private_default() -> Self {
        CacheConfig { sets: 512, ways: 8 }
    }

    /// An 8 MiB, 16-way shared LLC.
    pub const fn llc_default() -> Self {
        CacheConfig {
            sets: 8192,
            ways: 16,
        }
    }

    /// Total capacity in bytes.
    pub const fn capacity_bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * crate::addr::LINE_SIZE
    }
}

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: LineAddr,
    state: MesiState,
    /// Monotone stamp for LRU replacement.
    stamp: u64,
    valid: bool,
}

impl Way {
    const INVALID: Way = Way {
        tag: LineAddr::new(0),
        state: MesiState::Shared,
        stamp: 0,
        valid: false,
    };
}

/// A set-associative tag array.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `sets * ways` slots, row-major: set `s` occupies
    /// `ways[s * config.ways .. (s + 1) * config.ways]`.
    ways: Box<[Way]>,
    tick: u64,
}

/// What happened when a line was inserted into a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insertion {
    /// There was room (or the line was already present and was updated).
    Placed,
    /// A victim line was evicted to make room.
    Evicted {
        /// The evicted line.
        line: LineAddr,
        /// Whether the victim was dirty (Modified) and thus written back.
        dirty: bool,
    },
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways > 0, "ways must be positive");
        Cache {
            config,
            ways: vec![Way::INVALID; config.sets * config.ways].into_boxed_slice(),
            tick: 0,
        }
    }

    /// Returns the cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line.raw() as usize) & (self.config.sets - 1);
        let base = set * self.config.ways;
        base..base + self.config.ways
    }

    /// Returns the MESI state of `line`, if present, refreshing its LRU
    /// position.
    #[inline]
    pub fn lookup(&mut self, line: LineAddr) -> Option<MesiState> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == line {
                way.stamp = tick;
                return Some(way.state);
            }
        }
        None
    }

    /// Returns the MESI state of `line` without touching LRU state (used by
    /// snoop probes from other cores, which do not constitute a use).
    #[inline]
    pub fn peek(&self, line: LineAddr) -> Option<MesiState> {
        let range = self.set_range(line);
        self.ways[range]
            .iter()
            .find(|w| w.valid && w.tag == line)
            .map(|w| w.state)
    }

    /// Sets the state of a line already present.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn set_state(&mut self, line: LineAddr, state: MesiState) {
        let range = self.set_range(line);
        let way = self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.tag == line)
            .expect("set_state on absent line");
        way.state = state;
    }

    /// Removes a line (snoop invalidation), returning its former state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<MesiState> {
        let range = self.set_range(line);
        self.ways[range]
            .iter_mut()
            .find(|w| w.valid && w.tag == line)
            .map(|w| {
                w.valid = false;
                w.state
            })
    }

    /// Inserts `line` with `state`, updating in place if already present.
    /// Returns whether a victim had to be evicted.
    pub fn insert(&mut self, line: LineAddr, state: MesiState) -> Insertion {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let set = &mut self.ways[range];
        let mut free: Option<usize> = None;
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for (i, way) in set.iter_mut().enumerate() {
            if !way.valid {
                if free.is_none() {
                    free = Some(i);
                }
                continue;
            }
            if way.tag == line {
                way.state = state;
                way.stamp = tick;
                return Insertion::Placed;
            }
            if way.stamp < victim_stamp {
                victim_stamp = way.stamp;
                victim = i;
            }
        }
        if let Some(i) = free {
            set[i] = Way {
                tag: line,
                state,
                stamp: tick,
                valid: true,
            };
            return Insertion::Placed;
        }
        // Evict the LRU way (stamps are distinct, so the victim is unique).
        let old = set[victim];
        set[victim] = Way {
            tag: line,
            state,
            stamp: tick,
            valid: true,
        };
        Insertion::Evicted {
            line: old.tag,
            dirty: old.state == MesiState::Modified,
        }
    }

    /// Number of resident lines (for memory accounting and tests).
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Drops every resident line (e.g. when a simulated process is torn
    /// down in tests). Dirty data is already in physical memory, so no
    /// writeback is needed.
    pub fn clear(&mut self) {
        for way in self.ways.iter_mut() {
            way.valid = false;
        }
    }

    /// Visits every resident `(line, state)` pair (diagnostics and
    /// directory consistency checks; order is the array layout).
    pub fn for_each_resident(&self, mut f: impl FnMut(LineAddr, MesiState)) {
        for way in self.ways.iter() {
            if way.valid {
                f(way.tag, way.state);
            }
        }
    }
}

/// Empty-slot sentinel for [`LlcTags`]: line addresses are physical
/// addresses shifted right by the line-size bits, so the all-ones value
/// can never name a real line.
const EMPTY_TAG: u64 = u64::MAX;

/// Tag array specialized for the shared LLC.
///
/// The LLC differs from the private caches in two ways that allow a leaner
/// layout: its MESI state is never read back (the machine only asks
/// "present or not"), and it sits on every writeback path, so each HITM
/// pays a way scan. Storing tags and LRU stamps as separate dense arrays
/// keeps the 16-way tag scan inside two cache lines instead of walking six
/// lines of 24-byte way records. Replacement is exact LRU with the same
/// tick/stamp discipline as [`Cache`] — one tick per lookup or insert,
/// first-free-slot placement, unique minimum-stamp victim — so hit/miss
/// sequences are identical to the general layout (asserted differentially
/// in the tests).
#[derive(Debug)]
pub struct LlcTags {
    config: CacheConfig,
    /// Line address per way slot, or [`EMPTY_TAG`]; row-major sets as in
    /// [`Cache`].
    tags: Box<[u64]>,
    /// Monotone LRU stamp per way slot (meaningful where the tag is set).
    stamps: Box<[u64]>,
    tick: u64,
}

impl LlcTags {
    /// Creates an empty LLC tag array with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways > 0, "ways must be positive");
        LlcTags {
            config,
            tags: vec![EMPTY_TAG; config.sets * config.ways].into_boxed_slice(),
            stamps: vec![0u64; config.sets * config.ways].into_boxed_slice(),
            tick: 0,
        }
    }

    /// Returns the cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    #[inline]
    fn set_base(&self, line: LineAddr) -> usize {
        ((line.raw() as usize) & (self.config.sets - 1)) * self.config.ways
    }

    /// Whether `line` is resident, refreshing its LRU position if so.
    #[inline]
    pub fn lookup(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let base = self.set_base(line);
        let raw = line.raw();
        for i in base..base + self.config.ways {
            if self.tags[i] == raw {
                self.stamps[i] = self.tick;
                return true;
            }
        }
        false
    }

    /// Inserts `line`, refreshing its LRU position if already present and
    /// evicting the LRU way if the set is full. LLC victims fall to
    /// memory, so the victim is not reported.
    #[inline]
    pub fn insert(&mut self, line: LineAddr) {
        self.tick += 1;
        let base = self.set_base(line);
        let raw = line.raw();
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for i in base..base + self.config.ways {
            let tag = self.tags[i];
            if tag == raw {
                self.stamps[i] = self.tick;
                return;
            }
            if tag == EMPTY_TAG {
                // The LLC is never snoop-invalidated, so a set's occupied
                // slots form a prefix: reaching a free slot proves the
                // line is absent from the rest of the set, and first-free
                // placement matches [`Cache`] exactly.
                self.tags[i] = raw;
                self.stamps[i] = self.tick;
                return;
            }
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = raw;
        self.stamps[victim] = self.tick;
    }

    /// Number of resident lines (memory accounting and tests).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY_TAG).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut c = Cache::new(CacheConfig { sets: 4, ways: 2 });
        assert_eq!(c.lookup(line(5)), None);
        c.insert(line(5), MesiState::Exclusive);
        assert_eq!(c.lookup(line(5)), Some(MesiState::Exclusive));
    }

    #[test]
    fn state_transitions() {
        let mut c = Cache::new(CacheConfig { sets: 4, ways: 2 });
        c.insert(line(1), MesiState::Shared);
        c.set_state(line(1), MesiState::Modified);
        assert_eq!(c.peek(line(1)), Some(MesiState::Modified));
        assert_eq!(c.invalidate(line(1)), Some(MesiState::Modified));
        assert_eq!(c.peek(line(1)), None);
    }

    #[test]
    fn lru_eviction_picks_least_recent() {
        let mut c = Cache::new(CacheConfig { sets: 1, ways: 2 });
        c.insert(line(1), MesiState::Exclusive);
        c.insert(line(2), MesiState::Modified);
        // Touch line 1 so line 2 is LRU.
        assert!(c.lookup(line(1)).is_some());
        let ins = c.insert(line(3), MesiState::Exclusive);
        assert_eq!(
            ins,
            Insertion::Evicted {
                line: line(2),
                dirty: true
            }
        );
        assert!(c.peek(line(1)).is_some());
        assert!(c.peek(line(2)).is_none());
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut c = Cache::new(CacheConfig { sets: 1, ways: 1 });
        c.insert(line(1), MesiState::Shared);
        assert_eq!(c.insert(line(1), MesiState::Modified), Insertion::Placed);
        assert_eq!(c.peek(line(1)), Some(MesiState::Modified));
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn sets_partition_lines() {
        let mut c = Cache::new(CacheConfig { sets: 2, ways: 1 });
        // Lines 0 and 2 map to set 0; line 1 maps to set 1.
        c.insert(line(0), MesiState::Exclusive);
        c.insert(line(1), MesiState::Exclusive);
        let ins = c.insert(line(2), MesiState::Exclusive);
        assert!(matches!(ins, Insertion::Evicted { line: l, .. } if l == line(0)));
        assert!(c.peek(line(1)).is_some(), "other set is untouched");
    }

    #[test]
    fn invalidated_slot_is_reused_before_eviction() {
        let mut c = Cache::new(CacheConfig { sets: 1, ways: 2 });
        c.insert(line(0), MesiState::Exclusive);
        c.insert(line(2), MesiState::Exclusive);
        c.invalidate(line(0));
        // The freed way must absorb the new line without an eviction.
        assert_eq!(c.insert(line(4), MesiState::Exclusive), Insertion::Placed);
        assert_eq!(c.resident_lines(), 2);
        assert!(c.peek(line(2)).is_some());
    }

    #[test]
    fn capacity_bytes() {
        assert_eq!(CacheConfig::l1().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheConfig::private_default().capacity_bytes(), 256 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = Cache::new(CacheConfig { sets: 3, ways: 1 });
    }

    #[test]
    fn llc_tags_match_general_layout_hit_for_hit() {
        // The dense LLC layout must reproduce the general cache's LRU
        // behavior exactly: same lookup hits, same residency, under a
        // mixed lookup/insert stream with heavy set conflicts.
        let cfg = CacheConfig { sets: 4, ways: 3 };
        let mut general = Cache::new(cfg);
        let mut dense = LlcTags::new(cfg);
        let mut x = 0xDEAD_BEEFu64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let l = line(x % 32); // 8 lines per set: constant thrash
            if x & 1 == 0 {
                assert_eq!(
                    general.lookup(l).is_some(),
                    dense.lookup(l),
                    "lookup({l:?})"
                );
            } else {
                general.insert(l, MesiState::Shared);
                dense.insert(l);
            }
            assert_eq!(general.resident_lines(), dense.resident_lines());
        }
    }

    #[test]
    fn llc_tags_evict_lru() {
        let mut t = LlcTags::new(CacheConfig { sets: 1, ways: 2 });
        t.insert(line(1));
        t.insert(line(2));
        assert!(t.lookup(line(1))); // line 2 becomes LRU
        t.insert(line(3));
        assert!(t.lookup(line(1)));
        assert!(!t.lookup(line(2)));
        assert!(t.lookup(line(3)));
        assert_eq!(t.resident_lines(), 2);
    }
}
