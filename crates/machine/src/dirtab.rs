//! The sharer-directory table: an open-addressed map from [`LineAddr`] to
//! [`DirEntry`] laid out for exactly one cache line per probe.
//!
//! The generic [`crate::flat::LineTable`] keeps keys and values in parallel
//! slabs, so a hit costs two random cache lines — one for the key probe,
//! one for the value. The directory sits on every coherence miss, which
//! makes that second line the single largest fast-path-only cost on
//! contended workloads. This table interleaves each key with its entry in
//! a 32-byte slot aligned to 32 bytes: two slots per cache line, never
//! straddling a boundary, so a probe that finds its key has the entry in
//! the same line for free.
//!
//! Two structural simplifications make the packing possible:
//!
//! - **No deletion.** Promotion into the directory is sticky (entries
//!   drain to an empty sharer set rather than being removed), so the
//!   table needs no tombstones or backward-shift machinery.
//! - **Bounded streak.** The per-line HITM streak is stored as a
//!   saturating `u32`. Only `min(streak, cap)` (the queuing penalty) and
//!   the `== 2` promotion crossing are ever observed, so saturation far
//!   above both thresholds cannot change any outcome.
//!
//! Hashing and growth policy match [`crate::flat::LineTable`]: Fibonacci
//! multiplicative hashing, linear probing, growth at 87.5% load.

use crate::addr::LineAddr;
use crate::latency::LatencyModel;

/// Sentinel for "no core holds this line Modified".
pub(crate) const NO_OWNER: u8 = u8::MAX;

/// Sentinel for "no HITM recorded yet" in streak state ([`DirEntry`] and
/// the broadcast-path streak table share it so their fresh-entry behavior
/// is identical).
pub(crate) const NO_HITM: u64 = u64::MAX;

/// Sentinel for an empty slot. `LineAddr` values are physical addresses
/// divided by the line size, so `u64::MAX` can never be a live key.
const EMPTY: u64 = u64::MAX;

/// The HITM streak window in accesses: a HITM within this many accesses
/// of the line's previous one extends the streak; a longer gap resets it.
/// Also the recency horizon of the speculation probe
/// ([`crate::Machine::line_private_to`]): a line with a HITM inside the
/// window is treated as contended even if momentarily sole-held.
pub(crate) const HITM_STREAK_WINDOW: u64 = 2_000;

/// Grow at 87.5% load, as in [`crate::flat::LineTable`].
const GROW_NUM: usize = 7;
const GROW_DEN: usize = 8;

/// One directory entry: which private caches hold the line, which core
/// (if any) holds it Modified, and the line's HITM streak state — folded
/// in so a tracked HITM updates one table slot instead of two tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct DirEntry {
    /// Bit `c` set ⇔ core `c`'s private cache holds the line (any state).
    pub sharers: u64,
    /// Sequence number of the line's last HITM, or [`NO_HITM`].
    pub last_hitm: u64,
    /// Current back-to-back HITM streak length (saturating; see the
    /// module docs for why saturation is unobservable).
    pub streak: u32,
    /// The core holding the line Modified, or [`NO_OWNER`].
    pub owner: u8,
}

impl Default for DirEntry {
    fn default() -> Self {
        DirEntry {
            sharers: 0,
            last_hitm: NO_HITM,
            streak: 0,
            owner: NO_OWNER,
        }
    }
}

/// Advances one line's HITM streak state and returns the queuing penalty.
/// `last == NO_HITM` reproduces the fresh-entry path of the broadcast
/// streak table exactly: a first HITM starts the streak at one.
#[inline]
pub(crate) fn streak_step(seq: u64, lat: &LatencyModel, last: &mut u64, streak: &mut u64) -> u64 {
    if *last == NO_HITM {
        *streak = 1;
    } else if seq.saturating_sub(*last) < HITM_STREAK_WINDOW {
        *streak += 1;
    } else {
        *streak = 0;
    }
    *last = seq;
    lat.hitm_queuing_step * (*streak).min(lat.hitm_queuing_cap)
}

impl DirEntry {
    /// [`streak_step`] over the entry's own (saturating) streak state.
    #[inline]
    pub(crate) fn hitm_streak_step(&mut self, seq: u64, lat: &LatencyModel) -> u64 {
        let mut streak = self.streak as u64;
        let penalty = streak_step(seq, lat, &mut self.last_hitm, &mut streak);
        self.streak = streak.min(u32::MAX as u64) as u32;
        penalty
    }
}

/// Key and entry interleaved into exactly one half cache line.
#[derive(Clone, Copy, Debug)]
#[repr(C, align(32))]
struct Slot {
    /// Raw line number, or [`EMPTY`].
    key: u64,
    entry: DirEntry,
}

const _: () = assert!(
    std::mem::size_of::<Slot>() == 32,
    "slot must stay half a cache line"
);

impl Slot {
    const VACANT: Slot = Slot {
        key: EMPTY,
        entry: DirEntry {
            sharers: 0,
            last_hitm: NO_HITM,
            streak: 0,
            owner: NO_OWNER,
        },
    };
}

/// The sharer-directory map (see the module docs).
#[derive(Debug)]
pub(crate) struct DirTable {
    slots: Box<[Slot]>,
    len: usize,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
}

impl DirTable {
    /// Creates a table sized for at least `cap` entries before growing.
    pub fn with_capacity(cap: usize) -> Self {
        let capacity = cap.next_power_of_two().max(8);
        DirTable {
            slots: vec![Slot::VACANT; capacity].into_boxed_slice(),
            len: 0,
            mask: capacity - 1,
        }
    }

    /// Number of live entries (test observability).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fibonacci multiplicative hash, as in [`crate::flat::LineTable`].
    #[inline]
    fn ideal_slot(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut i = self.ideal_slot(key);
        loop {
            let k = self.slots[i].key;
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Returns the entry for `line`, if tracked.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&DirEntry> {
        self.find(line.raw()).map(|i| &self.slots[i].entry)
    }

    /// Returns a mutable reference to the entry for `line`, if tracked.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut DirEntry> {
        self.find(line.raw()).map(move |i| &mut self.slots[i].entry)
    }

    /// Inserts or overwrites the entry for `line`.
    pub fn insert(&mut self, line: LineAddr, entry: DirEntry) {
        if self.len * GROW_DEN >= (self.mask + 1) * GROW_NUM {
            self.grow();
        }
        let key = line.raw();
        debug_assert_ne!(key, EMPTY, "LineAddr::MAX is reserved");
        let mut i = self.ideal_slot(key);
        loop {
            let k = self.slots[i].key;
            if k == key {
                self.slots[i].entry = entry;
                return;
            }
            if k == EMPTY {
                self.slots[i] = Slot { key, entry };
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Visits every live `(line, entry)` pair in unspecified order.
    pub fn for_each(&self, mut f: impl FnMut(LineAddr, &DirEntry)) {
        for s in self.slots.iter() {
            if s.key != EMPTY {
                f(LineAddr::new(s.key), &s.entry);
            }
        }
    }

    /// Drops every entry, keeping the allocation. Only the test-only
    /// mid-run directory toggle rebuilds from scratch.
    #[cfg(test)]
    pub fn clear(&mut self) {
        self.slots.fill(Slot::VACANT);
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let old = std::mem::replace(
            &mut self.slots,
            vec![Slot::VACANT; new_cap].into_boxed_slice(),
        );
        self.mask = new_cap - 1;
        self.len = 0;
        for s in old.iter() {
            if s.key != EMPTY {
                self.insert(LineAddr::new(s.key), s.entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn entry(sharers: u64) -> DirEntry {
        DirEntry {
            sharers,
            ..DirEntry::default()
        }
    }

    #[test]
    fn insert_get_overwrite() {
        let mut t = DirTable::with_capacity(8);
        assert!(t.get(line(7)).is_none());
        t.insert(line(7), entry(0b11));
        assert_eq!(t.get(line(7)).map(|e| e.sharers), Some(0b11));
        t.insert(line(7), entry(0b101));
        assert_eq!(t.get(line(7)).map(|e| e.sharers), Some(0b101));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = DirTable::with_capacity(8);
        for i in 0..1_000u64 {
            t.insert(line(i * 3), entry(i));
        }
        assert_eq!(t.len(), 1_000);
        for i in 0..1_000u64 {
            assert_eq!(t.get(line(i * 3)).map(|e| e.sharers), Some(i));
        }
    }

    #[test]
    fn mirror_against_hashmap() {
        let mut t = DirTable::with_capacity(8);
        let mut m: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 512;
            if x & 1 == 0 {
                t.insert(line(key), entry(x));
                m.insert(key, x);
            } else {
                assert_eq!(t.get(line(key)).map(|e| e.sharers), m.get(&key).copied());
            }
            assert_eq!(t.len(), m.len());
        }
        let mut seen = 0;
        t.for_each(|l, e| {
            assert_eq!(m.get(&l.raw()), Some(&e.sharers));
            seen += 1;
        });
        assert_eq!(seen, m.len());
        t.clear();
        assert!(t.is_empty());
        assert!(t.get(line(0)).is_none());
    }

    #[test]
    fn streak_step_matches_fresh_and_windowed_semantics() {
        let lat = LatencyModel::haswell();
        let mut e = DirEntry::default();
        // First HITM: streak 1.
        let p1 = e.hitm_streak_step(100, &lat);
        assert_eq!(e.streak, 1);
        assert_eq!(p1, lat.hitm_queuing_step);
        // Within the window: streak grows.
        let p2 = e.hitm_streak_step(200, &lat);
        assert_eq!(e.streak, 2);
        assert_eq!(p2, 2 * lat.hitm_queuing_step);
        // Outside the window: streak resets to zero (matching the
        // broadcast-path table), and the penalty with it.
        let p3 = e.hitm_streak_step(5_000, &lat);
        assert_eq!(e.streak, 0);
        assert_eq!(p3, 0);
        // The cap bounds the penalty, not the streak.
        for _ in 0..100 {
            e.hitm_streak_step(5_001, &lat);
        }
        let p = e.hitm_streak_step(5_002, &lat);
        assert_eq!(p, lat.hitm_queuing_cap * lat.hitm_queuing_step);
        assert!(u64::from(e.streak) > lat.hitm_queuing_cap);
    }
}
