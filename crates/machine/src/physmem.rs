//! Physical memory: a pool of 4 KiB frames with explicit allocation.
//!
//! This is the data plane of the simulator. The OS layer (`tmi-os`) owns a
//! [`PhysMem`] and hands out frames to shared-memory objects, anonymous
//! mappings and copy-on-write copies; reference counting lives up there.
//! Down here a frame is just 4 KiB of bytes.

use crate::addr::{FrameId, PhysAddr, Width, FRAME_SIZE};

/// One 4 KiB physical frame.
type Frame = Box<[u8; FRAME_SIZE as usize]>;

fn zero_frame() -> Frame {
    // `vec![0; N].into_boxed_slice().try_into()` avoids a 4 KiB stack copy.
    vec![0u8; FRAME_SIZE as usize]
        .into_boxed_slice()
        .try_into()
        .expect("frame size mismatch")
}

/// A pool of physical frames addressed by [`PhysAddr`].
///
/// Frames are allocated with [`PhysMem::alloc_frame`] and freed with
/// [`PhysMem::free_frame`]; freed slots are recycled. All byte accessors
/// panic on access to an unallocated frame — in the simulator that is a
/// machine check, i.e. a bug in the OS layer, never in application code.
#[derive(Debug, Default)]
pub struct PhysMem {
    frames: Vec<Option<Frame>>,
    free: Vec<FrameId>,
    allocated: usize,
    /// High-water mark of simultaneously allocated frames, for memory
    /// accounting (Fig. 8).
    peak_allocated: usize,
}

impl PhysMem {
    /// Creates an empty physical memory pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zeroed frame.
    pub fn alloc_frame(&mut self) -> FrameId {
        self.allocated += 1;
        self.peak_allocated = self.peak_allocated.max(self.allocated);
        if let Some(id) = self.free.pop() {
            self.frames[id.index()] = Some(zero_frame());
            return id;
        }
        let id = FrameId(self.frames.len() as u32);
        self.frames.push(Some(zero_frame()));
        id
    }

    /// Allocates `n` physically contiguous zeroed frames and returns the
    /// first. Used for 2 MiB huge pages, which must be frame-contiguous so
    /// that line addresses within the huge page are contiguous too.
    pub fn alloc_contiguous(&mut self, n: usize) -> FrameId {
        // Contiguity forces fresh allocation at the end of the pool.
        let first = FrameId(self.frames.len() as u32);
        for _ in 0..n {
            self.frames.push(Some(zero_frame()));
        }
        self.allocated += n;
        self.peak_allocated = self.peak_allocated.max(self.allocated);
        first
    }

    /// Frees a frame, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not currently allocated (double free).
    pub fn free_frame(&mut self, id: FrameId) {
        let slot = self
            .frames
            .get_mut(id.index())
            .expect("free of out-of-range frame");
        assert!(slot.is_some(), "double free of {id:?}");
        *slot = None;
        self.free.push(id);
        self.allocated -= 1;
    }

    /// Number of currently allocated frames.
    pub fn allocated_frames(&self) -> usize {
        self.allocated
    }

    /// High-water mark of allocated frames over the lifetime of the pool.
    pub fn peak_allocated_frames(&self) -> usize {
        self.peak_allocated
    }

    /// Returns true if `id` refers to a live frame.
    pub fn is_allocated(&self, id: FrameId) -> bool {
        self.frames
            .get(id.index())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    fn frame(&self, id: FrameId) -> &[u8; FRAME_SIZE as usize] {
        self.frames
            .get(id.index())
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("access to unallocated {id:?}"))
    }

    fn frame_mut(&mut self, id: FrameId) -> &mut [u8; FRAME_SIZE as usize] {
        self.frames
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("access to unallocated {id:?}"))
    }

    /// Reads an integer of the given width. The access must not cross a
    /// frame boundary (the engine enforces natural alignment, which
    /// guarantees this).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a frame boundary or the frame is free.
    pub fn read(&self, addr: PhysAddr, width: Width) -> u64 {
        let off = addr.frame_offset() as usize;
        let n = width.bytes() as usize;
        assert!(
            off + n <= FRAME_SIZE as usize,
            "physical read crosses frame boundary at {addr}"
        );
        let bytes = &self.frame(addr.frame())[off..off + n];
        let mut buf = [0u8; 8];
        buf[..n].copy_from_slice(bytes);
        u64::from_le_bytes(buf)
    }

    /// Writes the low `width` bytes of `value` at `addr` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a frame boundary or the frame is free.
    pub fn write(&mut self, addr: PhysAddr, width: Width, value: u64) {
        let off = addr.frame_offset() as usize;
        let n = width.bytes() as usize;
        assert!(
            off + n <= FRAME_SIZE as usize,
            "physical write crosses frame boundary at {addr}"
        );
        let frame = self.frame_mut(addr.frame());
        frame[off..off + n].copy_from_slice(&value.to_le_bytes()[..n]);
    }

    /// Returns the full contents of a frame (used to snapshot twin pages).
    pub fn frame_bytes(&self, id: FrameId) -> &[u8; FRAME_SIZE as usize] {
        self.frame(id)
    }

    /// Overwrites the full contents of a frame.
    pub fn write_frame(&mut self, id: FrameId, bytes: &[u8; FRAME_SIZE as usize]) {
        *self.frame_mut(id) = *bytes;
    }

    /// Copies frame `src` into frame `dst` (the COW copy).
    pub fn copy_frame(&mut self, src: FrameId, dst: FrameId) {
        let data = *self.frame(src);
        *self.frame_mut(dst) = data;
    }

    /// Writes a single byte; used by the diff-and-merge commit, which must
    /// touch *only* the bytes identified by the diff (§2.2: updating other
    /// bytes "is tantamount to fabricating stores").
    pub fn write_byte(&mut self, addr: PhysAddr, value: u8) {
        self.frame_mut(addr.frame())[addr.frame_offset() as usize] = value;
    }

    /// Reads a single byte.
    pub fn read_byte(&self, addr: PhysAddr) -> u8 {
        self.frame(addr.frame())[addr.frame_offset() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut pm = PhysMem::new();
        let f = pm.alloc_frame();
        let addr = f.base().offset(16);
        pm.write(addr, Width::W8, 0xdead_beef_cafe_f00d);
        assert_eq!(pm.read(addr, Width::W8), 0xdead_beef_cafe_f00d);
        // Partial-width reads see the little-endian prefix.
        assert_eq!(pm.read(addr, Width::W2), 0xf00d);
        assert_eq!(pm.read(addr, Width::W1), 0x0d);
    }

    #[test]
    fn frames_are_zeroed_on_alloc_and_recycle() {
        let mut pm = PhysMem::new();
        let f = pm.alloc_frame();
        pm.write(f.base(), Width::W8, u64::MAX);
        pm.free_frame(f);
        let g = pm.alloc_frame();
        assert_eq!(g, f, "slot should be recycled");
        assert_eq!(pm.read(g.base(), Width::W8), 0, "recycled frame is zeroed");
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pm = PhysMem::new();
        let f = pm.alloc_frame();
        pm.free_frame(f);
        pm.free_frame(f);
    }

    #[test]
    fn copy_frame_copies_bytes() {
        let mut pm = PhysMem::new();
        let a = pm.alloc_frame();
        let b = pm.alloc_frame();
        pm.write(a.base().offset(100), Width::W4, 0x12345678);
        pm.copy_frame(a, b);
        assert_eq!(pm.read(b.base().offset(100), Width::W4), 0x12345678);
        // Copies are snapshots, not aliases.
        pm.write(a.base().offset(100), Width::W4, 0);
        assert_eq!(pm.read(b.base().offset(100), Width::W4), 0x12345678);
    }

    #[test]
    fn contiguous_alloc_is_contiguous() {
        let mut pm = PhysMem::new();
        let _pad = pm.alloc_frame();
        let first = pm.alloc_contiguous(4);
        for i in 0..4u32 {
            assert!(pm.is_allocated(FrameId(first.0 + i)));
        }
        let addr = FrameId(first.0 + 3).base();
        pm.write(addr, Width::W1, 7);
        assert_eq!(pm.read(addr, Width::W1), 7);
    }

    #[test]
    fn peak_tracking() {
        let mut pm = PhysMem::new();
        let a = pm.alloc_frame();
        let _b = pm.alloc_frame();
        pm.free_frame(a);
        assert_eq!(pm.allocated_frames(), 1);
        assert_eq!(pm.peak_allocated_frames(), 2);
    }

    #[test]
    fn byte_accessors() {
        let mut pm = PhysMem::new();
        let f = pm.alloc_frame();
        pm.write_byte(f.base().offset(5), 0xab);
        assert_eq!(pm.read_byte(f.base().offset(5)), 0xab);
        assert_eq!(pm.read_byte(f.base().offset(4)), 0);
    }

    #[test]
    #[should_panic(expected = "crosses frame boundary")]
    fn cross_frame_access_panics() {
        let mut pm = PhysMem::new();
        let f = pm.alloc_frame();
        let _ = pm.read(f.base().offset(FRAME_SIZE - 4), Width::W8);
    }
}
