//! Address arithmetic newtypes shared across the simulator.
//!
//! Physical addresses, cache-line addresses and frame numbers are given
//! distinct types so that virtual/physical confusion (the central hazard in a
//! system that remaps pages behind a program's back) is a compile error
//! rather than a debugging session.

use std::fmt;

/// Size of a cache line in bytes (64 B, as on the Haswell machines in §4.1).
pub const LINE_SIZE: u64 = 64;

/// Size of a physical frame / small page in bytes (4 KiB).
pub const FRAME_SIZE: u64 = 4096;

/// Size of a huge page in bytes (2 MiB, `MAP_HUGE_2MB` in §4.4).
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;

/// Number of 4 KiB frames backing one 2 MiB huge page.
pub const FRAMES_PER_HUGE_PAGE: u64 = HUGE_PAGE_SIZE / FRAME_SIZE;

/// Identifier of a core (hardware context).
pub type CoreId = usize;

/// A physical byte address.
///
/// Cache lines are indexed by physical address; this is the property that
/// makes TMI's remapping repair work (see crate docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte offset into physical memory.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line this address falls on.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_SIZE)
    }

    /// Returns the frame this address falls in.
    pub const fn frame(self) -> FrameId {
        FrameId((self.0 / FRAME_SIZE) as u32)
    }

    /// Returns the byte offset within the containing frame.
    pub const fn frame_offset(self) -> u64 {
        self.0 % FRAME_SIZE
    }

    /// Returns the byte offset within the containing cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 % LINE_SIZE
    }

    /// Returns this address displaced by `delta` bytes.
    pub const fn offset(self, delta: u64) -> Self {
        PhysAddr(self.0 + delta)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line number (physical address divided by [`LINE_SIZE`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the physical address of the first byte of the line.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 * LINE_SIZE)
    }

    /// Returns the frame containing this line.
    pub const fn frame(self) -> FrameId {
        self.base().frame()
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

/// A physical frame number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FrameId(pub u32);

impl FrameId {
    /// Returns the physical address of the first byte of the frame.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 as u64 * FRAME_SIZE)
    }

    /// Returns the raw frame number.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FrameId({})", self.0)
    }
}

/// A virtual byte address, as issued by simulated program code.
///
/// Virtual addresses are translated to [`PhysAddr`]s through a per-process
/// page table (`tmi-os`). The whole point of TMI's repair is that *the same*
/// virtual address can map to *different* physical frames in different
/// processes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(u64);

impl VAddr {
    /// Creates a virtual address.
    pub const fn new(raw: u64) -> Self {
        VAddr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the virtual page number.
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 / FRAME_SIZE)
    }

    /// Returns the byte offset within the containing 4 KiB page.
    pub const fn page_offset(self) -> u64 {
        self.0 % FRAME_SIZE
    }

    /// Returns the byte offset within the containing cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 % LINE_SIZE
    }

    /// Returns this address displaced by `delta` bytes.
    pub const fn offset(self, delta: u64) -> Self {
        VAddr(self.0 + delta)
    }

    /// Returns true if the address is naturally aligned for `width`.
    pub const fn is_aligned(self, width: Width) -> bool {
        self.0.is_multiple_of(width.bytes())
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.0)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A virtual page number (4 KiB granularity).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// Returns the virtual address of the first byte of the page.
    pub const fn base(self) -> VAddr {
        VAddr(self.0 * FRAME_SIZE)
    }

    /// The 2 MiB-aligned huge page this 4 KiB page belongs to (its first
    /// constituent 4 KiB page number).
    pub const fn huge_base(self) -> Vpn {
        Vpn(self.0 / FRAMES_PER_HUGE_PAGE * FRAMES_PER_HUGE_PAGE)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vpn({:#x})", self.0)
    }
}

/// Width of a memory access in bytes.
///
/// The detector disassembles instruction PCs to recover widths (§3.1); the
/// consistency machinery cares about widths because *aligned multi-byte
/// store atomicity* (AMBSA, §2.2) is only meaningful for multi-byte accesses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Width {
    /// 1 byte.
    W1,
    /// 2 bytes.
    W2,
    /// 4 bytes.
    W4,
    /// 8 bytes.
    #[default]
    W8,
}

impl Width {
    /// Number of bytes covered by an access of this width.
    pub const fn bytes(self) -> u64 {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }

    /// The width needed to hold `n` bytes, if `n` is 1, 2, 4 or 8.
    pub const fn from_bytes(n: u64) -> Option<Width> {
        match n {
            1 => Some(Width::W1),
            2 => Some(Width::W2),
            4 => Some(Width::W4),
            8 => Some(Width::W8),
            _ => None,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_decomposition() {
        let a = PhysAddr::new(2 * FRAME_SIZE + 3 * LINE_SIZE + 7);
        assert_eq!(a.frame(), FrameId(2));
        assert_eq!(a.frame_offset(), 3 * LINE_SIZE + 7);
        assert_eq!(a.line_offset(), 7);
        assert_eq!(a.line().base().raw(), 2 * FRAME_SIZE + 3 * LINE_SIZE);
    }

    #[test]
    fn line_of_adjacent_bytes_is_shared() {
        // The essence of false sharing: disjoint bytes, same line.
        let a = PhysAddr::new(0x1000);
        let b = PhysAddr::new(0x1008);
        assert_ne!(a, b);
        assert_eq!(a.line(), b.line());
        // ... and one line over, no sharing.
        let c = PhysAddr::new(0x1040);
        assert_ne!(a.line(), c.line());
    }

    #[test]
    fn frame_base_roundtrip() {
        let f = FrameId(123);
        assert_eq!(f.base().frame(), f);
        assert_eq!(f.base().frame_offset(), 0);
    }

    #[test]
    fn width_bytes_roundtrip() {
        for w in [Width::W1, Width::W2, Width::W4, Width::W8] {
            assert_eq!(Width::from_bytes(w.bytes()), Some(w));
        }
        assert_eq!(Width::from_bytes(3), None);
        assert_eq!(Width::from_bytes(16), None);
    }

    #[test]
    fn huge_page_constants_consistent() {
        assert_eq!(FRAMES_PER_HUGE_PAGE * FRAME_SIZE, HUGE_PAGE_SIZE);
        assert_eq!(FRAMES_PER_HUGE_PAGE, 512);
    }

    #[test]
    fn line_addr_frame() {
        let l = LineAddr::new(FRAME_SIZE / LINE_SIZE); // first line of frame 1
        assert_eq!(l.frame(), FrameId(1));
    }
}
