//! A flat open-addressed hash table keyed by [`LineAddr`].
//!
//! Replaces the per-access `HashMap` probes on the coherence fast path:
//! SipHash plus the std bucket indirection cost more than the lookups they
//! serve. This table keeps keys in one contiguous `Box<[u64]>` (values in a
//! parallel slab), uses Fibonacci multiplicative hashing and linear probing,
//! and deletes with backward shifting so no tombstones accumulate. Every
//! probe touches one or two cache lines for the realistic load factors the
//! directory and HITM-streak maps see.
//!
//! Iteration order is unspecified; the coherence layer never iterates for
//! anything behaviorally observable (only for diagnostics and consistency
//! checks, which sort).

use crate::addr::LineAddr;

/// Sentinel for an empty slot. `LineAddr` values are physical addresses
/// divided by the line size, so `u64::MAX` can never be a live key.
const EMPTY: u64 = u64::MAX;

/// Grow when `len * 8 >= capacity * 7` (87.5% load) — linear probing stays
/// short well past this for the multiplicative hash we use, and the
/// directory's working set is bounded by total cache capacity anyway.
const GROW_NUM: usize = 7;
const GROW_DEN: usize = 8;

/// A flat open-addressed map from [`LineAddr`] to `V`.
#[derive(Clone, Debug)]
pub struct LineTable<V> {
    /// Raw line numbers; `EMPTY` marks a vacant slot.
    keys: Box<[u64]>,
    /// Values parallel to `keys`; only meaningful where the key is live.
    vals: Box<[V]>,
    len: usize,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
}

impl<V: Copy + Default> Default for LineTable<V> {
    fn default() -> Self {
        Self::with_capacity(64)
    }
}

impl<V: Copy + Default> LineTable<V> {
    /// Creates a table sized for at least `cap` entries before growing.
    pub fn with_capacity(cap: usize) -> Self {
        let capacity = cap.next_power_of_two().max(8);
        LineTable {
            keys: vec![EMPTY; capacity].into_boxed_slice(),
            vals: vec![V::default(); capacity].into_boxed_slice(),
            len: 0,
            mask: capacity - 1,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fibonacci multiplicative hash: spreads consecutive line numbers
    /// (the common access pattern) across the table.
    #[inline]
    fn ideal_slot(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // The high bits carry the mixing; fold them down onto the mask.
        (h >> 32) as usize & self.mask
    }

    /// Slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut i = self.ideal_slot(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Returns the value for `line`, if present.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&V> {
        self.find(line.raw()).map(|i| &self.vals[i])
    }

    /// Returns a mutable reference to the value for `line`, if present.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut V> {
        self.find(line.raw()).map(move |i| &mut self.vals[i])
    }

    /// Returns a mutable reference to the value for `line`, inserting
    /// `default` first if absent.
    #[inline]
    pub fn get_or_insert(&mut self, line: LineAddr, default: V) -> &mut V {
        if self.len * GROW_DEN >= (self.mask + 1) * GROW_NUM {
            self.grow();
        }
        let key = line.raw();
        debug_assert_ne!(key, EMPTY, "LineAddr::MAX is reserved");
        let mut i = self.ideal_slot(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return &mut self.vals[i];
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = default;
                self.len += 1;
                return &mut self.vals[i];
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts or overwrites the value for `line`.
    pub fn insert(&mut self, line: LineAddr, value: V) {
        *self.get_or_insert(line, value) = value;
    }

    /// Removes `line`, returning its value if it was present. Uses
    /// backward-shift deletion, so lookups never scan over tombstones.
    pub fn remove(&mut self, line: LineAddr) -> Option<V> {
        let mut hole = self.find(line.raw())?;
        let removed = self.vals[hole];
        self.len -= 1;
        // Shift the tail of the probe run left over the hole.
        let mut j = hole;
        loop {
            j = (j + 1) & self.mask;
            let k = self.keys[j];
            if k == EMPTY {
                break;
            }
            // `j`'s entry may move into the hole only if its ideal slot is
            // at or before the hole within this run (cyclic comparison).
            let ideal = self.ideal_slot(k);
            if (j.wrapping_sub(ideal) & self.mask) >= (j.wrapping_sub(hole) & self.mask) {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.keys[hole] = EMPTY;
        Some(removed)
    }

    /// Visits every live `(line, value)` pair in unspecified order.
    pub fn for_each(&self, mut f: impl FnMut(LineAddr, &V)) {
        for (i, &k) in self.keys.iter().enumerate() {
            if k != EMPTY {
                f(LineAddr::new(k), &self.vals[i]);
            }
        }
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap].into_boxed_slice());
        let old_vals = std::mem::replace(
            &mut self.vals,
            vec![V::default(); new_cap].into_boxed_slice(),
        );
        self.mask = new_cap - 1;
        self.len = 0;
        for (i, &k) in old_keys.iter().enumerate() {
            if k != EMPTY {
                self.insert(LineAddr::new(k), old_vals[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn insert_get_remove() {
        let mut t: LineTable<u32> = LineTable::default();
        assert!(t.get(line(7)).is_none());
        t.insert(line(7), 42);
        assert_eq!(t.get(line(7)), Some(&42));
        assert_eq!(t.remove(line(7)), Some(42));
        assert!(t.get(line(7)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn get_or_insert_returns_existing() {
        let mut t: LineTable<u32> = LineTable::default();
        *t.get_or_insert(line(1), 10) += 1;
        *t.get_or_insert(line(1), 99) += 1;
        assert_eq!(t.get(line(1)), Some(&12));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut t: LineTable<u64> = LineTable::with_capacity(8);
        for i in 0..1_000 {
            t.insert(line(i * 3), i);
        }
        assert_eq!(t.len(), 1_000);
        for i in 0..1_000 {
            assert_eq!(t.get(line(i * 3)), Some(&i));
        }
    }

    #[test]
    fn backward_shift_keeps_probe_runs_intact() {
        // Force collisions by inserting keys that share an ideal slot, then
        // delete from the middle of the run and verify the tail stays
        // reachable.
        let mut t: LineTable<u64> = LineTable::with_capacity(8);
        let mut by_slot: HashMap<usize, Vec<u64>> = HashMap::new();
        for k in 0..200u64 {
            by_slot.entry(t.ideal_slot(k)).or_default().push(k);
        }
        let run = by_slot
            .values()
            .find(|v| v.len() >= 3)
            .expect("some slot collides")
            .clone();
        for &k in &run {
            t.insert(line(k), k);
        }
        t.remove(line(run[0]));
        for &k in &run[1..] {
            assert_eq!(t.get(line(k)), Some(&k), "key {k} lost after removal");
        }
    }

    #[test]
    fn mirror_against_hashmap() {
        // Deterministic pseudo-random op sequence diffed against HashMap.
        let mut t: LineTable<u64> = LineTable::default();
        let mut m: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 512;
            match x >> 61 {
                0..=3 => {
                    t.insert(line(key), step);
                    m.insert(key, step);
                }
                4 | 5 => {
                    assert_eq!(t.remove(line(key)), m.remove(&key));
                }
                _ => {
                    assert_eq!(t.get(line(key)), m.get(&key));
                }
            }
            assert_eq!(t.len(), m.len());
        }
        let mut seen = 0;
        t.for_each(|l, v| {
            assert_eq!(m.get(&l.raw()), Some(v));
            seen += 1;
        });
        assert_eq!(seen, m.len());
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut t: LineTable<u8> = LineTable::with_capacity(8);
        for i in 0..100 {
            t.insert(line(i), 1);
        }
        t.clear();
        assert!(t.is_empty());
        for i in 0..100 {
            assert!(t.get(line(i)).is_none());
        }
    }
}
